//! # lbm-proxy — the lattice-Boltzmann substrate (paper Fig. 2)
//!
//! A real D3Q19 single-relaxation-time lattice-Boltzmann solver plus the
//! 1-D slab decomposition cost model of the paper's Fig. 2 production run
//! (302³ cells, 100 ranks, halo exchange along the outer dimension).
//!
//! * [`D3Q19`] — the solver: periodic box, fused pull-scheme
//!   stream-collide, serial and multi-threaded stepping, physics
//!   validated against the analytic shear-wave decay law;
//! * [`LbmDecomposition`] — per-rank memory traffic and halo volumes fed
//!   into the cluster simulator for the timeline reproduction;
//! * [`lattice`] — the D3Q19 velocity set, weights and equilibrium.

#![warn(missing_docs)]
// The stencil kernels index several parallel constant tables (C, W, the
// local population array) with one loop variable; iterator rewrites would
// obscure the numerics without changing the generated code.
#![allow(clippy::needless_range_loop)]

mod decomp;
pub mod lattice;
mod solver;

pub use decomp::{LbmDecomposition, BYTES_PER_CELL};
pub use solver::D3Q19;
