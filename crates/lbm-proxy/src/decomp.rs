//! 1-D domain decomposition model for the Fig. 2 production run.
//!
//! The paper's LBM experiment uses a 302³ lattice (including one boundary
//! layer in each direction), decomposed only along the outer dimension
//! with periodic boundary conditions, on 100 ranks (five 2×10-core
//! nodes). The full problem (> 8 GB working set) is too large to allocate
//! in a test run, so the Fig. 2 reproduction feeds the *costs* of this
//! decomposition — per-rank memory traffic and halo volume — into the
//! cluster simulator, while the real solver (`D3Q19`) validates the
//! physics and per-cell cost structure at small scale.

use tracefmt::json::{self, FromJson, Json, ToJson};

use crate::lattice::Q;

/// Bytes of memory traffic per cell per SRT update: 19 populations read +
/// 19 written, 8 bytes each (write-allocate ignored, as in the paper's
/// bandwidth model).
pub const BYTES_PER_CELL: u64 = 2 * Q as u64 * 8;

/// A 1-D slab decomposition of a periodic D3Q19 box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbmDecomposition {
    /// Global lattice extent along the (decomposed) outer dimension.
    pub nx: u64,
    /// Global extent along the second dimension.
    pub ny: u64,
    /// Global extent along the third dimension.
    pub nz: u64,
    /// Number of MPI ranks (slabs).
    pub ranks: u32,
}

impl LbmDecomposition {
    /// The paper's Fig. 2 configuration: 302³ cells on 100 ranks.
    pub fn paper_fig2() -> Self {
        LbmDecomposition {
            nx: 302,
            ny: 302,
            nz: 302,
            ranks: 100,
        }
    }

    /// Total number of lattice cells.
    pub fn total_cells(&self) -> u64 {
        self.nx * self.ny * self.nz
    }

    /// Cells per rank (average; the paper's 302/100 does not divide evenly,
    /// which is itself a small intrinsic load imbalance — we model the
    /// average slab, letting the simulator's noise cover the imbalance).
    pub fn cells_per_rank(&self) -> u64 {
        self.total_cells() / u64::from(self.ranks)
    }

    /// Memory traffic per rank per time step in bytes.
    pub fn traffic_bytes_per_rank(&self) -> u64 {
        self.cells_per_rank() * BYTES_PER_CELL
    }

    /// Halo exchange volume per neighbour per step in bytes: one full
    /// face of `ny × nz` cells with all 19 populations (the straightforward
    /// full-cell halo used by non-optimised LBM codes, consistent with the
    /// paper's ≥ 30 % communication share).
    pub fn halo_bytes_per_neighbor(&self) -> u64 {
        self.ny * self.nz * Q as u64 * 8
    }

    /// Total working set in bytes (two population arrays).
    pub fn working_set_bytes(&self) -> u64 {
        2 * self.total_cells() * Q as u64 * 8
    }

    /// Flops per cell per update (a common accounting for D3Q19 SRT:
    /// ~200 flops between moments, equilibria and relaxation).
    pub fn flops_per_cell() -> u64 {
        200
    }
}

impl ToJson for LbmDecomposition {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("nx", self.nx.to_json()),
            ("ny", self.ny.to_json()),
            ("nz", self.nz.to_json()),
            ("ranks", self.ranks.to_json()),
        ])
    }
}

impl FromJson for LbmDecomposition {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(LbmDecomposition {
            nx: u64::from_json(v.field("nx")?)?,
            ny: u64::from_json(v.field("ny")?)?,
            nz: u64::from_json(v.field("nz")?)?,
            ranks: u32::from_json(v.field("ranks")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_magnitudes() {
        let d = LbmDecomposition::paper_fig2();
        assert_eq!(d.total_cells(), 302 * 302 * 302);
        // Working set "more than 8 GB" (paper): 2 x 19 x 8 B x 302^3.
        let ws_gb = d.working_set_bytes() as f64 / 1e9;
        assert!(ws_gb > 8.0 && ws_gb < 9.0, "working set {ws_gb} GB");
        // Halo: 302^2 x 19 x 8 B ≈ 13.9 MB per neighbour.
        let halo_mb = d.halo_bytes_per_neighbor() as f64 / 1e6;
        assert!((13.0..15.0).contains(&halo_mb), "halo {halo_mb} MB");
        // Per-rank traffic: ~275k cells x 304 B ≈ 83.7 MB.
        let tr_mb = d.traffic_bytes_per_rank() as f64 / 1e6;
        assert!((80.0..90.0).contains(&tr_mb), "traffic {tr_mb} MB");
    }

    #[test]
    fn communication_share_is_large() {
        // The point of the Fig. 2 setup: 1-D decomposition gives a hefty
        // communication share. At 4 GB/s per-rank memory bandwidth and
        // 3 GB/s network, comm/(comm+exec) should be well above 10 %.
        let d = LbmDecomposition::paper_fig2();
        let t_exec = d.traffic_bytes_per_rank() as f64 / 4e9;
        let t_comm = d.halo_bytes_per_neighbor() as f64 / 3e9;
        let share = t_comm / (t_comm + t_exec);
        assert!(share > 0.1, "comm share {share}");
    }

    #[test]
    fn bytes_per_cell_constant() {
        assert_eq!(BYTES_PER_CELL, 304);
    }

    #[test]
    fn smaller_boxes_scale_down() {
        let d = LbmDecomposition {
            nx: 64,
            ny: 64,
            nz: 64,
            ranks: 8,
        };
        assert_eq!(d.cells_per_rank(), 64 * 64 * 64 / 8);
        assert!(d.working_set_bytes() < LbmDecomposition::paper_fig2().working_set_bytes());
    }
}
