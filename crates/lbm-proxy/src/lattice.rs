//! The D3Q19 lattice: 19 discrete velocities and their weights.
//!
//! Velocity set: the rest vector, the 6 axis-aligned unit vectors (weight
//! 1/18) and the 12 face-diagonal vectors (weight 1/36); the rest vector
//! has weight 1/3. Lattice speed of sound: `c_s² = 1/3`.

/// Number of discrete velocities.
pub const Q: usize = 19;

/// Discrete velocity vectors `c_q`.
pub const C: [[i32; 3]; Q] = [
    [0, 0, 0],
    [1, 0, 0],
    [-1, 0, 0],
    [0, 1, 0],
    [0, -1, 0],
    [0, 0, 1],
    [0, 0, -1],
    [1, 1, 0],
    [-1, -1, 0],
    [1, -1, 0],
    [-1, 1, 0],
    [1, 0, 1],
    [-1, 0, -1],
    [1, 0, -1],
    [-1, 0, 1],
    [0, 1, 1],
    [0, -1, -1],
    [0, 1, -1],
    [0, -1, 1],
];

/// Quadrature weights `w_q`.
pub const W: [f64; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the velocity opposite to `q` (`c_opp = −c_q`).
pub const OPPOSITE: [usize; Q] = [
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
];

/// Equilibrium distribution for direction `q` at density `rho` and
/// velocity `u`:
/// `f_eq = w_q ρ (1 + 3 c·u + 4.5 (c·u)² − 1.5 u²)`.
#[inline]
pub fn equilibrium(q: usize, rho: f64, u: [f64; 3]) -> f64 {
    let c = C[q];
    let cu = f64::from(c[0]) * u[0] + f64::from(c[1]) * u[1] + f64::from(c[2]) * u[2];
    let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    W[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2)
}

/// Kinematic viscosity (lattice units) of the SRT collision operator at
/// relaxation rate `omega`: `ν = (1/ω − 1/2)/3`.
#[inline]
pub fn viscosity(omega: f64) -> f64 {
    (1.0 / omega - 0.5) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = W.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn velocity_set_is_symmetric() {
        // Sum of c_q is zero in every component.
        for k in 0..3 {
            let s: i32 = C.iter().map(|c| c[k]).sum();
            assert_eq!(s, 0, "component {k}");
        }
        // Opposite table really negates.
        for q in 0..Q {
            for k in 0..3 {
                assert_eq!(C[OPPOSITE[q]][k], -C[q][k], "q={q}");
            }
            assert_eq!(OPPOSITE[OPPOSITE[q]], q);
        }
    }

    #[test]
    fn second_moment_is_isotropic() {
        // Σ_q w_q c_qi c_qj = c_s² δ_ij with c_s² = 1/3.
        for i in 0..3 {
            for j in 0..3 {
                let s: f64 = (0..Q)
                    .map(|q| W[q] * f64::from(C[q][i]) * f64::from(C[q][j]))
                    .sum();
                let expect = if i == j { 1.0 / 3.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-15, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn equilibrium_reproduces_moments() {
        let rho = 1.3;
        let u = [0.02, -0.01, 0.015];
        let f: Vec<f64> = (0..Q).map(|q| equilibrium(q, rho, u)).collect();
        let mass: f64 = f.iter().sum();
        assert!((mass - rho).abs() < 1e-12);
        for k in 0..3 {
            let mom: f64 = (0..Q).map(|q| f[q] * f64::from(C[q][k])).sum();
            assert!((mom - rho * u[k]).abs() < 1e-12, "component {k}");
        }
    }

    #[test]
    fn equilibrium_at_rest_is_weights_times_rho() {
        for q in 0..Q {
            let f = equilibrium(q, 2.0, [0.0; 3]);
            assert!((f - 2.0 * W[q]).abs() < 1e-15);
        }
    }

    #[test]
    fn viscosity_formula() {
        assert!((viscosity(1.0) - 1.0 / 6.0).abs() < 1e-15);
        assert!((viscosity(2.0) - 0.0).abs() < 1e-15);
        assert!(viscosity(0.5) > viscosity(1.0));
    }
}
