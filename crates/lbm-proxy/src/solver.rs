//! A D3Q19 single-relaxation-time (SRT/BGK) lattice-Boltzmann solver.
//!
//! The paper's Fig. 2 workload is an "MPI-parallel double precision
//! Lattice-Boltzmann fluid solver with D3Q19 discretization and a single
//! relaxation time (SRT) model". This is that solver, as a shared-memory
//! kernel: fully periodic box, fused stream-collide in the *pull* scheme
//! (each output cell gathers the distributions streaming into it, then
//! collides locally), two populations swapped per step. The pull scheme
//! writes only to the output cell, so the parallel version can split the
//! output lattice into z-slabs across threads with no write conflicts.
//!
//! Physics is validated in the tests by mass/momentum conservation and the
//! viscous decay rate of a shear wave against the analytic
//! `exp(−ν k² t)` law.

use crate::lattice::{equilibrium, viscosity, C, Q, W};

/// A periodic D3Q19 SRT lattice-Boltzmann fluid box.
pub struct D3Q19 {
    nx: usize,
    ny: usize,
    nz: usize,
    omega: f64,
    /// Current populations, cell-major: `f[(cell)*Q + q]`,
    /// `cell = x + nx*(y + ny*z)`.
    f: Vec<f64>,
    /// Scratch populations for the next step.
    g: Vec<f64>,
    steps_done: u64,
}

impl D3Q19 {
    /// A quiescent fluid (ρ = 1, u = 0) in an `nx × ny × nz` periodic box
    /// with relaxation rate `omega` (0 < ω < 2 for stability).
    ///
    /// # Panics
    ///
    /// If any box dimension is below 2, or `omega` is outside `(0, 2)`.
    pub fn new(nx: usize, ny: usize, nz: usize, omega: f64) -> Self {
        assert!(
            nx >= 2 && ny >= 2 && nz >= 2,
            "box too small: {nx}x{ny}x{nz}"
        );
        assert!(
            omega > 0.0 && omega < 2.0,
            "unstable relaxation rate {omega}"
        );
        let ncells = nx * ny * nz;
        let mut f = vec![0.0; ncells * Q];
        for cell in 0..ncells {
            for q in 0..Q {
                f[cell * Q + q] = W[q];
            }
        }
        let g = f.clone();
        D3Q19 {
            nx,
            ny,
            nz,
            omega,
            f,
            g,
            steps_done: 0,
        }
    }

    /// Initialise with an explicit velocity field at unit density (each
    /// cell set to its local equilibrium).
    pub fn with_velocity_field<F: Fn(usize, usize, usize) -> [f64; 3]>(
        nx: usize,
        ny: usize,
        nz: usize,
        omega: f64,
        field: F,
    ) -> Self {
        let mut s = Self::new(nx, ny, nz, omega);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let u = field(x, y, z);
                    let cell = s.cell(x, y, z);
                    for q in 0..Q {
                        s.f[cell * Q + q] = equilibrium(q, 1.0, u);
                    }
                }
            }
        }
        s
    }

    /// Box dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of lattice cells.
    pub fn ncells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Steps performed so far.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Kinematic viscosity of this solver's collision operator.
    pub fn viscosity(&self) -> f64 {
        viscosity(self.omega)
    }

    #[inline]
    fn cell(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    /// One fused stream-collide step (serial).
    pub fn step(&mut self) {
        let (nx, ny, nz, omega) = (self.nx, self.ny, self.nz, self.omega);
        let f = &self.f;
        let g = &mut self.g;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let out = (x + nx * (y + ny * z)) * Q;
                    pull_collide(f, &mut g[out..out + Q], x, y, z, nx, ny, nz, omega);
                }
            }
        }
        std::mem::swap(&mut self.f, &mut self.g);
        self.steps_done += 1;
    }

    /// One fused stream-collide step with the output lattice split into
    /// contiguous z-slabs across `threads` scoped threads.
    ///
    /// # Panics
    ///
    /// If `threads` is zero.
    pub fn step_parallel(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 || self.nz < threads {
            self.step();
            return;
        }
        let (nx, ny, nz, omega) = (self.nx, self.ny, self.nz, self.omega);
        let plane = nx * ny * Q;
        let planes_per = nz.div_ceil(threads);
        let f = &self.f;
        let chunks = self.g.chunks_mut(planes_per * plane);
        std::thread::scope(|scope| {
            for (ci, chunk) in chunks.enumerate() {
                let z0 = ci * planes_per;
                scope.spawn(move || {
                    let zn = z0 + chunk.len() / plane;
                    for z in z0..zn {
                        for y in 0..ny {
                            for x in 0..nx {
                                let out = (x + nx * (y + ny * (z - z0))) * Q;
                                pull_collide(
                                    f,
                                    &mut chunk[out..out + Q],
                                    x,
                                    y,
                                    z,
                                    nx,
                                    ny,
                                    nz,
                                    omega,
                                );
                            }
                        }
                    }
                });
            }
        });
        std::mem::swap(&mut self.f, &mut self.g);
        self.steps_done += 1;
    }

    /// Density of cell `(x, y, z)`.
    pub fn density(&self, x: usize, y: usize, z: usize) -> f64 {
        let c = self.cell(x, y, z) * Q;
        self.f[c..c + Q].iter().sum()
    }

    /// Velocity of cell `(x, y, z)`.
    pub fn velocity(&self, x: usize, y: usize, z: usize) -> [f64; 3] {
        let c = self.cell(x, y, z) * Q;
        let mut rho = 0.0;
        let mut m = [0.0; 3];
        for q in 0..Q {
            let fq = self.f[c + q];
            rho += fq;
            for k in 0..3 {
                m[k] += fq * f64::from(C[q][k]);
            }
        }
        [m[0] / rho, m[1] / rho, m[2] / rho]
    }

    /// Total mass in the box (conserved exactly by the scheme).
    pub fn total_mass(&self) -> f64 {
        self.f.iter().sum()
    }

    /// Total momentum in the box (conserved by periodic SRT).
    pub fn total_momentum(&self) -> [f64; 3] {
        let mut m = [0.0; 3];
        for cell in 0..self.ncells() {
            for q in 0..Q {
                let fq = self.f[cell * Q + q];
                for k in 0..3 {
                    m[k] += fq * f64::from(C[q][k]);
                }
            }
        }
        m
    }

    /// Mean x-velocity per z-plane — the observable for the shear-wave
    /// validation.
    pub fn ux_profile_z(&self) -> Vec<f64> {
        (0..self.nz)
            .map(|z| {
                let mut s = 0.0;
                for y in 0..self.ny {
                    for x in 0..self.nx {
                        s += self.velocity(x, y, z)[0];
                    }
                }
                s / (self.nx * self.ny) as f64
            })
            .collect()
    }
}

/// Gather the 19 populations streaming into `(x, y, z)` from `f`
/// (periodic), collide with SRT at rate `omega`, and write into `out`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn pull_collide(
    f: &[f64],
    out: &mut [f64],
    x: usize,
    y: usize,
    z: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    omega: f64,
) {
    let mut local = [0.0_f64; Q];
    for (q, l) in local.iter_mut().enumerate() {
        let c = C[q];
        // Pull: the population with velocity c_q arriving here left from
        // (x − c_q) one step ago.
        let sx = (x as i64 - i64::from(c[0])).rem_euclid(nx as i64) as usize;
        let sy = (y as i64 - i64::from(c[1])).rem_euclid(ny as i64) as usize;
        let sz = (z as i64 - i64::from(c[2])).rem_euclid(nz as i64) as usize;
        *l = f[(sx + nx * (sy + ny * sz)) * Q + q];
    }
    let mut rho = 0.0;
    let mut m = [0.0_f64; 3];
    for q in 0..Q {
        rho += local[q];
        for k in 0..3 {
            m[k] += local[q] * f64::from(C[q][k]);
        }
    }
    let u = [m[0] / rho, m[1] / rho, m[2] / rho];
    for q in 0..Q {
        let feq = equilibrium(q, rho, u);
        out[q] = local[q] - omega * (local[q] - feq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn quiescent_fluid_stays_quiescent() {
        let mut s = D3Q19::new(4, 4, 4, 1.0);
        let m0 = s.total_mass();
        for _ in 0..10 {
            s.step();
        }
        assert!((s.total_mass() - m0).abs() < 1e-12);
        let u = s.velocity(2, 1, 3);
        assert!(u.iter().all(|&v| v.abs() < 1e-14), "{u:?}");
        assert_eq!(s.steps_done(), 10);
    }

    #[test]
    fn mass_and_momentum_are_conserved_under_flow() {
        let mut s = D3Q19::with_velocity_field(8, 6, 10, 1.2, |x, y, z| {
            [
                0.01 * ((x + y) as f64).sin(),
                0.005 * (z as f64).cos(),
                0.008 * ((x * z) as f64 * 0.1).sin(),
            ]
        });
        let m0 = s.total_mass();
        let p0 = s.total_momentum();
        for _ in 0..20 {
            s.step();
        }
        assert!((s.total_mass() - m0).abs() / m0 < 1e-12);
        let p1 = s.total_momentum();
        for k in 0..3 {
            assert!(
                (p1[k] - p0[k]).abs() < 1e-10,
                "momentum {k}: {} -> {}",
                p0[k],
                p1[k]
            );
        }
    }

    #[test]
    fn shear_wave_decays_at_the_analytic_viscous_rate() {
        // ux(z) = A sin(2πz/nz): amplitude decays as exp(−ν k² t).
        let nz = 32;
        let a = 1e-4;
        let omega = 1.0;
        let mut s = D3Q19::with_velocity_field(4, 4, nz, omega, |_, _, z| {
            [a * (TAU * z as f64 / nz as f64).sin(), 0.0, 0.0]
        });
        let steps = 60;
        for _ in 0..steps {
            s.step();
        }
        // Project the profile back on the sine mode.
        let profile = s.ux_profile_z();
        let amp = 2.0 / nz as f64
            * profile
                .iter()
                .enumerate()
                .map(|(z, &ux)| ux * (TAU * z as f64 / nz as f64).sin())
                .sum::<f64>();
        let k = TAU / nz as f64;
        let expected = a * (-s.viscosity() * k * k * steps as f64).exp();
        let rel_err = (amp - expected).abs() / expected;
        assert!(
            rel_err < 0.02,
            "decay mismatch: measured {amp:.6e}, analytic {expected:.6e} ({rel_err:.3})"
        );
    }

    #[test]
    fn parallel_step_matches_serial_bitwise() {
        let field = |x: usize, y: usize, z: usize| {
            [
                0.02 * (x as f64 * 0.7).sin(),
                0.01 * (y as f64 * 1.3).cos(),
                0.015 * (z as f64 * 0.4).sin(),
            ]
        };
        let mut serial = D3Q19::with_velocity_field(6, 5, 12, 1.1, field);
        let mut parallel = D3Q19::with_velocity_field(6, 5, 12, 1.1, field);
        for _ in 0..5 {
            serial.step();
            parallel.step_parallel(4);
        }
        assert_eq!(
            serial.f, parallel.f,
            "parallel result must be bit-identical"
        );
    }

    #[test]
    fn parallel_with_more_threads_than_planes_falls_back() {
        let mut s = D3Q19::new(4, 4, 3, 1.0);
        s.step_parallel(8); // nz < threads: serial fallback, no panic
        assert_eq!(s.steps_done(), 1);
    }

    #[test]
    fn uniform_advection_preserves_the_velocity() {
        // A uniform velocity field is an exact solution (Galilean box).
        let mut s = D3Q19::with_velocity_field(6, 6, 6, 1.4, |_, _, _| [0.03, 0.0, 0.0]);
        for _ in 0..15 {
            s.step();
        }
        let u = s.velocity(3, 3, 3);
        assert!((u[0] - 0.03).abs() < 1e-12, "{u:?}");
        assert!(u[1].abs() < 1e-14 && u[2].abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "unstable relaxation")]
    fn omega_out_of_range_panics() {
        D3Q19::new(4, 4, 4, 2.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_box_panics() {
        D3Q19::new(1, 4, 4, 1.0);
    }
}
