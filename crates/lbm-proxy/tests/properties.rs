//! Property-based physics tests: conservation laws must hold for any
//! (stable) initial condition, box shape and relaxation rate, and the
//! parallel kernel must agree with the serial one everywhere.
//!
//! Driven by the in-tree `simdes::check` harness.

use lbm_proxy::{LbmDecomposition, D3Q19};
use simdes::check::{for_all, Gen, DEFAULT_CASES};

/// Draw a small box: (nx, ny, nz, omega) with omega in the stable range.
fn small_box(g: &mut Gen) -> (usize, usize, usize, f64) {
    (g.usize(2, 6), g.usize(2, 6), g.usize(2, 8), g.f64(0.5, 1.9))
}

/// Mass and momentum are conserved for arbitrary smooth low-Mach
/// initial fields.
#[test]
fn conservation_laws() {
    for_all("conservation_laws", 24, |g| {
        let (nx, ny, nz, omega) = small_box(g);
        let ax = g.f64(-0.02, 0.02);
        let az = g.f64(-0.02, 0.02);
        let mut s = D3Q19::with_velocity_field(nx, ny, nz, omega, |x, _, z| {
            [
                ax * (x as f64 * 0.9).sin(),
                0.0,
                az * (z as f64 * 1.1).cos(),
            ]
        });
        let m0 = s.total_mass();
        let p0 = s.total_momentum();
        for _ in 0..8 {
            s.step();
        }
        assert!((s.total_mass() - m0).abs() / m0 < 1e-12);
        let p1 = s.total_momentum();
        for k in 0..3 {
            assert!((p1[k] - p0[k]).abs() < 1e-9, "momentum {k}");
        }
    });
}

/// Parallel stepping is bit-identical to serial stepping for any box
/// and thread count.
#[test]
fn parallel_equals_serial() {
    for_all("parallel_equals_serial", 24, |g| {
        let (nx, ny, nz, omega) = small_box(g);
        let threads = g.usize(1, 5);
        let field = |x: usize, y: usize, z: usize| {
            [
                0.01 * ((x + 2 * y) as f64 * 0.37).sin(),
                0.01 * ((y + z) as f64 * 0.71).cos(),
                0.01 * ((z + 3 * x) as f64 * 0.53).sin(),
            ]
        };
        let mut a = D3Q19::with_velocity_field(nx, ny, nz, omega, field);
        let mut b = D3Q19::with_velocity_field(nx, ny, nz, omega, field);
        for _ in 0..3 {
            a.step();
            b.step_parallel(threads);
        }
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    assert_eq!(a.velocity(x, y, z), b.velocity(x, y, z));
                    assert_eq!(a.density(x, y, z), b.density(x, y, z));
                }
            }
        }
    });
}

/// Densities stay positive and near unity for low-Mach flows (a
/// stability smoke test across the legal omega range).
#[test]
fn densities_stay_physical() {
    for_all("densities_stay_physical", 24, |g| {
        let (nx, ny, nz, omega) = small_box(g);
        let mut s = D3Q19::with_velocity_field(nx, ny, nz, omega, |x, y, z| {
            [
                0.02 * ((x * y) as f64 * 0.21).sin(),
                0.02 * ((y * z) as f64 * 0.43).cos(),
                0.02 * ((z * x) as f64 * 0.17).sin(),
            ]
        });
        for _ in 0..10 {
            s.step();
        }
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let rho = s.density(x, y, z);
                    assert!((0.8..1.2).contains(&rho), "rho {rho} at ({x},{y},{z})");
                }
            }
        }
    });
}

/// The decomposition arithmetic is exact for any divisible problem.
#[test]
fn decomposition_arithmetic() {
    for_all("decomposition_arithmetic", DEFAULT_CASES, |g| {
        let nx = g.u64(4, 511);
        let ny = g.u64(4, 511);
        let nz = g.u64(4, 511);
        let ranks = g.u32(1, 63);
        let d = LbmDecomposition { nx, ny, nz, ranks };
        assert_eq!(d.total_cells(), nx * ny * nz);
        assert_eq!(d.cells_per_rank(), nx * ny * nz / u64::from(ranks));
        assert_eq!(d.traffic_bytes_per_rank(), d.cells_per_rank() * 304);
        assert_eq!(d.halo_bytes_per_neighbor(), ny * nz * 19 * 8);
        assert_eq!(d.working_set_bytes(), 2 * d.total_cells() * 19 * 8);
    });
}
