//! Property-based physics tests: conservation laws must hold for any
//! (stable) initial condition, box shape and relaxation rate, and the
//! parallel kernel must agree with the serial one everywhere.

use lbm_proxy::{D3Q19, LbmDecomposition};
use proptest::prelude::*;

fn boxes() -> impl Strategy<Value = (usize, usize, usize, f64)> {
    (2usize..7, 2usize..7, 2usize..9, 0.5f64..1.9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mass and momentum are conserved for arbitrary smooth low-Mach
    /// initial fields.
    #[test]
    fn conservation_laws((nx, ny, nz, omega) in boxes(),
                         ax in -0.02f64..0.02, az in -0.02f64..0.02) {
        let mut s = D3Q19::with_velocity_field(nx, ny, nz, omega, |x, _, z| {
            [
                ax * (x as f64 * 0.9).sin(),
                0.0,
                az * (z as f64 * 1.1).cos(),
            ]
        });
        let m0 = s.total_mass();
        let p0 = s.total_momentum();
        for _ in 0..8 {
            s.step();
        }
        prop_assert!((s.total_mass() - m0).abs() / m0 < 1e-12);
        let p1 = s.total_momentum();
        for k in 0..3 {
            prop_assert!((p1[k] - p0[k]).abs() < 1e-9, "momentum {k}");
        }
    }

    /// Parallel stepping is bit-identical to serial stepping for any box
    /// and thread count.
    #[test]
    fn parallel_equals_serial((nx, ny, nz, omega) in boxes(), threads in 1usize..6) {
        let field = |x: usize, y: usize, z: usize| {
            [
                0.01 * ((x + 2 * y) as f64 * 0.37).sin(),
                0.01 * ((y + z) as f64 * 0.71).cos(),
                0.01 * ((z + 3 * x) as f64 * 0.53).sin(),
            ]
        };
        let mut a = D3Q19::with_velocity_field(nx, ny, nz, omega, field);
        let mut b = D3Q19::with_velocity_field(nx, ny, nz, omega, field);
        for _ in 0..3 {
            a.step();
            b.step_parallel(threads);
        }
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    prop_assert_eq!(a.velocity(x, y, z), b.velocity(x, y, z));
                    prop_assert_eq!(a.density(x, y, z), b.density(x, y, z));
                }
            }
        }
    }

    /// Densities stay positive and near unity for low-Mach flows (a
    /// stability smoke test across the legal omega range).
    #[test]
    fn densities_stay_physical((nx, ny, nz, omega) in boxes()) {
        let mut s = D3Q19::with_velocity_field(nx, ny, nz, omega, |x, y, z| {
            [
                0.02 * ((x * y) as f64 * 0.21).sin(),
                0.02 * ((y * z) as f64 * 0.43).cos(),
                0.02 * ((z * x) as f64 * 0.17).sin(),
            ]
        });
        for _ in 0..10 {
            s.step();
        }
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let rho = s.density(x, y, z);
                    prop_assert!((0.8..1.2).contains(&rho), "rho {rho} at ({x},{y},{z})");
                }
            }
        }
    }

    /// The decomposition arithmetic is exact for any divisible problem.
    #[test]
    fn decomposition_arithmetic(nx in 4u64..512, ny in 4u64..512, nz in 4u64..512,
                                ranks in 1u32..64) {
        let d = LbmDecomposition { nx, ny, nz, ranks };
        prop_assert_eq!(d.total_cells(), nx * ny * nz);
        prop_assert_eq!(d.cells_per_rank(), nx * ny * nz / u64::from(ranks));
        prop_assert_eq!(d.traffic_bytes_per_rank(), d.cells_per_rank() * 304);
        prop_assert_eq!(d.halo_bytes_per_neighbor(), ny * nz * 19 * 8);
        prop_assert_eq!(d.working_set_bytes(), 2 * d.total_cells() * 19 * 8);
    }
}
