//! Property-based tests for delay distributions, injections and
//! histograms: samples must respect their documented bounds for any
//! parameter combination, and the histogram must account for every sample.
//!
//! Driven by the in-tree `simdes::check` harness.

use noise_model::{DelayDistribution, Histogram, Injection, InjectionPlan};
use simdes::check::{for_all, DEFAULT_CASES};
use simdes::{SimDuration, SimRng};

/// Truncated exponential samples never exceed the clamp and the
/// empirical mean is below the (untruncated) mean parameter.
#[test]
fn truncated_exponential_respects_clamp() {
    for_all("truncated_exponential_respects_clamp", DEFAULT_CASES, |g| {
        let mean_us = g.u64(1, 9_999);
        let max_us = g.u64(1, 9_999);
        let d = DelayDistribution::TruncatedExponential {
            mean: SimDuration::from_micros(mean_us),
            max: SimDuration::from_micros(max_us),
        };
        let mut rng = SimRng::seed_from_u64(g.any_u64());
        let mut sum = 0.0;
        for _ in 0..500 {
            let s = d.sample(&mut rng);
            assert!(s <= SimDuration::from_micros(max_us));
            sum += s.as_micros_f64();
        }
        assert!(sum / 500.0 <= mean_us as f64 * 1.6 + 1.0, "mean wildly off");
        // Analytic mean below both parameters.
        assert!(d.mean() <= SimDuration::from_micros(mean_us));
        assert!(d.mean() <= SimDuration::from_micros(max_us));
    });
}

/// Uniform samples stay in their bounds, any bounds.
#[test]
fn uniform_in_bounds() {
    for_all("uniform_in_bounds", DEFAULT_CASES, |g| {
        let a = g.u64(0, 999_999);
        let b = g.u64(0, 999_999);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let d = DelayDistribution::Uniform {
            lo: SimDuration(lo),
            hi: SimDuration(hi),
        };
        let mut rng = SimRng::seed_from_u64(g.any_u64());
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!(s.nanos() >= lo && s.nanos() <= hi);
        }
    });
}

/// Sampling is a pure function of the RNG state: same seed, same draws.
#[test]
fn sampling_reproducible() {
    for_all("sampling_reproducible", DEFAULT_CASES, |g| {
        let mean_us = g.u64(1, 999);
        let seed = g.any_u64();
        let d = DelayDistribution::Exponential {
            mean: SimDuration::from_micros(mean_us),
        };
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    });
}

/// Every recorded sample lands in exactly one bin (or overflow).
#[test]
fn histogram_accounts_for_all_samples() {
    for_all("histogram_accounts_for_all_samples", DEFAULT_CASES, |g| {
        let samples = g.vec(1, 500, |g| g.u64(0, 9_999_999));
        let bin_us = g.u64(1, 99);
        let bins = g.usize(1, 127);
        let mut h = Histogram::new(SimDuration::from_micros(bin_us), bins);
        for &s in &samples {
            h.record(SimDuration(s));
        }
        let in_bins: u64 = h.counts().iter().sum();
        assert_eq!(in_bins + h.overflow(), samples.len() as u64);
        assert_eq!(h.total(), samples.len() as u64);
        let max = samples.iter().copied().max().unwrap();
        assert_eq!(h.max().nanos(), max);
        // Mean within [min, max].
        let min = samples.iter().copied().min().unwrap();
        assert!(h.mean().nanos() >= min.saturating_sub(1) && h.mean().nanos() <= max);
    });
}

/// Injection plans answer exactly what was put in, for any plan.
#[test]
fn injection_plan_lookup_consistent() {
    for_all("injection_plan_lookup_consistent", DEFAULT_CASES, |g| {
        let list = g.vec(0, 30, |g| (g.u32(0, 19), g.u32(0, 9), g.u64(1, 999_999)));
        let plan = InjectionPlan::from_list(
            list.iter()
                .map(|&(rank, step, ns)| Injection {
                    rank,
                    step,
                    duration: SimDuration(ns),
                })
                .collect(),
        );
        // Sum per coordinate must match.
        for rank in 0..20 {
            for step in 0..10 {
                let expect: u64 = list
                    .iter()
                    .filter(|&&(r, s, _)| r == rank && s == step)
                    .map(|&(_, _, ns)| ns)
                    .sum();
                assert_eq!(plan.delay_for(rank, step).nanos(), expect);
            }
        }
        assert_eq!(plan.is_empty(), list.is_empty());
        let max = list.iter().map(|&(_, _, ns)| ns).max().unwrap_or(0);
        assert_eq!(plan.max_duration().nanos(), max);
    });
}
