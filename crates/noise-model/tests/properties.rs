//! Property-based tests for delay distributions, injections and
//! histograms: samples must respect their documented bounds for any
//! parameter combination, and the histogram must account for every sample.

use noise_model::{DelayDistribution, Histogram, Injection, InjectionPlan};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use simdes::SimDuration;

proptest! {
    /// Truncated exponential samples never exceed the clamp and the
    /// empirical mean is below the (untruncated) mean parameter.
    #[test]
    fn truncated_exponential_respects_clamp(mean_us in 1u64..10_000, max_us in 1u64..10_000,
                                            seed in any::<u64>()) {
        let d = DelayDistribution::TruncatedExponential {
            mean: SimDuration::from_micros(mean_us),
            max: SimDuration::from_micros(max_us),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum = 0.0;
        for _ in 0..500 {
            let s = d.sample(&mut rng);
            prop_assert!(s <= SimDuration::from_micros(max_us));
            sum += s.as_micros_f64();
        }
        prop_assert!(sum / 500.0 <= mean_us as f64 * 1.6 + 1.0, "mean wildly off");
        // Analytic mean below both parameters.
        prop_assert!(d.mean() <= SimDuration::from_micros(mean_us));
        prop_assert!(d.mean() <= SimDuration::from_micros(max_us));
    }

    /// Uniform samples stay in their bounds, any bounds.
    #[test]
    fn uniform_in_bounds(a in 0u64..1_000_000, b in 0u64..1_000_000, seed in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let d = DelayDistribution::Uniform {
            lo: SimDuration(lo),
            hi: SimDuration(hi),
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!(s.nanos() >= lo && s.nanos() <= hi);
        }
    }

    /// Sampling is a pure function of the RNG state: same seed, same draws.
    #[test]
    fn sampling_reproducible(mean_us in 1u64..1000, seed in any::<u64>()) {
        let d = DelayDistribution::Exponential { mean: SimDuration::from_micros(mean_us) };
        let mut a = SmallRng::seed_from_u64(seed);
        let mut b = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    /// Every recorded sample lands in exactly one bin (or overflow).
    #[test]
    fn histogram_accounts_for_all_samples(
        samples in prop::collection::vec(0u64..10_000_000, 1..500),
        bin_us in 1u64..100,
        bins in 1usize..128,
    ) {
        let mut h = Histogram::new(SimDuration::from_micros(bin_us), bins);
        for &s in &samples {
            h.record(SimDuration(s));
        }
        let in_bins: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_bins + h.overflow(), samples.len() as u64);
        prop_assert_eq!(h.total(), samples.len() as u64);
        let max = samples.iter().copied().max().unwrap();
        prop_assert_eq!(h.max().nanos(), max);
        // Mean within [min, max].
        let min = samples.iter().copied().min().unwrap();
        prop_assert!(h.mean().nanos() >= min.saturating_sub(1) && h.mean().nanos() <= max);
    }

    /// Injection plans answer exactly what was put in, for any plan.
    #[test]
    fn injection_plan_lookup_consistent(
        list in prop::collection::vec((0u32..20, 0u32..10, 1u64..1_000_000), 0..30)
    ) {
        let plan = InjectionPlan::from_list(
            list.iter()
                .map(|&(rank, step, ns)| Injection { rank, step, duration: SimDuration(ns) })
                .collect(),
        );
        // Sum per coordinate must match.
        for rank in 0..20 {
            for step in 0..10 {
                let expect: u64 = list
                    .iter()
                    .filter(|&&(r, s, _)| r == rank && s == step)
                    .map(|&(_, _, ns)| ns)
                    .sum();
                prop_assert_eq!(plan.delay_for(rank, step).nanos(), expect);
            }
        }
        prop_assert_eq!(plan.is_empty(), list.is_empty());
        let max = list.iter().map(|&(_, _, ns)| ns).max().unwrap_or(0);
        prop_assert_eq!(plan.max_duration().nanos(), max);
    }
}
