//! Delay distributions.
//!
//! A [`DelayDistribution`] is a stateless description of a random
//! per-execution-phase delay; sampling takes an external RNG so that each
//! rank can own an independent, reproducible stream (see
//! `simdes::SeedFactory`).
//!
//! The paper's injected noise (Eq. 3) is exponential:
//!
//! ```text
//! f(T_delay/T_exec; λ) = λ · exp(−λ · T_delay/T_exec),   E = 1/λ
//! ```
//!
//! i.e. an exponential with mean `E · T_exec` where `E` is the "mean relative
//! delay per execution period". The natural system noise of Fig. 3 is
//! near-exponential with a hard upper cutoff (< 30 µs with SMT) and, for
//! Omni-Path without SMT, bimodal with a second component at ≈ 660 µs.

use simdes::{SimDuration, SimRng};
use tracefmt::json::{self, FromJson, Json, ToJson};

/// A distribution of non-negative delays.
///
/// Cheap to clone for every variant except [`DelayDistribution::Empirical`],
/// which owns its sample vector.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayDistribution {
    /// No delay, ever. The "silent system" of Sec. IV-C.
    None,
    /// The same delay every time (useful in tests and ablations).
    Constant(SimDuration),
    /// Exponential with the given mean.
    Exponential {
        /// Mean delay.
        mean: SimDuration,
    },
    /// Exponential with mean `mean`, truncated by clamping every sample at
    /// `max`. Matches the hard cutoffs seen in Fig. 3 (with SMT enabled the
    /// measured delays never exceed ≈ 30 µs).
    TruncatedExponential {
        /// Mean of the underlying exponential.
        mean: SimDuration,
        /// Upper clamp applied to every sample.
        max: SimDuration,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: SimDuration,
        /// Inclusive upper bound.
        hi: SimDuration,
    },
    /// Bounded Pareto tail: `scale · U^{−1/alpha}` clamped at `max`.
    /// Same mean as an exponential can hide a far heavier tail — used by
    /// the decay-shape ablation to show that idle-wave damping depends on
    /// the noise *distribution*, not only its mean.
    Pareto {
        /// Scale (minimum value) of the Pareto law.
        scale: SimDuration,
        /// Tail exponent α (> 1 for a finite mean).
        alpha: f64,
        /// Hard clamp applied to every sample.
        max: SimDuration,
    },
    /// Empirical bootstrap: draw uniformly from recorded samples
    /// (nanoseconds). Lets experiments replay *measured* noise — e.g. a
    /// per-phase delay trace collected on a real machine — instead of a
    /// parametric fit. Build with [`DelayDistribution::empirical`].
    Empirical {
        /// Recorded delay samples in nanoseconds (non-empty).
        samples: Vec<u64>,
    },
    /// Two-component mixture: with probability `p_second`, draw from the
    /// second component, else from the first. Models the bimodal Omni-Path
    /// histogram of Fig. 3(b) (base OS noise + an expensive driver event).
    Bimodal {
        /// First (bulk) component: truncated exponential.
        first_mean: SimDuration,
        /// Clamp for the first component.
        first_max: SimDuration,
        /// Center of the second (spike) component.
        second_center: SimDuration,
        /// Half-width of the second component (uniform around the center).
        second_halfwidth: SimDuration,
        /// Probability of drawing from the second component.
        p_second: f64,
    },
}

impl DelayDistribution {
    /// Draw one delay.
    ///
    /// # Panics
    ///
    /// On parameter combinations that [`DelayDistribution::check`] rejects
    /// (empty empirical sample set, inverted uniform bounds, Pareto
    /// `alpha <= 1`).
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            DelayDistribution::Empirical { ref samples } => {
                assert!(
                    !samples.is_empty(),
                    "empirical distribution with no samples"
                );
                let idx = rng.index(samples.len());
                SimDuration(samples[idx])
            }
            DelayDistribution::None => SimDuration::ZERO,
            DelayDistribution::Constant(d) => d,
            DelayDistribution::Exponential { mean } => sample_exponential(rng, mean),
            DelayDistribution::TruncatedExponential { mean, max } => {
                sample_exponential(rng, mean).min(max)
            }
            DelayDistribution::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted");
                let span = hi.nanos() - lo.nanos();
                SimDuration(lo.nanos() + rng.u64_inclusive(0, span))
            }
            DelayDistribution::Pareto { scale, alpha, max } => {
                assert!(alpha > 1.0, "Pareto alpha must exceed 1 for a finite mean");
                let u = rng.f64_unit();
                // 1 − u in (0, 1]: no division by zero.
                let v = scale.as_secs_f64() * (1.0 - u).powf(-1.0 / alpha);
                SimDuration::from_secs_f64(v).min(max)
            }
            DelayDistribution::Bimodal {
                first_mean,
                first_max,
                second_center,
                second_halfwidth,
                p_second,
            } => {
                if rng.f64_unit() < p_second {
                    let lo = second_center.saturating_sub(second_halfwidth);
                    let hi = second_center + second_halfwidth;
                    let span = hi.nanos() - lo.nanos();
                    SimDuration(lo.nanos() + rng.u64_inclusive(0, span))
                } else {
                    sample_exponential(rng, first_mean).min(first_max)
                }
            }
        }
    }

    /// Analytic mean of the distribution (exact except for the truncated
    /// exponential, where the clamped mean is computed in closed form).
    ///
    /// # Panics
    ///
    /// On parameter combinations that [`DelayDistribution::check`] rejects
    /// (empty empirical sample set, Pareto `alpha <= 1`).
    pub fn mean(&self) -> SimDuration {
        match *self {
            DelayDistribution::Empirical { ref samples } => {
                assert!(
                    !samples.is_empty(),
                    "empirical distribution with no samples"
                );
                let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
                SimDuration((sum / samples.len() as u128) as u64)
            }
            DelayDistribution::None => SimDuration::ZERO,
            DelayDistribution::Constant(d) => d,
            DelayDistribution::Exponential { mean } => mean,
            DelayDistribution::TruncatedExponential { mean, max } => {
                // E[min(X, c)] for X ~ Exp(mean): mean · (1 − e^{−c/mean}).
                if mean.is_zero() {
                    return SimDuration::ZERO;
                }
                let m = mean.as_secs_f64();
                let c = max.as_secs_f64();
                SimDuration::from_secs_f64(m * (1.0 - (-c / m).exp()))
            }
            DelayDistribution::Uniform { lo, hi } => SimDuration((lo.nanos() + hi.nanos()) / 2),
            DelayDistribution::Pareto { scale, alpha, max } => {
                // Unclamped mean α·scale/(α−1); the clamp correction for a
                // bounded Pareto: E[min(X, c)] with X ~ Pareto(s, α) is
                // s·α/(α−1) − (s/c)^α · c/(α−1)  (for c ≥ s).
                assert!(alpha > 1.0, "Pareto alpha must exceed 1 for a finite mean");
                let s = scale.as_secs_f64();
                let c = max.as_secs_f64().max(s);
                let mean = s * alpha / (alpha - 1.0) - (s / c).powf(alpha) * c / (alpha - 1.0);
                SimDuration::from_secs_f64(mean)
            }
            DelayDistribution::Bimodal {
                first_mean,
                first_max,
                second_center,
                p_second,
                ..
            } => {
                let first = DelayDistribution::TruncatedExponential {
                    mean: first_mean,
                    max: first_max,
                }
                .mean()
                .as_secs_f64();
                let second = second_center.as_secs_f64();
                SimDuration::from_secs_f64(first * (1.0 - p_second) + second * p_second)
            }
        }
    }

    /// `true` if every sample is zero.
    pub fn is_silent(&self) -> bool {
        match self {
            DelayDistribution::None => true,
            DelayDistribution::Constant(d) => d.is_zero(),
            DelayDistribution::Empirical { samples } => samples.iter().all(|&v| v == 0),
            _ => false,
        }
    }

    /// Non-panicking parameter validation: `Err` describes the first
    /// invalid parameter. [`DelayDistribution::sample`] asserts the same
    /// conditions at draw time; this front-loads them so a config analyzer
    /// can report the problem before a simulation starts.
    pub fn check(&self) -> Result<(), String> {
        match *self {
            DelayDistribution::Empirical { ref samples } if samples.is_empty() => {
                Err("empirical distribution with no samples".into())
            }
            DelayDistribution::Pareto { alpha, .. } if !(alpha > 1.0) => Err(format!(
                "Pareto alpha must exceed 1 for a finite mean (alpha = {alpha})"
            )),
            DelayDistribution::Uniform { lo, hi } if lo > hi => {
                Err(format!("uniform bounds inverted (lo = {lo} > hi = {hi})"))
            }
            DelayDistribution::Bimodal { p_second, .. } if !(0.0..=1.0).contains(&p_second) => Err(
                format!("bimodal p_second must lie in [0, 1] (p_second = {p_second})"),
            ),
            _ => Ok(()),
        }
    }

    /// An empirical bootstrap distribution over recorded delays.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn empirical(samples: Vec<SimDuration>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        DelayDistribution::Empirical {
            samples: samples.into_iter().map(|d| d.nanos()).collect(),
        }
    }

    /// An empirical distribution approximating a histogram: each bin
    /// contributes its midpoint, weighted proportionally by its count
    /// (about `max_points` representative points in total; bins whose
    /// share rounds to zero are dropped, so extreme tail mass below
    /// `total/(2·max_points)` is lost).
    ///
    /// # Panics
    /// Panics on an empty histogram.
    pub fn from_histogram(h: &crate::Histogram, max_points: usize) -> Self {
        assert!(h.total() > 0, "cannot fit an empty histogram");
        assert!(max_points > 0, "need at least one representative point");
        let total = h.total() as u128;
        let mut samples = Vec::new();
        let half_bin = h.bin_width().nanos() / 2;
        for (i, &count) in h.counts().iter().enumerate() {
            // Proportional representation with rounding.
            let points = ((2 * count as u128 * max_points as u128 + total) / (2 * total)) as usize;
            if points == 0 {
                continue;
            }
            let mid = h.bin_start(i).nanos() + half_bin;
            samples.extend(std::iter::repeat_n(mid, points));
        }
        if samples.is_empty() {
            // Degenerate: everything in the overflow bin or extremely
            // flat; fall back to the histogram mean.
            samples.push(h.mean().nanos());
        }
        DelayDistribution::Empirical { samples }
    }
}

/// Inverse-CDF exponential sampling via [`SimRng::exp`].
fn sample_exponential(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
    if mean.is_zero() {
        return SimDuration::ZERO;
    }
    SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64()))
}

impl ToJson for DelayDistribution {
    fn to_json(&self) -> Json {
        match *self {
            DelayDistribution::None => Json::Str("None".into()),
            DelayDistribution::Constant(d) => Json::obj(vec![("Constant", d.to_json())]),
            DelayDistribution::Exponential { mean } => Json::obj(vec![(
                "Exponential",
                Json::obj(vec![("mean", mean.to_json())]),
            )]),
            DelayDistribution::TruncatedExponential { mean, max } => Json::obj(vec![(
                "TruncatedExponential",
                Json::obj(vec![("mean", mean.to_json()), ("max", max.to_json())]),
            )]),
            DelayDistribution::Uniform { lo, hi } => Json::obj(vec![(
                "Uniform",
                Json::obj(vec![("lo", lo.to_json()), ("hi", hi.to_json())]),
            )]),
            DelayDistribution::Pareto { scale, alpha, max } => Json::obj(vec![(
                "Pareto",
                Json::obj(vec![
                    ("scale", scale.to_json()),
                    ("alpha", alpha.to_json()),
                    ("max", max.to_json()),
                ]),
            )]),
            DelayDistribution::Empirical { ref samples } => Json::obj(vec![(
                "Empirical",
                Json::obj(vec![("samples", samples.to_json())]),
            )]),
            DelayDistribution::Bimodal {
                first_mean,
                first_max,
                second_center,
                second_halfwidth,
                p_second,
            } => Json::obj(vec![(
                "Bimodal",
                Json::obj(vec![
                    ("first_mean", first_mean.to_json()),
                    ("first_max", first_max.to_json()),
                    ("second_center", second_center.to_json()),
                    ("second_halfwidth", second_halfwidth.to_json()),
                    ("p_second", p_second.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for DelayDistribution {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (variant, p) = v.expect_variant()?;
        Ok(match variant {
            "None" => DelayDistribution::None,
            "Constant" => DelayDistribution::Constant(SimDuration::from_json(p)?),
            "Exponential" => DelayDistribution::Exponential {
                mean: SimDuration::from_json(p.field("mean")?)?,
            },
            "TruncatedExponential" => DelayDistribution::TruncatedExponential {
                mean: SimDuration::from_json(p.field("mean")?)?,
                max: SimDuration::from_json(p.field("max")?)?,
            },
            "Uniform" => DelayDistribution::Uniform {
                lo: SimDuration::from_json(p.field("lo")?)?,
                hi: SimDuration::from_json(p.field("hi")?)?,
            },
            "Pareto" => DelayDistribution::Pareto {
                scale: SimDuration::from_json(p.field("scale")?)?,
                alpha: f64::from_json(p.field("alpha")?)?,
                max: SimDuration::from_json(p.field("max")?)?,
            },
            "Empirical" => DelayDistribution::Empirical {
                samples: Vec::<u64>::from_json(p.field("samples")?)?,
            },
            "Bimodal" => DelayDistribution::Bimodal {
                first_mean: SimDuration::from_json(p.field("first_mean")?)?,
                first_max: SimDuration::from_json(p.field("first_max")?)?,
                second_center: SimDuration::from_json(p.field("second_center")?)?,
                second_halfwidth: SimDuration::from_json(p.field("second_halfwidth")?)?,
                p_second: f64::from_json(p.field("p_second")?)?,
            },
            other => {
                return Err(json::JsonError(format!(
                    "unknown DelayDistribution variant '{other}'"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(12345)
    }

    fn empirical_mean(d: &DelayDistribution, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r).as_secs_f64()).sum::<f64>() / n as f64
    }

    #[test]
    fn none_and_constant() {
        let mut r = rng();
        assert_eq!(DelayDistribution::None.sample(&mut r), SimDuration::ZERO);
        assert!(DelayDistribution::None.is_silent());
        let c = DelayDistribution::Constant(SimDuration::from_micros(5));
        assert_eq!(c.sample(&mut r), SimDuration::from_micros(5));
        assert!(!c.is_silent());
        assert!(DelayDistribution::Constant(SimDuration::ZERO).is_silent());
    }

    #[test]
    fn exponential_mean_converges() {
        let mean = SimDuration::from_micros(300);
        let d = DelayDistribution::Exponential { mean };
        let m = empirical_mean(&d, 200_000);
        let target = mean.as_secs_f64();
        assert!(
            (m - target).abs() / target < 0.02,
            "mean off: {m} vs {target}"
        );
        assert_eq!(d.mean(), mean);
    }

    #[test]
    fn exponential_samples_are_nonnegative_and_spread() {
        let d = DelayDistribution::Exponential {
            mean: SimDuration::from_micros(10),
        };
        let mut r = rng();
        let mut above = 0;
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            if s > SimDuration::from_micros(10) {
                above += 1;
            }
        }
        // P(X > mean) = 1/e ≈ 0.368.
        assert!((3200..4200).contains(&above), "got {above}");
    }

    #[test]
    fn truncation_clamps() {
        let d = DelayDistribution::TruncatedExponential {
            mean: SimDuration::from_micros(10),
            max: SimDuration::from_micros(15),
        };
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) <= SimDuration::from_micros(15));
        }
        // Closed-form truncated mean: 10 · (1 − e^{−1.5}) ≈ 7.769 µs.
        let want = 10.0 * (1.0 - (-1.5f64).exp());
        let got = d.mean().as_micros_f64();
        assert!((got - want).abs() < 0.01, "{got} vs {want}");
        let emp = empirical_mean(&d, 200_000) * 1e6;
        assert!((emp - want).abs() / want < 0.02, "{emp} vs {want}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = DelayDistribution::Uniform {
            lo: SimDuration::from_micros(2),
            hi: SimDuration::from_micros(6),
        };
        let mut r = rng();
        for _ in 0..10_000 {
            let s = d.sample(&mut r);
            assert!(s >= SimDuration::from_micros(2) && s <= SimDuration::from_micros(6));
        }
        assert_eq!(d.mean(), SimDuration::from_micros(4));
    }

    #[test]
    fn bimodal_produces_both_modes() {
        let d = DelayDistribution::Bimodal {
            first_mean: SimDuration::from_micros(3),
            first_max: SimDuration::from_micros(30),
            second_center: SimDuration::from_micros(660),
            second_halfwidth: SimDuration::from_micros(40),
            p_second: 0.05,
        };
        let mut r = rng();
        let (mut low, mut high) = (0u32, 0u32);
        for _ in 0..50_000 {
            let s = d.sample(&mut r);
            if s >= SimDuration::from_micros(620) {
                high += 1;
            } else if s <= SimDuration::from_micros(30) {
                low += 1;
            } else {
                panic!("sample {s} falls between the modes");
            }
        }
        let p = high as f64 / 50_000.0;
        assert!((0.04..0.06).contains(&p), "spike fraction {p}");
        assert!(low > 0);
        // Mean ≈ 0.95·2.85 + 0.05·660 ≈ 35.7 µs.
        let m = d.mean().as_micros_f64();
        assert!((30.0..40.0).contains(&m), "mean {m}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let d = DelayDistribution::Exponential {
            mean: SimDuration::from_micros(7),
        };
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn check_accepts_valid_and_rejects_invalid_parameters() {
        let us = SimDuration::from_micros;
        assert!(DelayDistribution::None.check().is_ok());
        assert!(DelayDistribution::Exponential { mean: us(3) }
            .check()
            .is_ok());
        assert!(DelayDistribution::Uniform {
            lo: us(1),
            hi: us(2)
        }
        .check()
        .is_ok());
        let inverted = DelayDistribution::Uniform {
            lo: us(5),
            hi: us(2),
        };
        assert!(inverted.check().unwrap_err().contains("inverted"));
        let heavy = DelayDistribution::Pareto {
            scale: us(1),
            alpha: 0.9,
            max: us(100),
        };
        assert!(heavy.check().unwrap_err().contains("alpha"));
        let nan_alpha = DelayDistribution::Pareto {
            scale: us(1),
            alpha: f64::NAN,
            max: us(100),
        };
        assert!(nan_alpha.check().is_err());
        let empty = DelayDistribution::Empirical {
            samples: Vec::new(),
        };
        assert!(empty.check().unwrap_err().contains("no samples"));
        let bad_mix = DelayDistribution::Bimodal {
            first_mean: us(3),
            first_max: us(30),
            second_center: us(660),
            second_halfwidth: us(40),
            p_second: 1.5,
        };
        assert!(bad_mix.check().unwrap_err().contains("p_second"));
    }

    #[test]
    fn zero_mean_exponential_is_silent_in_practice() {
        let d = DelayDistribution::Exponential {
            mean: SimDuration::ZERO,
        };
        let mut r = rng();
        assert_eq!(d.sample(&mut r), SimDuration::ZERO);
    }
}

#[cfg(test)]
mod pareto_tests {
    use super::*;

    #[test]
    fn pareto_samples_respect_bounds() {
        let d = DelayDistribution::Pareto {
            scale: SimDuration::from_micros(10),
            alpha: 1.5,
            max: SimDuration::from_millis(5),
        };
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..50_000 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_micros(9)); // rounding slack
            assert!(s <= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn pareto_mean_matches_closed_form() {
        let d = DelayDistribution::Pareto {
            scale: SimDuration::from_micros(100),
            alpha: 2.0,
            max: SimDuration::from_millis(10),
        };
        // Unclamped mean 200 us; clamp at 10 ms subtracts
        // (0.1/10)^2 * 10ms / 1 = 1 us => 199 us.
        let mean = d.mean().as_micros_f64();
        assert!((mean - 199.0).abs() < 1.0, "mean {mean}");
        // Empirical check.
        let mut rng = SimRng::seed_from_u64(4);
        let emp: f64 = (0..400_000)
            .map(|_| d.sample(&mut rng).as_micros_f64())
            .sum::<f64>()
            / 400_000.0;
        assert!(
            (emp - mean).abs() / mean < 0.03,
            "empirical {emp} vs {mean}"
        );
    }

    #[test]
    fn pareto_is_heavier_tailed_than_exponential_at_same_mean() {
        let pareto = DelayDistribution::Pareto {
            scale: SimDuration::from_micros(50),
            alpha: 1.2,
            max: SimDuration::from_millis(100),
        };
        let mean = pareto.mean();
        let exp = DelayDistribution::Exponential { mean };
        let mut rng = SimRng::seed_from_u64(5);
        let big = SimDuration::from_millis(3);
        let count = |d: &DelayDistribution, rng: &mut SimRng| {
            (0..100_000).filter(|_| d.sample(rng) > big).count()
        };
        let p_big = count(&pareto, &mut rng);
        let e_big = count(&exp, &mut rng);
        assert!(
            p_big > 5 * e_big.max(1),
            "pareto tail not heavier: {p_big} vs {e_big}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn pareto_with_infinite_mean_panics_on_sample() {
        let d = DelayDistribution::Pareto {
            scale: SimDuration::from_micros(1),
            alpha: 0.9,
            max: SimDuration::from_millis(1),
        };
        let mut rng = SimRng::seed_from_u64(1);
        let _ = d.sample(&mut rng);
    }
}

#[cfg(test)]
mod empirical_tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn empirical_samples_only_recorded_values() {
        let d = DelayDistribution::empirical(vec![
            SimDuration::from_micros(2),
            SimDuration::from_micros(5),
            SimDuration::from_micros(11),
        ]);
        let mut rng = SimRng::seed_from_u64(1);
        let allowed = [2_000u64, 5_000, 11_000];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let s = d.sample(&mut rng).nanos();
            assert!(allowed.contains(&s), "unexpected sample {s}");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 3, "all recorded values should appear");
        // Mean of the records.
        assert_eq!(d.mean(), SimDuration::from_nanos(6_000));
        assert!(!d.is_silent());
        assert!(DelayDistribution::empirical(vec![SimDuration::ZERO]).is_silent());
    }

    #[test]
    fn from_histogram_reproduces_the_shape() {
        // Measure noise -> histogram -> empirical replay: the replayed
        // mean must track the measured one.
        let source = DelayDistribution::Exponential {
            mean: SimDuration::from_micros(50),
        };
        let mut rng = SimRng::seed_from_u64(2);
        let mut h = Histogram::new(SimDuration::from_micros(5), 200);
        for _ in 0..100_000 {
            h.record(source.sample(&mut rng));
        }
        let replay = DelayDistribution::from_histogram(&h, 2_000);
        let m_src = h.mean().as_micros_f64();
        let m_rep = replay.mean().as_micros_f64();
        assert!(
            (m_rep - m_src).abs() / m_src < 0.05,
            "replayed mean {m_rep} vs measured {m_src}"
        );
        // Replayed samples respect the histogram's support.
        let mut rng2 = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let s = replay.sample(&mut rng2);
            assert!(s <= SimDuration::from_micros(1000));
        }
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_empirical_panics() {
        DelayDistribution::empirical(Vec::new());
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_histogram_panics() {
        let h = Histogram::new(SimDuration::from_micros(1), 4);
        DelayDistribution::from_histogram(&h, 10);
    }

    #[test]
    fn empirical_noise_drives_a_simulation_like_any_other() {
        // End-to-end smoke: JSON round trip preserves the samples.
        let d = DelayDistribution::empirical(vec![
            SimDuration::from_micros(1),
            SimDuration::from_micros(2),
        ]);
        let text = json::to_string(&d);
        let back: DelayDistribution = json::from_str(&text).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let us = SimDuration::from_micros;
        let variants = vec![
            DelayDistribution::None,
            DelayDistribution::Constant(us(5)),
            DelayDistribution::Exponential { mean: us(300) },
            DelayDistribution::TruncatedExponential {
                mean: us(10),
                max: us(30),
            },
            DelayDistribution::Uniform {
                lo: us(2),
                hi: us(6),
            },
            DelayDistribution::Pareto {
                scale: us(10),
                alpha: 1.5,
                max: us(5000),
            },
            DelayDistribution::Empirical {
                samples: vec![1_000, 2_000],
            },
            DelayDistribution::Bimodal {
                first_mean: us(3),
                first_max: us(30),
                second_center: us(660),
                second_halfwidth: us(40),
                p_second: 0.05,
            },
        ];
        for d in variants {
            let text = json::to_string(&d);
            let back: DelayDistribution = json::from_str(&text).unwrap();
            assert_eq!(d, back, "round trip failed for {text}");
        }
    }
}
