//! One-off delay injection.
//!
//! The paper distinguishes *noise* (fine-grained, statistical, every phase)
//! from *delays* (long, one-off, injected at a specific rank and time step).
//! This module describes the latter: an [`InjectionPlan`] maps `(rank,
//! step)` to an extra execution delay, with builders for every pattern used
//! in the paper:
//!
//! * a single delay at one rank (Fig. 4, 5, 7, 9),
//! * one delay on a fixed local rank of every socket, with equal, halved, or
//!   random durations (Fig. 6 a/b/c).

use simdes::{SeedFactory, SimDuration};
use std::collections::BTreeMap;
use tracefmt::json::{self, FromJson, Json, ToJson};

/// One planned delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Rank that stalls.
    pub rank: u32,
    /// Zero-based time step whose execution phase is lengthened.
    pub step: u32,
    /// Extra execution time.
    pub duration: SimDuration,
}

/// A set of one-off delays, queryable by `(rank, step)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectionPlan {
    injections: Vec<Injection>,
    index: BTreeMap<(u32, u32), SimDuration>,
}

impl InjectionPlan {
    /// No injected delays.
    pub fn none() -> Self {
        InjectionPlan::default()
    }

    /// Build from an explicit list. Multiple injections at the same `(rank,
    /// step)` accumulate.
    pub fn from_list(list: Vec<Injection>) -> Self {
        let mut index = BTreeMap::new();
        for inj in &list {
            *index
                .entry((inj.rank, inj.step))
                .or_insert(SimDuration::ZERO) += inj.duration;
        }
        InjectionPlan {
            injections: list,
            index,
        }
    }

    /// A single delay — the canonical idle-wave trigger.
    pub fn single(rank: u32, step: u32, duration: SimDuration) -> Self {
        Self::from_list(vec![Injection {
            rank,
            step,
            duration,
        }])
    }

    /// Fig. 6(a): the same delay on local rank `local` of each of
    /// `sockets` sockets (with `per_socket` ranks per socket), at `step`.
    ///
    /// # Panics
    ///
    /// If `local >= per_socket`.
    pub fn per_socket_equal(
        sockets: u32,
        per_socket: u32,
        local: u32,
        step: u32,
        duration: SimDuration,
    ) -> Self {
        assert!(local < per_socket, "local rank outside socket");
        let list = (0..sockets)
            .map(|s| Injection {
                rank: s * per_socket + local,
                step,
                duration,
            })
            .collect();
        Self::from_list(list)
    }

    /// Fig. 6(b): like [`InjectionPlan::per_socket_equal`] but the delay on
    /// odd sockets is half as long.
    ///
    /// # Panics
    ///
    /// If `local >= per_socket`.
    pub fn per_socket_half_on_odd(
        sockets: u32,
        per_socket: u32,
        local: u32,
        step: u32,
        duration: SimDuration,
    ) -> Self {
        assert!(local < per_socket, "local rank outside socket");
        let list = (0..sockets)
            .map(|s| Injection {
                rank: s * per_socket + local,
                step,
                duration: if s % 2 == 1 { duration / 2 } else { duration },
            })
            .collect();
        Self::from_list(list)
    }

    /// Fig. 6(c): a random delay, uniform on `[min, max]`, on the same
    /// local rank of each socket. Deterministic given the seed factory.
    ///
    /// # Panics
    ///
    /// If `local >= per_socket` or `min > max`.
    pub fn per_socket_random(
        sockets: u32,
        per_socket: u32,
        local: u32,
        step: u32,
        min: SimDuration,
        max: SimDuration,
        seeds: &SeedFactory,
    ) -> Self {
        assert!(local < per_socket, "local rank outside socket");
        assert!(min <= max, "inverted random-delay bounds");
        let mut rng = seeds.stream("injection", 0);
        let span = max.nanos() - min.nanos();
        let list = (0..sockets)
            .map(|s| Injection {
                rank: s * per_socket + local,
                step,
                duration: SimDuration(min.nanos() + rng.u64_inclusive(0, span)),
            })
            .collect();
        Self::from_list(list)
    }

    /// Delay to add to the execution phase of `(rank, step)`, zero if none.
    pub fn delay_for(&self, rank: u32, step: u32) -> SimDuration {
        self.index
            .get(&(rank, step))
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// All planned injections.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// `true` if nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The longest single injected delay (zero for an empty plan). Fig. 6's
    /// "longest initial delays survive" analysis needs this.
    pub fn max_duration(&self) -> SimDuration {
        self.injections
            .iter()
            .map(|i| i.duration)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Rebuild the lookup index. JSON parsing goes through
    /// [`InjectionPlan::from_list`], which indexes eagerly, so this is only
    /// needed by callers that restored a plan through some other channel.
    pub fn reindex(&mut self) {
        self.index.clear();
        for inj in &self.injections {
            *self
                .index
                .entry((inj.rank, inj.step))
                .or_insert(SimDuration::ZERO) += inj.duration;
        }
    }
}

impl ToJson for Injection {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", self.rank.to_json()),
            ("step", self.step.to_json()),
            ("duration", self.duration.to_json()),
        ])
    }
}

impl FromJson for Injection {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(Injection {
            rank: u32::from_json(v.field("rank")?)?,
            step: u32::from_json(v.field("step")?)?,
            duration: SimDuration::from_json(v.field("duration")?)?,
        })
    }
}

impl ToJson for InjectionPlan {
    fn to_json(&self) -> Json {
        Json::obj(vec![("injections", self.injections.to_json())])
    }
}

impl FromJson for InjectionPlan {
    fn from_json(v: &Json) -> json::Result<Self> {
        let injections = Vec::<Injection>::from_json(v.field("injections")?)?;
        Ok(InjectionPlan::from_list(injections))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn single_injection_lookup() {
        let p = InjectionPlan::single(5, 1, MS.times(13));
        assert_eq!(p.delay_for(5, 1), MS.times(13));
        assert_eq!(p.delay_for(5, 2), SimDuration::ZERO);
        assert_eq!(p.delay_for(4, 1), SimDuration::ZERO);
        assert!(!p.is_empty());
        assert_eq!(p.max_duration(), MS.times(13));
    }

    #[test]
    fn none_is_empty() {
        let p = InjectionPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.delay_for(0, 0), SimDuration::ZERO);
        assert_eq!(p.max_duration(), SimDuration::ZERO);
    }

    #[test]
    fn duplicate_injections_accumulate() {
        let p = InjectionPlan::from_list(vec![
            Injection {
                rank: 2,
                step: 3,
                duration: MS,
            },
            Injection {
                rank: 2,
                step: 3,
                duration: MS.times(2),
            },
        ]);
        assert_eq!(p.delay_for(2, 3), MS.times(3));
    }

    #[test]
    fn per_socket_equal_matches_fig6a() {
        // 10 sockets x 10 ranks, delay at local rank 5 => global 5, 15, ...
        let p = InjectionPlan::per_socket_equal(10, 10, 5, 0, MS.times(9));
        assert_eq!(p.injections().len(), 10);
        for s in 0..10 {
            assert_eq!(p.delay_for(s * 10 + 5, 0), MS.times(9));
        }
        assert_eq!(p.delay_for(6, 0), SimDuration::ZERO);
    }

    #[test]
    fn per_socket_half_matches_fig6b() {
        let p = InjectionPlan::per_socket_half_on_odd(4, 10, 5, 0, MS.times(8));
        assert_eq!(p.delay_for(5, 0), MS.times(8));
        assert_eq!(p.delay_for(15, 0), MS.times(4));
        assert_eq!(p.delay_for(25, 0), MS.times(8));
        assert_eq!(p.delay_for(35, 0), MS.times(4));
    }

    #[test]
    fn per_socket_random_is_bounded_and_reproducible() {
        let seeds = SeedFactory::new(99);
        let a = InjectionPlan::per_socket_random(10, 10, 5, 0, MS, MS.times(10), &seeds);
        let b = InjectionPlan::per_socket_random(10, 10, 5, 0, MS, MS.times(10), &seeds);
        assert_eq!(a, b);
        for inj in a.injections() {
            assert!(inj.duration >= MS && inj.duration <= MS.times(10));
            assert_eq!(inj.rank % 10, 5);
        }
        // Different seeds give different draws.
        let c = InjectionPlan::per_socket_random(
            10,
            10,
            5,
            0,
            MS,
            MS.times(10),
            &SeedFactory::new(100),
        );
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "outside socket")]
    fn local_rank_outside_socket_panics() {
        InjectionPlan::per_socket_equal(2, 10, 10, 0, MS);
    }

    #[test]
    fn reindex_restores_lookup() {
        let mut p = InjectionPlan::single(1, 2, MS);
        p.index.clear();
        assert_eq!(p.delay_for(1, 2), SimDuration::ZERO);
        p.reindex();
        assert_eq!(p.delay_for(1, 2), MS);
    }

    #[test]
    fn json_round_trip_restores_index() {
        let p = InjectionPlan::from_list(vec![
            Injection {
                rank: 2,
                step: 3,
                duration: MS,
            },
            Injection {
                rank: 2,
                step: 3,
                duration: MS.times(2),
            },
            Injection {
                rank: 7,
                step: 0,
                duration: MS.times(5),
            },
        ]);
        let text = json::to_string(&p);
        let back: InjectionPlan = json::from_str(&text).unwrap();
        assert_eq!(p, back);
        // The lookup index is rebuilt, not just the list.
        assert_eq!(back.delay_for(2, 3), MS.times(3));
        assert_eq!(back.delay_for(7, 0), MS.times(5));
    }
}
