//! Noise presets fitted to the paper's measurements.
//!
//! Fig. 3 characterises the natural per-phase execution delays of the two
//! clusters over 3 ms compute phases (3.3 × 10⁵ samples):
//!
//! * **SMT enabled** (Fig. 3a): both systems near-exponential, average
//!   2.4 µs (InfiniBand/Emmy) and 2.8 µs (Omni-Path/Meggie), maximum < 30 µs.
//! * **SMT disabled** (Fig. 3b): Omni-Path becomes *bimodal* with a second
//!   peak at ≈ 660 µs, attributed to the CPU-hungry Omni-Path driver; the
//!   InfiniBand system merely broadens.
//!
//! The injected application noise of Sec. V (Eq. 3) is exponential with
//! mean `E · T_exec` where `E` is the scanned noise level.

use simdes::SimDuration;

use crate::distribution::DelayDistribution;

/// Natural system noise of the InfiniBand system ("Emmy") with SMT enabled —
/// the configuration the paper uses for its InfiniBand runs.
pub fn emmy_smt_on() -> DelayDistribution {
    DelayDistribution::TruncatedExponential {
        mean: SimDuration::from_micros_f64(2.4),
        max: SimDuration::from_micros(30),
    }
}

/// Natural system noise of the Omni-Path system ("Meggie") with SMT enabled.
pub fn meggie_smt_on() -> DelayDistribution {
    DelayDistribution::TruncatedExponential {
        mean: SimDuration::from_micros_f64(2.8),
        max: SimDuration::from_micros(30),
    }
}

/// Natural system noise of the InfiniBand system with SMT disabled: same
/// shape, broader tail (no SMT sibling to absorb OS work).
pub fn emmy_smt_off() -> DelayDistribution {
    DelayDistribution::TruncatedExponential {
        mean: SimDuration::from_micros_f64(9.0),
        max: SimDuration::from_micros(120),
    }
}

/// Natural system noise of the Omni-Path system with SMT disabled: bimodal,
/// with the driver-induced second peak at ≈ 660 µs (paper Fig. 3b). The
/// configuration the paper uses for its Omni-Path runs.
pub fn meggie_smt_off() -> DelayDistribution {
    DelayDistribution::Bimodal {
        first_mean: SimDuration::from_micros_f64(12.0),
        first_max: SimDuration::from_micros(150),
        second_center: SimDuration::from_micros(660),
        second_halfwidth: SimDuration::from_micros(36),
        p_second: 0.02,
    }
}

/// A perfectly quiet system — the simulator baseline.
pub fn silent() -> DelayDistribution {
    DelayDistribution::None
}

/// The paper's injected fine-grained application noise (Eq. 3): exponential
/// with mean `E · T_exec`, where `e_percent` is E expressed in percent
/// (the x-axis of Fig. 8).
///
/// # Panics
///
/// If `e_percent` is outside `[0, 1000]`.
pub fn application_noise(e_percent: f64, t_exec: SimDuration) -> DelayDistribution {
    assert!(
        (0.0..=1000.0).contains(&e_percent),
        "noise level {e_percent}% out of range"
    );
    // Exact zero means "noise disabled", not an approximate quantity.
    // simlint: allow(float-cmp)
    if e_percent == 0.0 {
        return DelayDistribution::None;
    }
    DelayDistribution::Exponential {
        mean: t_exec.mul_f64(e_percent / 100.0),
    }
}

/// Named system-noise configurations, for harnesses that scan the paper's
/// platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemPreset {
    /// InfiniBand cluster, SMT on (official configuration).
    EmmySmtOn,
    /// InfiniBand cluster, SMT off.
    EmmySmtOff,
    /// Omni-Path cluster, SMT on.
    MeggieSmtOn,
    /// Omni-Path cluster, SMT off (official configuration).
    MeggieSmtOff,
    /// Noise-free simulated system.
    Silent,
}

impl SystemPreset {
    /// The delay distribution of this preset.
    pub fn distribution(self) -> DelayDistribution {
        match self {
            SystemPreset::EmmySmtOn => emmy_smt_on(),
            SystemPreset::EmmySmtOff => emmy_smt_off(),
            SystemPreset::MeggieSmtOn => meggie_smt_on(),
            SystemPreset::MeggieSmtOff => meggie_smt_off(),
            SystemPreset::Silent => silent(),
        }
    }

    /// Human-readable label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            SystemPreset::EmmySmtOn => "InfiniBand (SMT on)",
            SystemPreset::EmmySmtOff => "InfiniBand (SMT off)",
            SystemPreset::MeggieSmtOn => "Omni-Path (SMT on)",
            SystemPreset::MeggieSmtOff => "Omni-Path (SMT off)",
            SystemPreset::Silent => "silent",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdes::SimRng;

    #[test]
    fn smt_on_means_match_paper() {
        // Truncation barely moves the mean (30 µs cutoff on a 2.4 µs
        // exponential): check the paper's quoted averages hold within 1 %.
        let e = emmy_smt_on().mean().as_micros_f64();
        assert!((e - 2.4).abs() / 2.4 < 0.01, "emmy mean {e}");
        let m = meggie_smt_on().mean().as_micros_f64();
        assert!((m - 2.8).abs() / 2.8 < 0.01, "meggie mean {m}");
    }

    #[test]
    fn smt_on_max_below_30us() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100_000 {
            assert!(emmy_smt_on().sample(&mut rng) <= SimDuration::from_micros(30));
        }
    }

    #[test]
    fn meggie_smt_off_is_bimodal_near_660us() {
        let mut rng = SimRng::seed_from_u64(2);
        let d = meggie_smt_off();
        let spike = (0..100_000)
            .filter(|_| {
                let s = d.sample(&mut rng);
                s >= SimDuration::from_micros(600)
            })
            .count();
        let p = spike as f64 / 100_000.0;
        assert!((0.015..0.025).contains(&p), "spike fraction {p}");
    }

    #[test]
    fn application_noise_matches_eq3() {
        let texec = SimDuration::from_millis(3);
        let d = application_noise(10.0, texec);
        match d {
            DelayDistribution::Exponential { mean } => {
                assert_eq!(mean, SimDuration::from_micros(300));
            }
            other => panic!("expected exponential, got {other:?}"),
        }
        assert!(application_noise(0.0, texec).is_silent());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_noise_level_panics() {
        application_noise(5000.0, SimDuration::from_millis(3));
    }

    #[test]
    fn preset_enum_round_trip() {
        for p in [
            SystemPreset::EmmySmtOn,
            SystemPreset::EmmySmtOff,
            SystemPreset::MeggieSmtOn,
            SystemPreset::MeggieSmtOff,
            SystemPreset::Silent,
        ] {
            let _ = p.distribution();
            assert!(!p.label().is_empty());
        }
        assert!(SystemPreset::Silent.distribution().is_silent());
    }

    #[test]
    fn smt_damping_ordering() {
        // The paper: SMT damps system noise. Means must reflect that.
        assert!(emmy_smt_on().mean() < emmy_smt_off().mean());
        assert!(meggie_smt_on().mean() < meggie_smt_off().mean());
    }
}
