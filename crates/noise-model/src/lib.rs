//! # noise-model — delay and noise generation
//!
//! Everything stochastic in the reproduction lives here:
//!
//! * [`DelayDistribution`] — stateless samplable distributions (exponential
//!   per Eq. 3 of the paper, truncated and bimodal variants for the natural
//!   system noise of Fig. 3);
//! * [`InjectionPlan`] — one-off long delays at specific `(rank, step)`
//!   coordinates, with builders for every injection pattern in the paper;
//! * [`Histogram`] — fixed-bin-width histograms matching the Fig. 3
//!   presentation;
//! * [`presets`] — distributions fitted to the paper's measured noise.

#![warn(missing_docs)]

mod distribution;
mod histogram;
mod injection;
pub mod presets;

pub use distribution::DelayDistribution;
pub use histogram::Histogram;
pub use injection::{Injection, InjectionPlan};
