//! Fixed-bin-width histograms for noise characterisation (Fig. 3).
//!
//! The paper's system-noise study collects 3.3 × 10⁵ per-phase delay samples
//! and plots them in histograms with a bin size of 640 ns (SMT on) or 7.2 µs
//! (SMT off). [`Histogram`] reproduces exactly that: fixed-width bins from
//! zero, an overflow bin, and the summary moments quoted in the text
//! (average delay, maximum delay).

use simdes::SimDuration;

/// A histogram of delay durations with fixed-width bins starting at zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: SimDuration,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum_ns: u128,
    max: SimDuration,
}

impl Histogram {
    /// Empty histogram with `bins` bins of width `bin_width`; samples at or
    /// beyond `bins · bin_width` land in the overflow bin.
    ///
    /// # Panics
    ///
    /// If `bin_width` is zero or `bins` is zero.
    pub fn new(bin_width: SimDuration, bins: usize) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum_ns: 0,
            max: SimDuration::ZERO,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = (d.nanos() / self.bin_width.nanos()) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum_ns += u128::from(d.nanos());
        self.max = self.max.max(d);
    }

    /// Record many samples.
    pub fn record_all<I: IntoIterator<Item = SimDuration>>(&mut self, it: I) {
        for d in it {
            self.record(d);
        }
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Count in bin `i` (bin `i` covers `[i·w, (i+1)·w)`).
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// All in-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded samples (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.sum_ns / u128::from(self.total)) as u64)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Lower edge of bin `i`.
    pub fn bin_start(&self, i: usize) -> SimDuration {
        SimDuration(self.bin_width.nanos() * i as u64)
    }

    /// Index of the non-empty bin with the largest count, ignoring bins
    /// below `from` — used to locate the second mode of a bimodal histogram.
    pub fn peak_bin_from(&self, from: usize) -> Option<usize> {
        let slice = self.counts.get(from..)?;
        let (off, &cnt) = slice.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        if cnt == 0 {
            return None;
        }
        Some(from + off)
    }

    /// Fraction of samples in bins `[lo, hi)` (in-range bins only).
    pub fn mass_between(&self, lo: usize, hi: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = lo.min(self.counts.len());
        let hi = hi.min(self.counts.len());
        if lo >= hi {
            return 0.0;
        }
        let sum: u64 = self.counts[lo..hi].iter().sum();
        sum as f64 / self.total as f64
    }

    /// Render rows of `(bin_start_us, count)` for reporting.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_start(i).as_micros_f64(), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new(us(1), 4);
        h.record(SimDuration::from_nanos(0));
        h.record(SimDuration::from_nanos(999));
        h.record(us(1)); // exactly on edge => bin 1
        h.record(SimDuration::from_nanos(3_999));
        h.record(us(4)); // beyond last bin => overflow
        assert_eq!(h.counts(), &[2, 1, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn moments() {
        let mut h = Histogram::new(us(1), 100);
        h.record_all([us(2), us(4), us(6)]);
        assert_eq!(h.mean(), us(4));
        assert_eq!(h.max(), us(6));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new(us(1), 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.peak_bin_from(0), None);
        assert_eq!(h.mass_between(0, 10), 0.0);
    }

    #[test]
    fn peak_detection_finds_second_mode() {
        let mut h = Histogram::new(us(10), 100);
        // Bulk at 0-10 us, spike around 660 us (bin 66).
        for _ in 0..1000 {
            h.record(us(3));
        }
        for _ in 0..50 {
            h.record(us(662));
        }
        assert_eq!(h.peak_bin_from(0), Some(0));
        assert_eq!(h.peak_bin_from(10), Some(66));
    }

    #[test]
    fn mass_between_fractions() {
        let mut h = Histogram::new(us(1), 10);
        for i in 0..10u64 {
            h.record(us(i));
        }
        assert!((h.mass_between(0, 5) - 0.5).abs() < 1e-12);
        assert!((h.mass_between(0, 10) - 1.0).abs() < 1e-12);
        assert!((h.mass_between(7, 3)).abs() < 1e-12);
    }

    #[test]
    fn rows_report_bin_starts_in_us() {
        let mut h = Histogram::new(SimDuration::from_nanos(640), 3);
        h.record(SimDuration::from_nanos(700));
        let rows = h.rows();
        assert_eq!(rows.len(), 3);
        assert!((rows[1].0 - 0.64).abs() < 1e-9);
        assert_eq!(rows[1].1, 1);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        Histogram::new(SimDuration::ZERO, 4);
    }
}
