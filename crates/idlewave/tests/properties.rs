//! Property-based tests of the analysis layer: Eq. (2) must hold on a
//! silent system for any configuration in its domain, wave fronts must be
//! causally ordered, and elimination accounting must balance.
//!
//! Driven by the in-tree `simdes::check` harness.

use idlewave::wavefront::{arrivals_from, Walk};
use idlewave::{model, speed, WaveExperiment};
use simdes::check::for_all;
use simdes::SimDuration;
use workload::{Boundary, Direction};

/// Eq. (2) within a few percent on a silent chain, for any
/// direction × protocol × distance × T_exec in the supported grid.
#[test]
fn eq2_holds_on_silent_systems() {
    for_all("eq2_holds_on_silent_systems", 24, |g| {
        let bidirectional = g.bool();
        let rendezvous = g.bool();
        let distance = g.u32(1, 2);
        let texec_ms = g.u64(1, 5);
        let ranks = 16 + 8 * distance; // room for a clean fit
        let source = 2 * distance + 1;
        let mut e = WaveExperiment::flat_chain(ranks)
            .direction(if bidirectional {
                Direction::Bidirectional
            } else {
                Direction::Unidirectional
            })
            .boundary(Boundary::Open)
            .distance(distance)
            .texec(SimDuration::from_millis(texec_ms))
            .steps(26)
            .inject(source, 0, SimDuration::from_millis(texec_ms * 5));
        e = if rendezvous {
            e.rendezvous()
        } else {
            e.eager()
        };
        let wt = e.run();
        let th = wt.default_threshold();
        let cmp = speed::compare_with_model(&wt, source, th).expect("wave must reach enough ranks");
        assert!(
            (cmp.ratio - 1.0).abs() < 0.10,
            "Eq. 2 violated: measured {} predicted {} (ratio {})",
            cmp.measured,
            cmp.predicted,
            cmp.ratio
        );
        // With sigma*d ranks arriving per step the front is a staircase,
        // which bounds the linear fit's R^2 away from 1; 0.9 still means
        // "constant speed" at these scales.
        assert!(cmp.r2 > 0.9, "speed not constant: r2 {}", cmp.r2);
    });
}

/// On a silent system wave arrivals are strictly ordered in time and
/// step along the walk; under noise the detector may fire on noise
/// spikes, so there we only require positive amplitudes.
#[test]
fn arrivals_are_causally_ordered() {
    for_all("arrivals_are_causally_ordered", 24, |g| {
        let source = g.u32(2, 9);
        let delay_phases = g.u64(2, 7);
        let noise_pct = g.u32(0, 9);
        let seed = g.any_u64();
        let texec = SimDuration::from_millis(2);
        let wt = WaveExperiment::flat_chain(16)
            .direction(Direction::Bidirectional)
            .texec(texec)
            .steps(20)
            .inject(source, 0, texec.times(delay_phases))
            .noise_percent(f64::from(noise_pct))
            .seed(seed)
            .run();
        let th = wt.default_threshold();
        for walk in [Walk::Up, Walk::Down] {
            let arr = arrivals_from(&wt, source, walk, th);
            if noise_pct == 0 {
                for w in arr.windows(2) {
                    assert!(w[1].time >= w[0].time, "{walk:?} arrivals out of order");
                    assert!(w[1].step >= w[0].step);
                }
            }
            for a in &arr {
                assert!(a.amplitude > SimDuration::ZERO);
                assert!(a.rank != source);
            }
        }
    });
}

/// sigma is 2 exactly for bidirectional rendezvous, matching the
/// measured front on a silent system.
#[test]
fn sigma_table_is_consistent_with_measurement() {
    for_all("sigma_table_is_consistent_with_measurement", 3, |g| {
        let texec_ms = g.u64(2, 4);
        let texec = SimDuration::from_millis(texec_ms);
        let delay = texec.times(5);
        let speed_of = |dir: Direction, rdv: bool| {
            let mut e = WaveExperiment::flat_chain(24)
                .direction(dir)
                .texec(texec)
                .steps(24)
                .inject(5, 0, delay);
            e = if rdv { e.rendezvous() } else { e.eager() };
            let wt = e.run();
            let th = wt.default_threshold();
            speed::measure_speed(&wt, 5, Walk::Up, th)
                .unwrap()
                .ranks_per_sec
        };
        let base = speed_of(Direction::Unidirectional, false);
        for (dir, rdv, sigma) in [
            (Direction::Unidirectional, true, 1.0),
            (Direction::Bidirectional, false, 1.0),
            (Direction::Bidirectional, true, 2.0),
        ] {
            let v = speed_of(dir, rdv);
            // Rendezvous adds a little handshake time to the period, so
            // compare loosely.
            assert!(
                (v / base - sigma).abs() < 0.12 * sigma,
                "{dir:?} rdv={rdv}: speed ratio {} expected ~{sigma}",
                v / base
            );
        }
    });
}

/// The analytic model is homogeneous: scaling T_exec + T_comm scales
/// the speed inversely.
#[test]
fn v_silent_scaling() {
    for_all("v_silent_scaling", 24, |g| {
        let sigma = g.u32(1, 2);
        let d = g.u32(1, 4);
        let t_us = g.u64(100, 99_999);
        let k = g.u64(2, 9);
        let t = SimDuration::from_micros(t_us);
        let v1 = model::v_silent(sigma, d, t, SimDuration::ZERO);
        let vk = model::v_silent(
            sigma,
            d,
            SimDuration::from_micros(t_us * k),
            SimDuration::ZERO,
        );
        assert!((v1 / vk - k as f64).abs() < 1e-6);
    });
}
