//! Property tests of the work-stealing sweep fabric: the merged report is
//! a pure function of the scenario list — bit-identical regardless of
//! worker count, shard count, steal interleaving, injected worker kills,
//! warm vs cold result cache, and resume after a crash at an arbitrary
//! record cut.
//!
//! Driven by the in-tree `simdes::check` harness.

use std::path::{Path, PathBuf};

use idlewave::sweep::{run_sweep, FabricChaos, Scenario, SweepOptions};
use idlewave::WaveExperiment;
use simdes::check::{for_all, Gen};
use simdes::SimDuration;
use tracefmt::json;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("idlewave-fabric-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// Remove the merged report plus any manifest/shard droppings so a case
/// never inherits state from the previous one.
fn fresh(out: &Path) -> PathBuf {
    let _ = std::fs::remove_file(out);
    let name = out.file_name().expect("file name").to_string_lossy();
    let dir = out.parent().expect("parent");
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let n = e.file_name().to_string_lossy().into_owned();
            if n.starts_with(&format!("{name}.shard-")) || n == format!("{name}.manifest") {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
    out.to_path_buf()
}

fn bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A random suite of clean (cache-eligible) scenarios with distinct
/// seeds, mixed chain lengths, and both protocols.
fn gen_scenarios(g: &mut Gen) -> Vec<Scenario> {
    let n = g.usize(3, 6);
    (0..n)
        .map(|i| {
            let ranks = g.u32(4, 10);
            let steps = g.u32(3, 6);
            let mut cfg = WaveExperiment::flat_chain(ranks)
                .texec(SimDuration::from_micros(500))
                .steps(steps)
                .seed(g.any_u64())
                .into_config();
            if g.bool() {
                cfg.protocol = mpisim::Protocol::Rendezvous;
            }
            Scenario::new(format!("case-{i}"), cfg)
        })
        .collect()
}

#[test]
fn merged_report_is_invariant_under_fabric_scheduling() {
    for_all(
        "merged_report_is_invariant_under_fabric_scheduling",
        8,
        |g| {
            let scenarios = gen_scenarios(g);
            let n = scenarios.len();
            let base = SweepOptions {
                wall_timeout: std::time::Duration::from_secs(30),
                ..SweepOptions::default()
            };

            // Control: one worker, one shard — fully sequential.
            let control_out = fresh(&tmp("control.jsonl"));
            let control = run_sweep(
                &scenarios,
                &SweepOptions {
                    threads: 1,
                    shards: Some(1),
                    ..base.clone()
                },
                &control_out,
            )
            .expect("control sweep");
            assert!(control.all_ok(), "{:?}", control.results);
            let want = bytes(&control_out);

            // Any worker count × shard count × kill schedule: same bytes.
            let threads = g.pick(&[2usize, 8]);
            let shards = g.usize(1, 5);
            let kills: Vec<(usize, usize)> =
                g.vec(0, threads, |g| (g.usize(0, threads - 1), g.usize(0, 2)));
            let chaotic_out = fresh(&tmp("chaotic.jsonl"));
            let report = run_sweep(
                &scenarios,
                &SweepOptions {
                    threads,
                    shards: Some(shards),
                    fabric_chaos: FabricChaos {
                        kill_workers: kills.clone(),
                    },
                    ..base.clone()
                },
                &chaotic_out,
            )
            .expect("chaotic sweep");
            assert!(report.all_ok());
            assert_eq!(
                bytes(&chaotic_out),
                want,
                "threads={threads} shards={shards} kills={kills:?} changed the report"
            );

            // Cold then warm cache: the warm run does zero re-simulations and
            // still produces the same bytes.
            let cache_dir = tmp("cache");
            let _ = std::fs::remove_dir_all(&cache_dir);
            let cached = SweepOptions {
                threads,
                shards: Some(shards),
                cache_dir: Some(cache_dir),
                ..base.clone()
            };
            let cold_out = fresh(&tmp("cold.jsonl"));
            let cold = run_sweep(&scenarios, &cached, &cold_out).expect("cold sweep");
            assert_eq!(cold.cache_misses, n, "{cold:?}");
            assert_eq!(bytes(&cold_out), want, "cold cache changed the report");
            let warm_out = fresh(&tmp("warm.jsonl"));
            let warm = run_sweep(&scenarios, &cached, &warm_out).expect("warm sweep");
            assert_eq!(warm.cache_hits, n, "warm rerun must serve everything");
            assert_eq!(warm.cache_misses, 0);
            assert_eq!(bytes(&warm_out), want, "warm cache changed the report");

            // Resume after a crash at a random record cut: a previous run
            // persisted the first `cut` records across a random shard layout
            // and died mid-write on the next one. The shard file layout
            // (`<out>.shard-K.jsonl`) is a documented contract — see
            // docs/SWEEP.md.
            let resumed_out = fresh(&tmp("resumed.jsonl"));
            let cut = g.usize(0, n);
            let prev_shards = g.usize(1, 4);
            let shard_file = |k: usize| {
                resumed_out.with_file_name(format!(
                    "{}.shard-{k}.jsonl",
                    resumed_out.file_name().expect("name").to_string_lossy()
                ))
            };
            for (i, r) in control.results.iter().take(cut).enumerate() {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(shard_file(i % prev_shards))
                    .expect("shard file");
                writeln!(f, "{}", json::to_string(r)).expect("plant record");
            }
            if cut < n {
                use std::io::Write as _;
                let line = json::to_string(&control.results[cut]);
                let tear = g.usize(1, line.len().saturating_sub(1).max(1));
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(shard_file(cut % prev_shards))
                    .expect("shard file");
                f.write_all(line[..tear].as_bytes()).expect("torn record");
            }
            let resumed = run_sweep(
                &scenarios,
                &SweepOptions {
                    threads,
                    shards: Some(shards),
                    resume: true,
                    ..base.clone()
                },
                &resumed_out,
            )
            .expect("resumed sweep");
            assert_eq!(resumed.reused, cut, "cut={cut} prev_shards={prev_shards}");
            assert!(resumed.all_ok());
            assert_eq!(
                bytes(&resumed_out),
                want,
                "resume after a cut at record {cut} (prev_shards={prev_shards}) \
             changed the report"
            );
        },
    );
}
