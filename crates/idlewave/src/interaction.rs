//! Interaction of multiple idle waves (paper Sec. IV-B, Fig. 6).
//!
//! Idle waves are *not* linear waves: when two fronts meet they partially
//! or fully cancel instead of passing through each other. The paper
//! demonstrates this with per-socket injections on a periodic 100-rank
//! chain: equal delays annihilate pairwise after half the socket gap,
//! unequal delays leave a surviving remnant that travels on, and random
//! delays leave only the longest waves alive.
//!
//! This module quantifies interaction through the per-step *activity*
//! profile (how many ranks idle in a step) and each wave's extinction
//! step.

use simdes::SimDuration;

use crate::experiment::WaveTrace;

/// Aggregate description of wave activity over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// Per step: number of ranks idling beyond the threshold.
    pub per_step: Vec<u32>,
    /// First step after which no rank idles again, if the waves die out
    /// before the run ends.
    pub extinction_step: Option<u32>,
    /// Total idle time summed over all ranks and steps.
    pub total_idle: SimDuration,
}

/// Compute the activity profile of a run.
pub fn activity_profile(wt: &WaveTrace, threshold: SimDuration) -> ActivityProfile {
    let steps = wt.trace.steps();
    let per_step: Vec<u32> = (0..steps).map(|s| wt.activity(s, threshold)).collect();
    let last_active = per_step.iter().rposition(|&n| n > 0);
    let extinction_step = match last_active {
        None => Some(0),
        Some(last) if (last as u32) < steps - 1 => Some(last as u32 + 1),
        Some(_) => None, // still active in the final step
    };
    let total_idle = (0..wt.trace.ranks()).map(|r| wt.total_idle(r)).sum();
    ActivityProfile {
        per_step,
        extinction_step,
        total_idle,
    }
}

/// Idle time accumulated by each rank over the whole run — the spatial
/// footprint of the waves (Fig. 6's timelines collapsed over time).
pub fn idle_footprint(wt: &WaveTrace) -> Vec<SimDuration> {
    (0..wt.trace.ranks()).map(|r| wt.total_idle(r)).collect()
}

/// `true` if every injected wave died before the run ended — full
/// cancellation (Fig. 6a) as opposed to survival to termination (Fig. 6c).
pub fn fully_cancelled(wt: &WaveTrace, threshold: SimDuration) -> bool {
    activity_profile(wt, threshold).extinction_step.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use noise_model::InjectionPlan;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    /// Periodic bidirectional eager ring with `sockets` x `per_socket`
    /// ranks, delays injected on local rank 2 of each socket (a shrunken
    /// Fig. 6).
    fn ring(sockets: u32, per_socket: u32, plan: InjectionPlan, steps: u32) -> WaveTrace {
        WaveExperiment::flat_chain(sockets * per_socket)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Periodic)
            .texec(MS.times(3))
            .steps(steps)
            .injections(plan)
            .run()
    }

    #[test]
    fn equal_waves_cancel_pairwise_quickly() {
        // Fig. 6(a): equal delays on every socket cancel after half the
        // inter-injection gap (here gap 8, so ~4 hops).
        let plan = InjectionPlan::per_socket_equal(4, 8, 2, 0, MS.times(12));
        let wt = ring(4, 8, plan, 20);
        let th = wt.default_threshold();
        let p = activity_profile(&wt, th);
        assert!(
            p.extinction_step.is_some(),
            "equal waves must fully cancel; profile {:?}",
            p.per_step
        );
        let ext = p.extinction_step.unwrap();
        assert!(
            (3..=7).contains(&ext),
            "expected cancellation after ~4 hops, got step {ext}"
        );
        assert!(fully_cancelled(&wt, th));
    }

    #[test]
    fn unequal_waves_partially_cancel_and_survive_longer() {
        // Fig. 6(b): halved delays on odd sockets: the longer waves'
        // remnants travel further before meeting their symmetric partners.
        let equal = InjectionPlan::per_socket_equal(4, 8, 2, 0, MS.times(12));
        let half = InjectionPlan::per_socket_half_on_odd(4, 8, 2, 0, MS.times(12));
        let we = ring(4, 8, equal, 24);
        let wh = ring(4, 8, half, 24);
        let the = we.default_threshold();
        let thh = wh.default_threshold();
        let ee = activity_profile(&we, the)
            .extinction_step
            .expect("equal cancels");
        let eh = activity_profile(&wh, thh)
            .extinction_step
            .expect("half cancels");
        assert!(
            eh > ee,
            "surviving remnants must outlive the equal case: equal {ee}, half {eh}"
        );
    }

    #[test]
    fn single_wave_on_a_ring_survives_one_traversal() {
        // One wave, no partner to cancel with: it dies only at the
        // injector after a full wrap (bidirectional: the two fronts meet at
        // the antipode after N/2 hops).
        let plan = InjectionPlan::single(5, 0, MS.times(12));
        let wt = ring(4, 8, plan.clone(), 30);
        let th = wt.default_threshold();
        let p = activity_profile(&wt, th);
        let ext = p.extinction_step.expect("wave dies at antipode");
        assert!(
            (14..=18).contains(&ext),
            "expected ~16 hops (half of 32), got {ext}"
        );
    }

    #[test]
    fn footprint_covers_all_ranks_reached() {
        let plan = InjectionPlan::single(5, 0, MS.times(12));
        let wt = ring(4, 8, plan, 30);
        let fp = idle_footprint(&wt);
        assert_eq!(fp.len(), 32);
        // Every rank except the injector idles roughly once.
        let th = wt.default_threshold();
        let touched = fp.iter().filter(|&&d| d > th).count();
        assert!(touched >= 30, "only {touched} ranks touched");
        assert!(fp[5] < MS, "the injector itself should not idle");
    }

    #[test]
    fn total_idle_scales_with_cancellation() {
        // Two opposing equal waves cancel: total idle is bounded by
        // (hops to meet) x amplitude x 2 rather than ranks x amplitude.
        let plan = InjectionPlan::per_socket_equal(2, 8, 2, 0, MS.times(12));
        let wt = ring(2, 8, plan, 20);
        let p = activity_profile(&wt, wt.default_threshold());
        // 16 ranks; waves from ranks 2 and 10 meet after ~4 hops each
        // travelling both directions: ~14 rank-idles of ~12 ms.
        let upper = MS.times(12).as_secs_f64() * 16.0;
        assert!(
            p.total_idle.as_secs_f64() < upper,
            "total idle {}",
            p.total_idle
        );
    }

    #[test]
    fn quiet_run_is_extinct_from_step_zero() {
        let wt = WaveExperiment::flat_chain(8).texec(MS).steps(6).run();
        let p = activity_profile(&wt, wt.default_threshold());
        assert_eq!(p.extinction_step, Some(0));
        assert_eq!(p.per_step, vec![0; 6]);
        assert!(p.total_idle < SimDuration::from_micros(100));
    }
}
