//! The content-addressed sweep result cache.
//!
//! A scenario whose config fingerprint ([`mpisim::config_fingerprint`],
//! FNV-1a of the canonical config JSON) was already simulated to a clean
//! completion does not need to be simulated again: the cache stores, per
//! fingerprint, everything the persisted [`ScenarioResult`] needs —
//! attempts and [`RunSummary`] — so a cache-served record is
//! *byte-identical* to the record the original computation persisted.
//! That property is what lets the self-chaos drill demand bit-identical
//! merged reports across cold and warm caches.
//!
//! Entries are never trusted blindly:
//!
//! * every entry is a two-line footered document
//!   ([`tracefmt::digest::encode_footered`]) whose FNV-1a footer is
//!   verified on load — torn or bit-flipped entries are **quarantined**
//!   (moved into `quarantine/`, kept for post-mortems) and the scenario
//!   is re-simulated;
//! * the entry body embeds the full canonical config JSON, which is
//!   compared against the scenario's — a *fingerprint collision* (or a
//!   corrupted-but-digest-valid file planted by a buggy tool) is
//!   quarantined the same way instead of serving a different config's
//!   numbers (`SC027` warns about it in pre-flight).
//!
//! Only clean results are cached: terminal status `ok`, no harness chaos
//! on the scenario, no explicit per-scenario watchdog override, and no
//! run-aborting event cap — anything else makes the outcome depend on
//! more than the config, which is all the key hashes.
//!
//! Writes are atomic (temp + rename); a crash mid-store leaves at worst
//! a stale `.tmp` next to the previous complete entry.

use std::io;
use std::path::{Path, PathBuf};

use tracefmt::digest::{decode_footered, encode_footered};
use tracefmt::json::{self, FromJson, Json, ToJson};

use super::RunSummary;

/// The footer key of a cache entry's integrity line.
const FOOTER_KEY: &str = "cache_digest";

/// Version tag inside every entry body.
const CACHE_FORMAT: u64 = 1;

/// A directory of verified, fingerprint-addressed sweep results.
pub(crate) struct ResultCache {
    dir: PathBuf,
}

/// Outcome of a cache lookup.
pub(crate) enum Lookup {
    /// A verified entry for this exact config: serve it without running.
    Hit {
        /// Attempts recorded by the original computation.
        attempts: u32,
        /// The original run's summary.
        summary: RunSummary,
    },
    /// No entry — simulate and store.
    Miss,
    /// An entry existed but failed verification (torn, bit-flipped, or a
    /// different config behind the same fingerprint); it was moved to
    /// `quarantine/` and the scenario re-simulates.
    Quarantined(String),
}

impl ResultCache {
    /// Open the cache, creating the directory if missing and probing it
    /// for writability — an unwritable cache dir surfaces as `Err` (the
    /// caller degrades to an uncached sweep with an `SC026` warning)
    /// instead of failing every store mid-sweep.
    pub(crate) fn open(dir: &Path) -> Result<ResultCache, String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let probe = dir.join(".probe.tmp");
        std::fs::write(&probe, b"probe")
            .and_then(|()| std::fs::remove_file(&probe))
            .map_err(|e| e.to_string())?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The entry file for a config fingerprint.
    pub(crate) fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.entry"))
    }

    /// Look up `fingerprint`, verifying integrity and that the stored
    /// config is byte-for-byte `config_json`.
    pub(crate) fn lookup(&self, config_json: &str, fingerprint: u64) -> Lookup {
        let path = self.entry_path(fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            Err(e) => return self.quarantine(fingerprint, format!("unreadable entry: {e}")),
        };
        let body = match decode_footered(&bytes, FOOTER_KEY) {
            Ok(b) => b,
            Err(reason) => return self.quarantine(fingerprint, reason),
        };
        match parse_entry(body, config_json) {
            Ok((attempts, summary)) => Lookup::Hit { attempts, summary },
            Err(reason) => self.quarantine(fingerprint, reason),
        }
    }

    /// Store a clean result under `fingerprint`, atomically.
    pub(crate) fn store(
        &self,
        config_json: &str,
        fingerprint: u64,
        attempts: u32,
        summary: &RunSummary,
    ) -> io::Result<()> {
        let body = json::to_string(&Json::obj(vec![
            ("cache_format", CACHE_FORMAT.to_json()),
            ("config_fingerprint", fingerprint.to_json()),
            ("config", Json::Str(config_json.to_string())),
            ("attempts", attempts.to_json()),
            ("summary", summary.to_json()),
        ]));
        let doc = encode_footered(&body, FOOTER_KEY);
        let path = self.entry_path(fingerprint);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, doc)?;
        std::fs::rename(&tmp, path)
    }

    /// Move a failed entry into `quarantine/` (best-effort — if even the
    /// rename fails, fall back to deleting it so it cannot be served
    /// next time) and report why.
    fn quarantine(&self, fingerprint: u64, reason: String) -> Lookup {
        let path = self.entry_path(fingerprint);
        let qdir = self.dir.join("quarantine");
        let moved = std::fs::create_dir_all(&qdir).is_ok()
            && std::fs::rename(&path, qdir.join(format!("{fingerprint:016x}.entry"))).is_ok();
        if !moved {
            let _ = std::fs::remove_file(&path);
        }
        Lookup::Quarantined(reason)
    }

    /// Pre-flight collision scan for `SC027`: fingerprints whose cached
    /// entry verifies but stores a *different* config. The run-time
    /// lookup would quarantine these anyway; the pre-flight warning
    /// names them before any cycles are spent.
    pub(crate) fn collisions<'a>(
        &self,
        entries: impl Iterator<Item = (&'a str, &'a str, u64)>,
    ) -> Vec<(String, u64)> {
        let mut hits = Vec::new();
        for (id, config_json, fingerprint) in entries {
            let Ok(bytes) = std::fs::read(self.entry_path(fingerprint)) else {
                continue;
            };
            let Ok(body) = decode_footered(&bytes, FOOTER_KEY) else {
                continue; // corrupt, not a collision: run-time quarantine handles it
            };
            if matches!(&parse_entry(body, config_json), Err(reason) if reason.contains("different config"))
            {
                hits.push((id.to_string(), fingerprint));
            }
        }
        hits
    }
}

/// Decode a verified entry body and check it stores exactly this config.
fn parse_entry(body: &str, config_json: &str) -> Result<(u32, RunSummary), String> {
    let v = Json::parse(body).map_err(|e| format!("entry body is not JSON: {}", e.0))?;
    let format = v
        .get("cache_format")
        .and_then(|j| j.as_u64())
        .ok_or("entry has no cache_format")?;
    if format != CACHE_FORMAT {
        return Err(format!(
            "entry cache_format {format} is not the supported {CACHE_FORMAT}"
        ));
    }
    let stored = v
        .get("config")
        .and_then(|j| j.as_str())
        .ok_or("entry has no config")?;
    if stored != config_json {
        return Err("entry stores a different config behind this fingerprint \
             (FNV collision or planted entry)"
            .to_string());
    }
    let attempts = v
        .get("attempts")
        .and_then(|j| j.as_u64())
        .ok_or("entry has no attempts")? as u32;
    let summary = v
        .field("summary")
        .map_err(|e| e.0.clone())
        .and_then(|s| RunSummary::from_json(s).map_err(|e| e.0))?;
    Ok((attempts, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            runtime_ns: 42,
            events: 7,
            messages: 3,
            retransmissions: 0,
            dropped: 0,
            corrupted: 0,
            trace_fingerprint: 0xdead_beef,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("idlewave-cache-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = ResultCache::open(&tmp("round_trip")).expect("writable");
        let cfg = "{\"ranks\":4}";
        let fp = tracefmt::fnv1a_64(cfg.as_bytes());
        assert!(matches!(cache.lookup(cfg, fp), Lookup::Miss));
        cache.store(cfg, fp, 2, &summary()).expect("store");
        match cache.lookup(cfg, fp) {
            Lookup::Hit {
                attempts,
                summary: s,
            } => {
                assert_eq!(attempts, 2);
                assert_eq!(s, summary());
            }
            _ => panic!("expected a hit"),
        }
    }

    #[test]
    fn bit_flips_are_quarantined_and_not_served_twice() {
        let dir = tmp("bit_flip");
        let cache = ResultCache::open(&dir).expect("writable");
        let cfg = "{\"ranks\":8}";
        let fp = tracefmt::fnv1a_64(cfg.as_bytes());
        cache.store(cfg, fp, 1, &summary()).expect("store");
        let path = cache.entry_path(fp);
        let mut bytes = std::fs::read(&path).expect("entry");
        bytes[10] ^= 0x20;
        std::fs::write(&path, &bytes).expect("corrupt");
        match cache.lookup(cfg, fp) {
            Lookup::Quarantined(reason) => assert!(reason.contains("mismatch"), "{reason}"),
            _ => panic!("corruption must quarantine"),
        }
        assert!(!path.exists(), "entry must be moved out of the way");
        assert!(
            dir.join("quarantine")
                .join(format!("{fp:016x}.entry"))
                .exists(),
            "quarantined entry kept for post-mortems"
        );
        assert!(matches!(cache.lookup(cfg, fp), Lookup::Miss));
    }

    #[test]
    fn truncation_and_collisions_are_quarantined() {
        let dir = tmp("torn");
        let cache = ResultCache::open(&dir).expect("writable");
        let cfg = "{\"ranks\":16}";
        let fp = tracefmt::fnv1a_64(cfg.as_bytes());
        cache.store(cfg, fp, 1, &summary()).expect("store");
        let path = cache.entry_path(fp);
        let bytes = std::fs::read(&path).expect("entry");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(matches!(cache.lookup(cfg, fp), Lookup::Quarantined(_)));

        // A verified entry that stores a *different* config behind this
        // fingerprint: valid footer, wrong payload.
        let other = "{\"ranks\":32}";
        cache.store(other, fp, 1, &summary()).expect("plant");
        let collisions = cache.collisions([("victim", cfg, fp)].iter().map(|&(a, b, c)| (a, b, c)));
        assert_eq!(collisions, vec![("victim".to_string(), fp)]);
        match cache.lookup(cfg, fp) {
            Lookup::Quarantined(reason) => {
                assert!(reason.contains("different config"), "{reason}")
            }
            _ => panic!("collision must quarantine"),
        }
    }

    #[test]
    fn unwritable_dir_is_reported_not_fatal() {
        // A path that cannot be a directory: a file stands in its way.
        let dir = tmp("blocked");
        std::fs::create_dir_all(dir.parent().expect("parent")).expect("parent dir");
        std::fs::write(&dir, b"not a directory").expect("blocker");
        assert!(ResultCache::open(&dir).is_err());
    }
}
