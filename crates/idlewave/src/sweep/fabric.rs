//! The work-stealing fabric: sharded scenario queues and the chaos knobs
//! that let the drill attack the fabric itself.
//!
//! Scenarios are dealt round-robin into `N` shard deques (`index % N`,
//! the same function that picks their result shard). Worker `w` drains
//! its home shard `w % N` from the front; when the home shard is empty
//! it steals from the other shards — from the *back*, so thieves and the
//! home worker meet in the middle instead of contending on the same end.
//! Results are reassembled by scenario index, so steal order can change
//! *which worker* runs a scenario but never the merged report.
//!
//! A worker that dies ([`FabricChaos::kill_workers`], or a sink I/O
//! failure) is *retired*: it stops taking work and its queued items stay
//! in the shards for the surviving workers to steal. If every worker
//! retires, the supervisor thread drains the leftovers inline — the
//! fabric degrades to sequential execution, it never deadlocks.

use std::collections::VecDeque;
use std::sync::Mutex;

use super::Scenario;

/// Chaos knobs for the fabric itself, injected at the *worker* level —
/// one layer above [`super::Chaos`], which fails individual scenario
/// attempts, and two above the fault plan inside the config, which fails
/// the simulated cluster. Used by the self-chaos drill and tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FabricChaos {
    /// `(worker, items)` pairs: worker `worker` is killed (retired)
    /// once it has completed exactly `items` scenarios — `0` kills it
    /// before it ever takes work. Kills fire deterministically *between*
    /// items, so no attempt is lost mid-run and record contents stay
    /// bit-identical to an undisturbed sweep.
    pub kill_workers: Vec<(usize, usize)>,
}

impl FabricChaos {
    /// No fabric chaos (the default).
    pub fn none() -> Self {
        FabricChaos::default()
    }

    /// Should `worker` retire after having completed `done` items?
    pub(crate) fn kills(&self, worker: usize, done: usize) -> bool {
        self.kill_workers
            .iter()
            .any(|&(w, items)| w == worker && items == done)
    }
}

/// One unit of sweep work: a scenario plus its input index (its result
/// slot and shard).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem<'a> {
    pub(crate) idx: usize,
    pub(crate) scenario: &'a Scenario,
}

/// The sharded deques workers pull from.
pub(crate) struct ShardQueues<'a> {
    shards: Vec<Mutex<VecDeque<WorkItem<'a>>>>,
}

impl<'a> ShardQueues<'a> {
    /// `nshards` empty deques (at least one).
    pub(crate) fn new(nshards: usize) -> Self {
        let nshards = nshards.max(1);
        let mut shards = Vec::with_capacity(nshards);
        shards.resize_with(nshards, || Mutex::new(VecDeque::new()));
        ShardQueues { shards }
    }

    /// Shard count.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of scenario index `idx`.
    pub(crate) fn shard_of(&self, idx: usize) -> usize {
        idx % self.shards.len()
    }

    /// Deal an item into its home shard (callers push in input order, so
    /// each shard deque stays index-sorted).
    pub(crate) fn push(&self, item: WorkItem<'a>) {
        self.shards[self.shard_of(item.idx)]
            .lock()
            .expect("shard queue poisoned")
            .push_back(item);
    }

    /// The next item for `worker`: front of its home shard, else stolen
    /// from the back of the first non-empty other shard (scanning from
    /// the home shard forward, wrapping). `None` means the whole fabric
    /// is drained.
    pub(crate) fn next_for(&self, worker: usize) -> Option<WorkItem<'a>> {
        let n = self.shards.len();
        let home = worker % n;
        if let Some(item) = self.shards[home]
            .lock()
            .expect("shard queue poisoned")
            .pop_front()
        {
            return Some(item);
        }
        for step in 1..n {
            let victim = (home + step) % n;
            if let Some(item) = self.shards[victim]
                .lock()
                .expect("shard queue poisoned")
                .pop_back()
            {
                return Some(item);
            }
        }
        None
    }

    /// Drain every remaining item in index order — the supervisor's
    /// inline fallback when all workers retired before the fabric was
    /// empty.
    pub(crate) fn drain_leftovers(&self) -> Vec<WorkItem<'a>> {
        let mut left: Vec<WorkItem<'a>> = Vec::new();
        for shard in &self.shards {
            left.extend(shard.lock().expect("shard queue poisoned").drain(..));
        }
        left.sort_by_key(|item| item.idx);
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::SimConfig;
    use netmodel::presets;
    use workload::{Boundary, CommPattern, Direction};

    fn scenario(id: &str) -> Scenario {
        Scenario::new(
            id,
            SimConfig::baseline(
                presets::loggopsim_like(4),
                CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open),
                2,
            ),
        )
    }

    #[test]
    fn dealing_and_stealing_cover_every_item_exactly_once() {
        let scenarios: Vec<Scenario> = (0..10).map(|i| scenario(&format!("s{i}"))).collect();
        let queues = ShardQueues::new(3);
        for (idx, s) in scenarios.iter().enumerate() {
            queues.push(WorkItem { idx, scenario: s });
        }
        assert_eq!(queues.len(), 3);
        // Worker 1 alone drains the whole fabric: first its home shard
        // (1, 4, 7), then steals from shards 2 and 0 — every index
        // exactly once.
        let mut seen = Vec::new();
        while let Some(item) = queues.next_for(1) {
            seen.push(item.idx);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(queues.next_for(0).is_none());
    }

    #[test]
    fn home_shards_drain_front_and_steals_take_the_back() {
        let scenarios: Vec<Scenario> = (0..6).map(|i| scenario(&format!("s{i}"))).collect();
        let queues = ShardQueues::new(2);
        for (idx, s) in scenarios.iter().enumerate() {
            queues.push(WorkItem { idx, scenario: s });
        }
        // Worker 0's home shard holds 0, 2, 4 — front first.
        assert_eq!(queues.next_for(0).expect("item").idx, 0);
        // Empty shard 1 so a worker homed there has to steal — and the
        // steal takes shard 0's *back* (4), not its front (2).
        while queues.shards[1]
            .lock()
            .expect("shard queue poisoned")
            .pop_front()
            .is_some()
        {}
        assert_eq!(queues.next_for(1).expect("steal").idx, 4);
    }

    #[test]
    fn leftovers_drain_in_index_order() {
        let scenarios: Vec<Scenario> = (0..7).map(|i| scenario(&format!("s{i}"))).collect();
        let queues = ShardQueues::new(4);
        for (idx, s) in scenarios.iter().enumerate() {
            queues.push(WorkItem { idx, scenario: s });
        }
        let left: Vec<usize> = queues.drain_leftovers().iter().map(|i| i.idx).collect();
        assert_eq!(left, (0..7).collect::<Vec<_>>());
        assert!(queues.drain_leftovers().is_empty());
    }

    #[test]
    fn kill_specs_match_exact_item_counts() {
        let chaos = FabricChaos {
            kill_workers: vec![(1, 0), (2, 3)],
        };
        assert!(chaos.kills(1, 0));
        assert!(!chaos.kills(1, 1));
        assert!(chaos.kills(2, 3));
        assert!(!chaos.kills(0, 0));
        assert!(!FabricChaos::none().kills(1, 0));
    }
}
