//! The self-chaos drill: the sweep fabric attacking itself.
//!
//! `wavesim sweep --drill` runs a fixed eight-scenario suite once,
//! undisturbed, to establish a control report — then re-runs it under
//! every failure mode the fabric claims to survive, asserting after each
//! that the merged report is **bit-identical** to the control:
//!
//! 1. `control` — the undisturbed run; every later phase is compared
//!    against its merged bytes.
//! 2. `worker-kills` — [`super::FabricChaos`] retires two of the four
//!    workers mid-sweep; survivors steal the orphaned work.
//! 3. `torn-lines` — a fabricated crash site: shard files holding a few
//!    finished records, one record torn mid-line, and one record planted
//!    with a status string from a "newer version"; `--resume` must repair,
//!    warn, and re-run.
//! 4. `sigkill` — a real `wavesim sweep` child process is SIGKILLed while
//!    shards and checkpoints are being written, then resumed in-process.
//!    Skipped (as passed) when no executable is supplied — library tests
//!    have no `wavesim` binary to spawn.
//! 5. `cache-cold` — a fresh verified result cache fills: every scenario
//!    is a miss, none a hit.
//! 6. `cache-corrupt` — one entry bit-flipped, one truncated, one planted
//!    with a different config behind the right fingerprint: all three are
//!    quarantined and re-simulated, the other five serve as hits, and the
//!    pre-flight names the collision (`SC027`).
//! 7. `cache-warm` — the repaired cache serves the entire suite: eight
//!    hits, zero misses, zero quarantines — zero re-simulations, verified
//!    by the counters, not by timing.
//!
//! The drill is wired into `scripts/verify.sh` and CI; `docs/SWEEP.md`
//! describes the phases and what a failure of each one means.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

use mpisim::{config_fingerprint, FaultPlan, MessageFaults, Protocol};
use simdes::SimDuration;
use tracefmt::json;

use super::{cache, fabric::FabricChaos, run_sweep, shard, Scenario, SweepOptions, SweepReport};
use crate::experiment::WaveExperiment;

/// How to run the drill.
#[derive(Debug, Clone)]
pub struct DrillOptions {
    /// Scratch directory for reports, shards, checkpoints, and the cache
    /// (created if missing; reused state is deleted first).
    pub dir: PathBuf,
    /// The `wavesim` executable the SIGKILL phase spawns and kills. With
    /// `None` that phase is skipped (and says so).
    pub exe: Option<PathBuf>,
    /// Fabric workers per phase.
    pub threads: usize,
}

impl DrillOptions {
    /// Drill in `dir` with four workers and no child executable.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DrillOptions {
            dir: dir.into(),
            exe: None,
            threads: 4,
        }
    }
}

/// One phase's verdict.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name (stable, scriptable).
    pub name: &'static str,
    /// Did the phase's assertions hold?
    pub passed: bool,
    /// Human-readable evidence: what was injected and what was observed.
    pub detail: String,
}

/// Everything the drill observed.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// Phase verdicts in execution order.
    pub phases: Vec<PhaseOutcome>,
}

impl DrillReport {
    /// Did every phase pass?
    pub fn passed(&self) -> bool {
        self.phases.iter().all(|p| p.passed)
    }
}

/// The fixed drill suite: eight clean, cache-eligible scenarios with
/// pairwise-distinct config fingerprints, the heaviest last so a SIGKILL
/// lands while work is still in flight.
fn drill_scenarios() -> Vec<Scenario> {
    let chain = |ranks: u32, steps: u32, seed: u64| {
        WaveExperiment::flat_chain(ranks)
            .texec(SimDuration::from_micros(200))
            .steps(steps)
            .seed(seed)
            .into_config()
    };
    let mut rendezvous = chain(10, 5, 3);
    rendezvous.protocol = Protocol::Rendezvous;
    let mut faulty = chain(8, 6, 6);
    faulty.protocol = Protocol::Rendezvous;
    faulty.faults = FaultPlan::none().with_messages(MessageFaults {
        drop_prob: 0.1,
        rto: SimDuration::from_micros(50),
        ..MessageFaults::default()
    });
    vec![
        Scenario::new("eager-6", chain(6, 4, 1)),
        Scenario::new("eager-8", chain(8, 6, 2)),
        Scenario::new("rendezvous-10", rendezvous),
        Scenario::new("eager-12", chain(12, 8, 4)),
        Scenario::new("eager-16", chain(16, 6, 5)),
        Scenario::new("faulty-8", faulty),
        Scenario::new("eager-24", chain(24, 10, 7)),
        Scenario::new("heavy-192", chain(192, 48, 8)),
    ]
}

/// Run the full drill. `Err` is reserved for scratch-directory I/O
/// trouble; injected faults that the fabric fails to absorb show up as
/// failed phases in the report, not errors.
pub fn run_drill(opts: &DrillOptions) -> io::Result<DrillReport> {
    std::fs::create_dir_all(&opts.dir)?;
    let scenarios = drill_scenarios();
    let base = SweepOptions {
        threads: opts.threads.max(1),
        shards: Some(4),
        fsync: true,
        wall_timeout: Duration::from_secs(60),
        ..SweepOptions::default()
    };
    let mut phases = Vec::new();

    // Phase 1: the undisturbed control run everything is measured against.
    let control_out = fresh_out(&opts.dir, "control.jsonl")?;
    let control = run_sweep(&scenarios, &base, &control_out)?;
    if !control.all_ok() {
        phases.push(PhaseOutcome {
            name: "control",
            passed: false,
            detail: format!(
                "the undisturbed control run failed {} scenario(s); \
                 nothing to compare against",
                control.failures()
            ),
        });
        return Ok(DrillReport { phases });
    }
    phases.push(PhaseOutcome {
        name: "control",
        passed: true,
        detail: format!(
            "{} scenarios completed clean; merged report established",
            control.results.len()
        ),
    });

    // Phase 2: retire half the workers mid-sweep.
    let out = fresh_out(&opts.dir, "worker-kills.jsonl")?;
    let chaotic = SweepOptions {
        fabric_chaos: FabricChaos {
            kill_workers: vec![(1, 1), (2, 0)],
        },
        ..base.clone()
    };
    let report = run_sweep(&scenarios, &chaotic, &out)?;
    let identical = same_bytes(&out, &control_out)?;
    phases.push(PhaseOutcome {
        name: "worker-kills",
        passed: identical && report.retired_workers == 2,
        detail: format!(
            "killed workers 2 (immediately) and 1 (after one item): \
             {} retired, merged report {}",
            report.retired_workers,
            verdict(identical)
        ),
    });

    // Phase 3: a fabricated crash site with torn and foreign records.
    let out = fresh_out(&opts.dir, "torn-lines.jsonl")?;
    plant_crash_site(&out, &control)?;
    let resume = SweepOptions {
        resume: true,
        ..base.clone()
    };
    let report = run_sweep(&scenarios, &resume, &out)?;
    let identical = same_bytes(&out, &control_out)?;
    let warned = report
        .warnings
        .iter()
        .any(|w| w.contains("unknown status 'from-the-future'"));
    phases.push(PhaseOutcome {
        name: "torn-lines",
        passed: identical && warned && report.reused == 2,
        detail: format!(
            "resumed over 2 intact, 1 torn, and 1 future-status record: \
             {} reused, future record {}, merged report {}",
            report.reused,
            if warned {
                "surfaced as a warning"
            } else {
                "NOT surfaced"
            },
            verdict(identical)
        ),
    });

    // Phase 4: SIGKILL a real child process mid-shard, resume in-process.
    phases.push(match &opts.exe {
        Some(exe) => sigkill_phase(&opts.dir, exe, &scenarios, &base, &control_out)?,
        None => PhaseOutcome {
            name: "sigkill",
            passed: true,
            detail: "skipped: no wavesim executable supplied".to_string(),
        },
    });

    // Phase 5: fill a cold cache.
    let cache_dir = opts.dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached = SweepOptions {
        cache_dir: Some(cache_dir.clone()),
        ..base.clone()
    };
    let out = fresh_out(&opts.dir, "cache-cold.jsonl")?;
    let report = run_sweep(&scenarios, &cached, &out)?;
    let identical = same_bytes(&out, &control_out)?;
    phases.push(PhaseOutcome {
        name: "cache-cold",
        passed: identical && report.cache_misses == scenarios.len() && report.cache_hits == 0,
        detail: format!(
            "cold cache: {} misses, {} hits, merged report {}",
            report.cache_misses,
            report.cache_hits,
            verdict(identical)
        ),
    });

    // Phase 6: corrupt three entries three different ways.
    let tampered = tamper_with_cache(&cache_dir, &scenarios, &control)?;
    let out = fresh_out(&opts.dir, "cache-corrupt.jsonl")?;
    let report = run_sweep(&scenarios, &cached, &out)?;
    let identical = same_bytes(&out, &control_out)?;
    let collision_named = report.warnings.iter().any(|w| w.contains("SC027"));
    phases.push(PhaseOutcome {
        name: "cache-corrupt",
        passed: identical
            && report.cache_quarantined == tampered
            && report.cache_hits == scenarios.len() - tampered
            && report.cache_misses == 0
            && collision_named,
        detail: format!(
            "bit-flipped, truncated, and collision-planted entries: \
             {} quarantined, {} hits, {} misses, SC027 {}, merged report {}",
            report.cache_quarantined,
            report.cache_hits,
            report.cache_misses,
            if collision_named {
                "named the collision"
            } else {
                "MISSING"
            },
            verdict(identical)
        ),
    });

    // Phase 7: the repaired cache serves everything — zero re-simulations.
    let out = fresh_out(&opts.dir, "cache-warm.jsonl")?;
    let report = run_sweep(&scenarios, &cached, &out)?;
    let identical = same_bytes(&out, &control_out)?;
    phases.push(PhaseOutcome {
        name: "cache-warm",
        passed: identical
            && report.cache_hits == scenarios.len()
            && report.cache_misses == 0
            && report.cache_quarantined == 0,
        detail: format!(
            "warm cache: {} hits, {} misses, {} quarantined — zero \
             re-simulations, merged report {}",
            report.cache_hits,
            report.cache_misses,
            report.cache_quarantined,
            verdict(identical)
        ),
    });

    Ok(DrillReport { phases })
}

/// An output path with no leftover state from a previous drill: the
/// merged report, manifest, and any shard files are removed.
fn fresh_out(dir: &Path, name: &str) -> io::Result<PathBuf> {
    let out = dir.join(name);
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(shard::manifest_path(&out));
    for f in shard::existing_shard_files(&out)? {
        let _ = std::fs::remove_file(f);
    }
    Ok(out)
}

fn same_bytes(a: &Path, b: &Path) -> io::Result<bool> {
    Ok(std::fs::read(a)? == std::fs::read(b)?)
}

fn verdict(identical: bool) -> &'static str {
    if identical {
        "bit-identical to the control"
    } else {
        "DIVERGED from the control"
    }
}

/// Fabricate what a crashed sweep leaves behind for `out`: shard 0 holds
/// the finished records of scenarios 0 and 4 (their home shard under 4
/// shards) plus a record torn mid-line; shard 1 holds a parseable record
/// whose status string comes from a "newer version".
fn plant_crash_site(out: &Path, control: &SweepReport) -> io::Result<()> {
    let mut shard0 = String::new();
    shard0.push_str(&json::to_string(&control.results[0]));
    shard0.push('\n');
    shard0.push_str(&json::to_string(&control.results[4]));
    shard0.push('\n');
    let torn = json::to_string(&control.results[3]);
    shard0.push_str(&torn[..torn.len() / 2]); // no newline: torn mid-write
    std::fs::write(shard::shard_path(out, 0), shard0)?;
    let planted = format!(
        "{{\"id\":\"{}\",\"status\":\"from-the-future\",\"attempts\":1}}\n",
        control.results[1].id
    );
    std::fs::write(shard::shard_path(out, 1), planted)
}

/// Corrupt three cache entries three different ways; returns how many
/// entries were tampered with (what the quarantine counter must read).
fn tamper_with_cache(
    cache_dir: &Path,
    scenarios: &[Scenario],
    control: &SweepReport,
) -> io::Result<usize> {
    let cache = cache::ResultCache::open(cache_dir)
        .map_err(|e| io::Error::other(format!("drill cache dir vanished: {e}")))?;
    // A single flipped bit.
    let flipped = cache.entry_path(config_fingerprint(&scenarios[0].config));
    let mut bytes = std::fs::read(&flipped)?;
    bytes[16] ^= 0x08;
    std::fs::write(&flipped, &bytes)?;
    // A write torn halfway through.
    let torn = cache.entry_path(config_fingerprint(&scenarios[1].config));
    let bytes = std::fs::read(&torn)?;
    std::fs::write(&torn, &bytes[..bytes.len() / 2])?;
    // A verified entry storing a *different* config behind the right
    // fingerprint — an FNV collision, as planted by a buggy tool.
    let fp = config_fingerprint(&scenarios[2].config);
    let foreign = json::to_string(&scenarios[3].config);
    let summary = control.results[3]
        .summary
        .ok_or_else(|| io::Error::other("control result missing a summary"))?;
    cache
        .store(&foreign, fp, 1, &summary)
        .map_err(io::Error::other)?;
    Ok(3)
}

/// Spawn a real `wavesim sweep` child against a fresh output, SIGKILL it
/// once shards or checkpoints prove it is mid-sweep, then resume
/// in-process and compare against the control.
fn sigkill_phase(
    dir: &Path,
    exe: &Path,
    scenarios: &[Scenario],
    base: &SweepOptions,
    control_out: &Path,
) -> io::Result<PhaseOutcome> {
    let out = fresh_out(dir, "sigkill.jsonl")?;
    let ckpt_dir = dir.join("sigkill-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let scenarios_file = dir.join("sigkill-scenarios.json");
    {
        let mut f = std::fs::File::create(&scenarios_file)?;
        f.write_all(json::to_string(&scenarios.to_vec()).as_bytes())?;
    }
    let mut child = std::process::Command::new(exe)
        .arg("sweep")
        .args(["--scenarios"])
        .arg(&scenarios_file)
        .args(["--out"])
        .arg(&out)
        .args(["--threads", &base.threads.to_string()])
        .args(["--shards", "4", "--fsync", "--quiet"])
        .args(["--checkpoint-dir"])
        .arg(&ckpt_dir)
        .args(["--checkpoint-every", "500ev"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()?;
    // Wait — bounded, no wall-clock reads — until the child demonstrably
    // has work in flight: a non-empty shard file or a snapshot on disk.
    let mut saw_progress = false;
    for _ in 0..1200 {
        let shard_bytes: u64 = shard::existing_shard_files(&out)?
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        let snapshots = std::fs::read_dir(&ckpt_dir).map(|d| d.count()).unwrap_or(0);
        if shard_bytes > 0 || snapshots > 0 {
            saw_progress = true;
            break;
        }
        if child.try_wait()?.is_some() {
            break; // finished before we could kill it — resume still must agree
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill()?; // SIGKILL: no cleanup, shards stay torn
    let _ = child.wait();
    let resume = SweepOptions {
        resume: true,
        checkpoint_dir: Some(ckpt_dir),
        checkpoint: mpisim::CheckpointPolicy {
            every_sim_time: None,
            every_events: Some(500),
        },
        ..base.clone()
    };
    let report = run_sweep(scenarios, &resume, &out)?;
    let identical = same_bytes(&out, control_out)?;
    Ok(PhaseOutcome {
        name: "sigkill",
        passed: identical && report.all_ok(),
        detail: format!(
            "SIGKILLed the child {} and resumed: {} reused, {} re-run, \
             merged report {}",
            if saw_progress {
                "mid-sweep"
            } else {
                "(it may have finished first)"
            },
            report.reused,
            report.results.len() - report.reused,
            verdict(identical)
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full in-process drill (SIGKILL phase skipped: the test binary
    /// is not `wavesim`). This is the satellite of record for "the drill
    /// passes" — CI additionally runs it through the binary with the
    /// SIGKILL phase live.
    #[test]
    fn the_drill_passes_in_process() {
        let dir = std::env::temp_dir().join("idlewave-drill-test");
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_drill(&DrillOptions::new(&dir)).expect("drill io");
        for p in &report.phases {
            eprintln!("phase {}: {} — {}", p.name, p.passed, p.detail);
        }
        assert!(report.passed(), "{:?}", report.phases);
        assert_eq!(report.phases.len(), 7, "all phases must report");
        assert!(report.phases[3].detail.contains("skipped"));
    }

    #[test]
    fn drill_scenarios_are_distinct_and_cacheable() {
        let scenarios = drill_scenarios();
        assert_eq!(scenarios.len(), 8);
        let mut fps: Vec<u64> = scenarios
            .iter()
            .map(|s| config_fingerprint(&s.config))
            .collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 8, "duplicate fingerprints break hit counting");
        for s in &scenarios {
            assert_eq!(s.chaos, super::super::Chaos::None);
            assert!(s.max_sim_time.is_none());
        }
    }
}
