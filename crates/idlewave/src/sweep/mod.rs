//! Supervised, crash-safe sweep execution on a work-stealing fabric.
//!
//! [`crate::batch`] fans independent simulations out over threads but
//! propagates any failure: one panicking scenario kills a thousand-config
//! sweep. This module is the hardened harness for chaos and fault-plan
//! sweeps, where individual scenarios — and the harness itself — are
//! *expected* to die:
//!
//! * scenarios are dealt into **sharded work-stealing deques**
//!   ([`fabric`]): a fixed worker pool drains home shards and steals
//!   across them, results reassemble by input index, so steal order can
//!   never change the merged report; a worker that dies is retired and
//!   its queued work redistributed — if every worker retires, the
//!   supervisor drains the fabric inline, so a sweep degrades instead of
//!   deadlocking ([`SweepReport::retired_workers`] counts the losses);
//! * every scenario attempt runs in an isolated worker thread with panic
//!   capture;
//! * a **deterministic sim-time watchdog** (an [`mpisim::RunLimits`]
//!   budget derived from the scenario's nominal timing) catches runaway
//!   simulations reproducibly, and a wall-clock timeout backstops the
//!   watchdog against harness bugs;
//! * transient failures are retried a bounded number of times with
//!   **capped exponential backoff** ([`SweepOptions::retry_backoff`]);
//! * a **pre-flight pass** warns on duplicated config fingerprints
//!   (`SC020`), retry policies the sweep wall budget can never honour
//!   (`SC025`, [`SweepOptions::max_wall`]), unusable cache directories
//!   (`SC026`) and cache fingerprint collisions (`SC027`), and — with
//!   [`SweepOptions::budget`] — records scenarios whose predicted event
//!   count is already over budget (`SC018`) as
//!   [`ScenarioStatus::OverBudget`] without running them; the same pass
//!   sizes every worker's [`mpisim::EnginePools`] so pooled runs
//!   allocate nothing beyond the predicted budget from run 1;
//! * every finished scenario is persisted immediately to its **per-shard
//!   JSONL sink** ([`shard`]: append + flush, opt-in fsync, torn-line
//!   repair), so a crash of the sweep process itself loses at most the
//!   scenarios still in flight; on completion the shards are **merged
//!   atomically** into the final report at `out_path` (header line plus
//!   one record per scenario in input order) and deleted.
//!   [`SweepOptions::resume`] reloads the merged report overlaid with
//!   any surviving shard files and re-runs only scenarios without a
//!   persisted record;
//! * a **verified result cache** ([`SweepOptions::cache_dir`]) serves
//!   clean scenarios whose config fingerprint was already simulated —
//!   byte-identically to the original record; entries carry FNV-1a
//!   integrity footers, and torn, bit-flipped, or colliding entries are
//!   quarantined and re-simulated, never trusted
//!   ([`SweepReport::cache_hits`] / [`SweepReport::cache_quarantined`]);
//! * with a [`SweepOptions::checkpoint_dir`], in-flight scenarios write
//!   periodic [`mpisim::Snapshot`]s (atomic temp-file + rename), so a
//!   resumed sweep continues a killed scenario *mid-run* instead of from
//!   scratch — bit-identically, per the snapshot contract. Snapshots are
//!   garbage-collected once their scenario has a terminal record.
//!
//! The suite's config fingerprints are recorded in a manifest before any
//! scenario runs (and in the merged report's header line); `--resume`
//! against files produced by different configs is rejected instead of
//! silently mixing results.
//!
//! Scenario outcomes are values ([`ScenarioStatus`]), never panics; the
//! sweep completes end-to-end regardless of what individual scenarios —
//! or the fabric's own workers — do. The [`drill`] module turns that
//! claim into a self-test: `wavesim sweep --drill` kills workers,
//! SIGKILLs the process mid-shard, tears result lines, and bit-flips
//! cache entries, then asserts the merged report is bit-identical to an
//! undisturbed control run (see `docs/SWEEP.md`).

pub(crate) mod cache;
pub mod drill;
mod fabric;
mod shard;

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use mpisim::{
    config_fingerprint, try_run_checkpointed_pooled, try_run_with_stats_pooled, CheckpointPolicy,
    Engine, EnginePools, PoolBudget, RunLimits, RunStats, SimConfig, SimError, Snapshot,
};
use simdes::{SimDuration, SimTime};
use tracefmt::json::{self, field_or_default, FromJson, Json, ToJson};
use tracefmt::{fnv1a_64, Trace};

pub use fabric::FabricChaos;
pub use shard::load_results;

/// Chaos knobs for exercising the supervisor itself: deliberate failure
/// modes injected at the *scenario* level (the fault plan inside
/// [`SimConfig`] injects failures at the *simulation* level, and
/// [`FabricChaos`] at the *worker* level above this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Chaos {
    /// Run the scenario normally.
    #[default]
    None,
    /// Fail the first `n` attempts with a transient error, then succeed —
    /// exercises the bounded-retry path.
    FailAttempts(
        /// Attempts that fail before the first success.
        u32,
    ),
    /// Panic inside the worker on every attempt — exercises panic capture.
    Panic,
    /// Sleep this long inside the attempt *while holding the slot's
    /// engine-buffer pool* — exercises the wall-clock backstop and the
    /// stranded-pool replacement.
    Hang(Duration),
}

/// One entry of a sweep: an id, a config, and optional harness overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique identifier, used as the resume key.
    pub id: String,
    /// The simulation to run.
    pub config: SimConfig,
    /// Harness-level chaos (defaults to [`Chaos::None`]).
    pub chaos: Chaos,
    /// Explicit sim-time watchdog budget; `None` derives one from the
    /// scenario's nominal timing (see [`SweepOptions::watchdog_factor`]).
    pub max_sim_time: Option<SimTime>,
}

impl Scenario {
    /// A plain scenario with no chaos and a derived watchdog budget.
    pub fn new(id: impl Into<String>, config: SimConfig) -> Self {
        Scenario {
            id: id.into(),
            config,
            chaos: Chaos::None,
            max_sim_time: None,
        }
    }
}

/// Supervisor policy for one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Worker threads (supervision slots). Results do not depend on this.
    pub threads: usize,
    /// Work-queue/result-file shards; `None` uses one per worker thread.
    /// Results do not depend on this either — a scenario's shard is a
    /// pure function of its input index.
    pub shards: Option<usize>,
    /// Extra attempts allowed after a transient failure or wall-clock
    /// timeout. Deterministic failures (panic, stall, watchdog, invalid
    /// config) are never retried.
    pub retries: u32,
    /// Base delay of the capped exponential backoff between retry
    /// attempts (doubled per attempt, capped at 2 s). Zero disables
    /// backoff.
    pub retry_backoff: Duration,
    /// Wall-clock ceiling per attempt — the backstop behind the
    /// deterministic sim-time watchdog. A timed-out attempt's thread is
    /// abandoned (detached), not killed.
    pub wall_timeout: Duration,
    /// Advisory wall-clock budget for the *whole sweep*: pre-flight warns
    /// (`SC025`) when the worst-case retry schedule cannot fit in it, so
    /// a retry policy that can never be exercised is caught before any
    /// cycles are spent. `None` disables the check.
    pub max_wall: Option<Duration>,
    /// The derived sim-time budget is the scenario's nominal runtime
    /// (steps, injections, rank faults, worst-case retransmission backoff)
    /// times this factor.
    pub watchdog_factor: f64,
    /// Optional event-count budget forwarded to [`mpisim::RunLimits`].
    pub max_events: Option<u64>,
    /// Maximum *predicted* events per scenario: the pre-flight budget
    /// pass records scenarios over this ceiling as
    /// [`ScenarioStatus::OverBudget`] (`SC018`) without running them.
    /// Independent of [`SweepOptions::max_events`], which aborts a
    /// simulation already running. `None` disables the gate.
    pub budget: Option<u64>,
    /// Reload the merged report (and any surviving shard files) and skip
    /// scenarios that already have a persisted record (finished = any
    /// terminal status, success or not). With a
    /// [`SweepOptions::checkpoint_dir`], unfinished scenarios with a
    /// valid snapshot additionally resume mid-run from it.
    pub resume: bool,
    /// Directory of the verified result cache: clean scenarios whose
    /// config fingerprint already has a verified entry are served from it
    /// byte-identically instead of re-simulated; corrupt or colliding
    /// entries are quarantined and re-simulated. `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Fsync every persisted record (and not just flush it): survives
    /// OS-level crashes, at a per-record cost. The self-chaos drill runs
    /// with this on.
    pub fsync: bool,
    /// Directory for mid-scenario [`mpisim::Snapshot`] files (created if
    /// missing). `None` disables checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence forwarded to
    /// [`mpisim::Engine::try_run_checkpointed`]. Ignored without a
    /// [`SweepOptions::checkpoint_dir`].
    pub checkpoint: CheckpointPolicy,
    /// Deterministic worker-level chaos for the self-chaos drill and
    /// fabric tests (defaults to none).
    pub fabric_chaos: FabricChaos,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 4,
            shards: None,
            retries: 2,
            retry_backoff: Duration::from_millis(10),
            wall_timeout: Duration::from_secs(30),
            max_wall: None,
            watchdog_factor: 64.0,
            max_events: None,
            budget: None,
            resume: false,
            cache_dir: None,
            fsync: false,
            checkpoint_dir: None,
            checkpoint: CheckpointPolicy::none(),
            fabric_chaos: FabricChaos::none(),
        }
    }
}

/// Terminal outcome of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Completed with a full trace.
    Ok,
    /// Rejected by the analyzer before running.
    Invalid,
    /// Rejected by the pre-flight budget pass (`SC018`): predicted events
    /// exceed [`SweepOptions::budget`]. Never attempted.
    OverBudget,
    /// The run stalled (deadlock, fail-stop crash, or lost transfers).
    Stalled,
    /// The deterministic sim-time or event budget tripped.
    Watchdog,
    /// The wall-clock backstop fired; the attempt was abandoned.
    WallTimeout,
    /// The worker panicked.
    Panicked,
    /// Transient failures exhausted the retry budget.
    Transient,
    /// The job was cancelled before it ran — `wavesim serve` records this
    /// for jobs orphaned by a client disconnect, so a restart never
    /// re-runs work nobody is waiting for. The sweep fabric itself never
    /// produces it.
    Cancelled,
}

impl ScenarioStatus {
    /// Stable string form used in the persisted JSON records.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioStatus::Ok => "ok",
            ScenarioStatus::Invalid => "invalid",
            ScenarioStatus::OverBudget => "over-budget",
            ScenarioStatus::Stalled => "stalled",
            ScenarioStatus::Watchdog => "watchdog",
            ScenarioStatus::WallTimeout => "wall-timeout",
            ScenarioStatus::Panicked => "panic",
            ScenarioStatus::Transient => "transient",
            ScenarioStatus::Cancelled => "cancelled",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => ScenarioStatus::Ok,
            "invalid" => ScenarioStatus::Invalid,
            "over-budget" => ScenarioStatus::OverBudget,
            "stalled" => ScenarioStatus::Stalled,
            "watchdog" => ScenarioStatus::Watchdog,
            "wall-timeout" => ScenarioStatus::WallTimeout,
            "panic" => ScenarioStatus::Panicked,
            "transient" => ScenarioStatus::Transient,
            "cancelled" => ScenarioStatus::Cancelled,
            _ => return None,
        })
    }
}

/// Compact numbers of a successful run — everything the sweep analyses
/// need without persisting full traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Sim-time end of the run in nanoseconds (deterministic, unlike wall
    /// clock).
    pub runtime_ns: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// Messages transferred.
    pub messages: u64,
    /// Retransmitted copies (fault injection).
    pub retransmissions: u64,
    /// Dropped copies (fault injection).
    pub dropped: u64,
    /// Corrupted copies (fault injection).
    pub corrupted: u64,
    /// FNV-1a digest of the full trace ([`Trace::fingerprint`]) — equal
    /// digests across runs prove bit-identical traces.
    pub trace_fingerprint: u64,
}

impl RunSummary {
    fn from_run(trace: &Trace, stats: &RunStats) -> Self {
        RunSummary {
            runtime_ns: trace.total_runtime().0,
            events: stats.events,
            messages: stats.messages,
            retransmissions: stats.retransmissions,
            dropped: stats.dropped_transfers,
            corrupted: stats.corrupted_transfers,
            trace_fingerprint: trace.fingerprint(),
        }
    }
}

/// The persisted record of one finished scenario — one JSON line in the
/// sweep output file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario id (the resume key).
    pub id: String,
    /// Terminal status.
    pub status: ScenarioStatus,
    /// Attempts consumed (1 = first try succeeded or failed terminally).
    pub attempts: u32,
    /// Error detail for non-[`ScenarioStatus::Ok`] outcomes.
    pub error: Option<String>,
    /// Run numbers for [`ScenarioStatus::Ok`] outcomes.
    pub summary: Option<RunSummary>,
    /// [`mpisim::config_fingerprint`] of the scenario's config at run
    /// time, used by `--resume` to reject mixed-config sweep files.
    /// `None` only on records persisted by pre-header versions.
    pub config_fingerprint: Option<u64>,
}

impl ScenarioResult {
    /// Did the scenario produce a trace?
    pub fn is_ok(&self) -> bool {
        self.status == ScenarioStatus::Ok
    }
}

/// Everything a finished sweep knows, reassembled in scenario input order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per scenario, in input order. An
    /// [interrupted](SweepReport::interrupted) sweep carries only the
    /// scenarios that reached a terminal record before the stop.
    pub results: Vec<ScenarioResult>,
    /// How many records were reloaded from a previous run (`--resume`)
    /// instead of executed.
    pub reused: usize,
    /// Rendered pre-run and runtime warnings (`SC017`/`SC020`/`SC025`/
    /// `SC026`/`SC027`, undecodable resume records, quarantined cache
    /// entries), one per incident.
    pub warnings: Vec<String>,
    /// Scenarios served byte-identically from the verified result cache
    /// instead of simulated.
    pub cache_hits: usize,
    /// Cache-eligible scenarios that had no entry and were simulated
    /// (and stored, when they completed cleanly).
    pub cache_misses: usize,
    /// Cache entries that failed integrity or config verification, were
    /// quarantined, and re-simulated.
    pub cache_quarantined: usize,
    /// Fabric workers that died ([`FabricChaos`] or sink I/O failure)
    /// and had their queued work redistributed.
    pub retired_workers: usize,
    /// The sweep stopped early on a [`run_sweep_interruptible`] stop
    /// request (SIGTERM/SIGINT in the CLI): in-flight scenarios finished
    /// and were flushed to their shard sinks, undealt ones were left
    /// untouched, and the shards + manifest were kept on disk so a
    /// `--resume` run completes the suite.
    pub interrupted: bool,
}

impl SweepReport {
    /// Scenarios that did not finish with a trace.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.is_ok()).count()
    }

    /// Did every scenario produce a trace?
    pub fn all_ok(&self) -> bool {
        self.failures() == 0
    }
}

/// Outcome of one attempt, produced inside the worker thread.
enum Attempt {
    Ok(Box<RunSummary>),
    Invalid(String),
    Stalled(String),
    Watchdog(String),
    Transient(String),
    Panicked(String),
}

/// Shared per-sweep counters the workers bump.
#[derive(Default)]
struct Counters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    quarantined: AtomicUsize,
    retired: AtomicUsize,
}

/// Everything a worker needs to run one scenario, shared across the
/// fabric.
struct RunCtx<'a> {
    opts: &'a SweepOptions,
    ckpt_dir: Option<&'a Path>,
    cache: Option<&'a cache::ResultCache>,
    config_jsons: &'a [String],
    fingerprints: &'a [u64],
    counters: &'a Counters,
    warnings: &'a Mutex<Vec<String>>,
}

/// Run every scenario on the work-stealing fabric, persisting each
/// finished record to its shard sink the moment it completes, and merge
/// everything atomically into the final report at `out_path` (header
/// line plus one record per scenario in input order).
///
/// Scenario outcomes (panics, stalls, watchdog trips, timeouts) are data,
/// not errors: the `Err` path is reserved for harness-level I/O problems
/// (unwritable output file, duplicate scenario ids).
///
/// # Panics
/// Panics if `opts.threads` is zero.
pub fn run_sweep(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    out_path: &Path,
) -> io::Result<SweepReport> {
    run_sweep_interruptible(scenarios, opts, out_path, &AtomicBool::new(false))
}

/// [`run_sweep`] with a cooperative stop flag, polled between scenarios:
/// once `stop` is set, workers finish (and persist) the scenario they are
/// on, deal no new ones, and the fabric returns early with
/// [`SweepReport::interrupted`] set instead of merging a partial report.
/// The shard sinks and manifest stay on disk, so a later `--resume` run
/// picks up exactly where the stop landed. The CLI wires SIGTERM/SIGINT
/// to this flag.
///
/// # Panics
/// Panics if `opts.threads` is zero.
pub fn run_sweep_interruptible(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    out_path: &Path,
    stop: &AtomicBool,
) -> io::Result<SweepReport> {
    assert!(opts.threads >= 1, "need at least one supervisor thread");
    let mut ids = std::collections::BTreeSet::new();
    for s in scenarios {
        if !ids.insert(s.id.as_str()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate scenario id '{}'", s.id),
            ));
        }
    }
    let config_jsons: Vec<String> = scenarios
        .iter()
        .map(|s| json::to_string(&s.config))
        .collect();
    let fingerprints: Vec<u64> = scenarios
        .iter()
        .map(|s| config_fingerprint(&s.config))
        .collect();

    let mut warnings = Vec::new();
    let previous = if opts.resume {
        validate_resume_configs(scenarios, &fingerprints, out_path)?;
        let (records, load_warnings) = shard::load_previous(out_path)?;
        warnings.extend(load_warnings);
        records
    } else {
        // A fresh run must not inherit fabric droppings from an earlier
        // crashed run against the same path.
        let _ = std::fs::remove_file(shard::manifest_path(out_path));
        for stale in shard::existing_shard_files(out_path)? {
            let _ = std::fs::remove_file(stale);
        }
        Vec::new()
    };
    let finished: std::collections::BTreeMap<&str, &ScenarioResult> =
        previous.iter().map(|r| (r.id.as_str(), r)).collect();

    // The manifest carries the suite's config fingerprints from before
    // the first scenario runs until the merge replaces it with the
    // header line of the final report — so a resume after a crash at
    // *any* point can validate configs.
    let header = header_json(scenarios, &fingerprints);
    let manifest = shard::manifest_path(out_path);
    shard::write_atomic(&manifest, &format!("{}\n", json::to_string(&header)))?;

    let ckpt_dir = opts.checkpoint_dir.as_deref();
    if let Some(dir) = ckpt_dir {
        std::fs::create_dir_all(dir)?;
    }
    if ckpt_dir.is_some() {
        if let Some(interval) = opts.checkpoint.every_sim_time {
            for s in scenarios {
                for d in simcheck::checkpoint_checks(interval, sim_budget(s, opts)) {
                    warnings.push(format!("scenario '{}': {d}", s.id));
                }
            }
        }
    }
    if let Some(max_wall) = opts.max_wall {
        for d in simcheck::sweep_policy_checks(
            scenarios.len(),
            opts.threads,
            opts.retries,
            opts.wall_timeout,
            max_wall,
        ) {
            warnings.push(d.to_string());
        }
    }

    // The verified result cache: an unusable directory degrades to an
    // uncached sweep (SC026) instead of failing mid-run; verified
    // entries that store a different config are named up front (SC027).
    let cache = match &opts.cache_dir {
        Some(dir) => match cache::ResultCache::open(dir) {
            Ok(c) => {
                let entries = scenarios
                    .iter()
                    .zip(&config_jsons)
                    .zip(&fingerprints)
                    .map(|((s, cfg), &fp)| (s.id.as_str(), cfg.as_str(), fp));
                for (id, fp) in c.collisions(entries) {
                    warnings.push(simcheck::cache_fingerprint_collision(&id, fp).to_string());
                }
                Some(c)
            }
            Err(e) => {
                warnings.push(simcheck::cache_dir_unwritable(dir, &e).to_string());
                None
            }
        },
        None => None,
    };

    // Pre-flight budget pass: one static analysis per scenario feeds the
    // suite-level duplicate check (SC020), the --budget gate (SC018), and
    // the shared buffer shape every supervision slot pre-sizes from.
    let ids: Vec<&str> = scenarios.iter().map(|s| s.id.as_str()).collect();
    for d in simcheck::budget::duplicate_fingerprint_checks(&ids, &fingerprints) {
        warnings.push(d.to_string());
    }
    let mut preflight: Vec<Option<ScenarioResult>> = Vec::with_capacity(scenarios.len());
    preflight.resize_with(scenarios.len(), || None);
    let mut pool_budget = PoolBudget {
        ranks: 0,
        steps: 0,
        peak_queue: 0,
        requests_per_rank: 0,
        trace_records: 0,
    };
    let gates = simcheck::budget::Budgets {
        max_events: opts.budget,
        ..Default::default()
    };
    for (i, s) in scenarios.iter().enumerate() {
        let report = simcheck::budget::budget(&s.config);
        pool_budget = max_pool_budget(pool_budget, report.pool);
        if finished.contains_key(s.id.as_str()) {
            continue;
        }
        let sc018: Vec<_> = simcheck::budget::budget_checks(&s.config, &report, &gates)
            .into_iter()
            .filter(|d| d.code == "SC018")
            .collect();
        if sc018.is_empty() {
            continue;
        }
        for d in &sc018 {
            warnings.push(format!("scenario '{}': {d}", s.id));
        }
        preflight[i] = Some(ScenarioResult {
            id: s.id.clone(),
            status: ScenarioStatus::OverBudget,
            attempts: 0,
            error: Some(simcheck::render_report(&sc018)),
            summary: None,
            config_fingerprint: Some(fingerprints[i]),
        });
    }

    // The sharded sinks: a scenario's shard is its input index mod the
    // shard count, independent of which worker runs it.
    let nshards = opts.shards.unwrap_or(opts.threads).max(1);
    let mut sinks: Vec<Mutex<shard::ShardSink>> = Vec::with_capacity(nshards);
    for k in 0..nshards {
        sinks.push(Mutex::new(shard::ShardSink::open(
            &shard::shard_path(out_path, k),
            opts.fsync,
        )?));
    }
    for (i, r) in preflight.iter().enumerate() {
        if let Some(r) = r {
            sinks[i % nshards]
                .lock()
                .expect("sink poisoned")
                .persist(r)?;
        }
    }

    let queues = fabric::ShardQueues::new(nshards);
    for (idx, s) in scenarios.iter().enumerate() {
        if !finished.contains_key(s.id.as_str()) && preflight[idx].is_none() {
            queues.push(fabric::WorkItem { idx, scenario: s });
        }
    }
    let reused = scenarios
        .iter()
        .filter(|s| finished.contains_key(s.id.as_str()))
        .count();

    let counters = Counters::default();
    let runtime_warnings = Mutex::new(Vec::new());
    let ctx = RunCtx {
        opts,
        ckpt_dir,
        cache: cache.as_ref(),
        config_jsons: &config_jsons,
        fingerprints: &fingerprints,
        counters: &counters,
        warnings: &runtime_warnings,
    };

    let threads = opts.threads.min(scenarios.len().max(1));
    let (tx, rx) = mpsc::channel::<(usize, io::Result<ScenarioResult>)>();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let sinks = &sinks;
            let ctx = &ctx;
            let tx = tx.clone();
            scope.spawn(move || {
                // One engine-buffer pool per worker, pre-sized to the
                // elementwise-max predicted shape across the whole suite:
                // every scenario this worker runs draws its large
                // allocations from it and stays inside the budget, so a
                // sweep allocates once per worker instead of once per
                // attempt — settled from run 1, no warmup runs.
                let pool = pool_slot(pool_budget);
                let mut done = 0usize;
                loop {
                    if ctx.opts.fabric_chaos.kills(w, done) {
                        ctx.counters.retired.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    // A stop request lands *between* scenarios: the one in
                    // flight was persisted by the previous iteration, the
                    // rest stay queued for a --resume run.
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Some(item) = queues.next_for(w) else {
                        break;
                    };
                    let result = run_one(ctx, item.scenario, item.idx, &pool);
                    let persisted = sinks[queues.shard_of(item.idx)]
                        .lock()
                        .expect("sink poisoned")
                        .persist(&result)
                        .map(|()| result);
                    let poisoned = persisted.is_err();
                    tx.send((item.idx, persisted))
                        .expect("report receiver gone");
                    if poisoned {
                        // A sink this worker cannot write to poisons it:
                        // retire and let the survivors take the queue.
                        ctx.counters.retired.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    done += 1;
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<ScenarioResult>> = Vec::with_capacity(scenarios.len());
    slots.resize_with(scenarios.len(), || None);
    for (idx, r) in rx {
        slots[idx] = Some(r?);
    }
    // Graceful degradation: if chaos (or I/O trouble) retired every
    // worker with work still queued, the supervisor thread drains the
    // leftovers inline — slower, never deadlocked, never incomplete.
    // Not on a stop request, though: then the leftovers are exactly the
    // scenarios a --resume run is supposed to pick up.
    let leftovers = queues.drain_leftovers();
    if !leftovers.is_empty() && !stop.load(Ordering::SeqCst) {
        let pool = pool_slot(pool_budget);
        for item in leftovers {
            let result = run_one(&ctx, item.scenario, item.idx, &pool);
            sinks[queues.shard_of(item.idx)]
                .lock()
                .expect("sink poisoned")
                .persist(&result)?;
            slots[item.idx] = Some(result);
        }
    }

    let stopped = stop.load(Ordering::SeqCst);
    let mut interrupted = false;
    for (idx, s) in scenarios.iter().enumerate() {
        if slots[idx].is_none() {
            slots[idx] = preflight[idx]
                .take()
                .or_else(|| finished.get(s.id.as_str()).map(|prior| (*prior).clone()));
            if slots[idx].is_none() {
                assert!(stopped, "scenario neither run nor reloaded");
                interrupted = true;
            }
        }
    }
    let results: Vec<ScenarioResult> = slots.into_iter().flatten().collect();

    if !interrupted {
        // Compact the shards into the final report — header plus records
        // in input order, atomically — and clean up the manifest and
        // shards. An interrupted sweep skips this: the shards and
        // manifest *are* its clean resumable state.
        shard::merge(out_path, &header, &results)?;

        if let Some(dir) = ckpt_dir {
            // Every scenario now has a terminal record (fresh or
            // reloaded), so its snapshot can never be resumed again:
            // collect them all, including orphans left behind by records
            // reloaded from previous runs. Best-effort — a surviving
            // file only wastes disk.
            for s in scenarios {
                let _ = std::fs::remove_file(snapshot_path(dir, &s.id));
            }
        }
    }
    let mut runtime = runtime_warnings
        .into_inner()
        .expect("warnings lock poisoned");
    runtime.sort();
    warnings.extend(runtime);
    Ok(SweepReport {
        results,
        reused,
        warnings,
        cache_hits: counters.hits.load(Ordering::Relaxed),
        cache_misses: counters.misses.load(Ordering::Relaxed),
        cache_quarantined: counters.quarantined.load(Ordering::Relaxed),
        retired_workers: counters.retired.load(Ordering::Relaxed),
        interrupted,
    })
}

/// Run one scenario to a terminal record: serve it from the verified
/// cache when eligible, otherwise supervise a real run (and store clean
/// completions back into the cache).
fn run_one(ctx: &RunCtx<'_>, scenario: &Scenario, idx: usize, pool: &PoolSlot) -> ScenarioResult {
    let fp = ctx.fingerprints[idx];
    // Cache eligibility: the entry key is the config fingerprint and
    // nothing else, so anything that makes the outcome depend on more
    // than the config — harness chaos, a per-scenario watchdog override,
    // a run-aborting event cap — opts the scenario out.
    let cacheable = ctx.cache.is_some()
        && scenario.chaos == Chaos::None
        && scenario.max_sim_time.is_none()
        && ctx.opts.max_events.is_none();
    if cacheable {
        let cache = ctx.cache.expect("cacheable implies a cache");
        match cache.lookup(&ctx.config_jsons[idx], fp) {
            cache::Lookup::Hit { attempts, summary } => {
                ctx.counters.hits.fetch_add(1, Ordering::Relaxed);
                return ScenarioResult {
                    id: scenario.id.clone(),
                    status: ScenarioStatus::Ok,
                    attempts,
                    error: None,
                    summary: Some(summary),
                    config_fingerprint: Some(fp),
                };
            }
            cache::Lookup::Quarantined(reason) => {
                ctx.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                ctx.warnings
                    .lock()
                    .expect("warnings lock poisoned")
                    .push(format!(
                        "scenario '{}': cache entry {fp:#018x} quarantined ({reason}); \
                         re-simulating",
                        scenario.id
                    ));
            }
            cache::Lookup::Miss => {
                ctx.counters.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let ckpt = ctx.ckpt_dir.map(|dir| CkptPlan {
        path: snapshot_path(dir, &scenario.id),
        policy: ctx.opts.checkpoint,
        resume: ctx.opts.resume,
    });
    let result = supervise(scenario, ctx.opts, ckpt.as_ref(), pool);
    if cacheable && result.status == ScenarioStatus::Ok {
        if let (Some(cache), Some(summary)) = (ctx.cache, result.summary) {
            // Best-effort: a full disk must not fail an earned result.
            let _ = cache.store(&ctx.config_jsons[idx], fp, result.attempts, &summary);
        }
    }
    result
}

/// A supervision slot's shared engine-buffer pool. Attempt threads take
/// the pools out under a brief lock before the run and put them back
/// after — the lock is never held across a run. An attempt abandoned by
/// the wall-clock backstop walks off with the pool instance it took; the
/// backstop immediately installs a fresh budget-sized replacement and
/// bumps the generation counter, so the abandoned thread's eventual
/// put-back is recognised as stale and discarded instead of clobbering
/// the replacement. Long sweeps therefore keep pooling across timeouts
/// instead of silently degrading to unpooled runs.
pub(crate) struct PoolState {
    /// Bumped whenever the backstop abandons an attempt; a put-back from
    /// an older generation is dropped.
    gen: u64,
    /// The shape fresh and replacement pools are sized from.
    budget: PoolBudget,
    pool: Option<EnginePools>,
}

pub(crate) type PoolSlot = Arc<Mutex<PoolState>>;

/// A slot holding a freshly budget-sized pool.
pub(crate) fn pool_slot(budget: PoolBudget) -> PoolSlot {
    Arc::new(Mutex::new(PoolState {
        gen: 0,
        budget,
        pool: Some(EnginePools::with_budget(&budget)),
    }))
}

/// Elementwise maximum of two pool shapes: a slot sized to the max fits
/// every scenario in the sweep without growing.
pub(crate) fn max_pool_budget(a: PoolBudget, b: PoolBudget) -> PoolBudget {
    PoolBudget {
        ranks: a.ranks.max(b.ranks),
        steps: a.steps.max(b.steps),
        peak_queue: a.peak_queue.max(b.peak_queue),
        requests_per_rank: a.requests_per_rank.max(b.requests_per_rank),
        trace_records: a.trace_records.max(b.trace_records),
    }
}

/// Grow a slot's pool to (at least) `want` before a job that needs more
/// than the slot currently holds — `wavesim serve` cannot pre-size
/// against a known suite the way a sweep can, so its workers grow their
/// slot monotonically as bigger submissions arrive. The generation is
/// bumped so an abandoned attempt's late put-back of the *old* pool is
/// discarded. No-op when the slot already fits.
pub(crate) fn ensure_pool_budget(slot: &PoolSlot, want: PoolBudget) {
    let mut s = slot.lock().expect("pool poisoned");
    let grown = max_pool_budget(s.budget, want);
    let fits = grown.ranks == s.budget.ranks
        && grown.steps == s.budget.steps
        && grown.peak_queue == s.budget.peak_queue
        && grown.requests_per_rank == s.budget.requests_per_rank
        && grown.trace_records == s.budget.trace_records;
    if !fits {
        s.gen += 1;
        s.budget = grown;
        s.pool = Some(EnginePools::with_budget(&grown));
    }
}

/// Mid-scenario checkpointing instructions for one scenario's attempts.
#[derive(Debug, Clone)]
pub(crate) struct CkptPlan {
    path: PathBuf,
    policy: CheckpointPolicy,
    resume: bool,
}

/// The snapshot file for a scenario id: the id sanitised for the
/// filesystem, plus an FNV tag of the raw id so distinct ids that
/// sanitise identically ("a/b" vs "a_b") cannot share a file.
fn snapshot_path(dir: &Path, id: &str) -> PathBuf {
    let sanitized: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!(
        "{sanitized}-{:08x}.ckpt",
        fnv1a_64(id.as_bytes()) as u32
    ))
}

/// Version tag of the sweep-file header line.
const SWEEP_FORMAT: u64 = 1;

fn header_json(scenarios: &[Scenario], fingerprints: &[u64]) -> Json {
    Json::obj(vec![
        ("sweep_format", SWEEP_FORMAT.to_json()),
        ("tool", Json::Str("wavesim-sweep".to_string())),
        (
            "configs",
            Json::Object(
                scenarios
                    .iter()
                    .zip(fingerprints)
                    .map(|(s, &fp)| (s.id.clone(), fp.to_json()))
                    .collect(),
            ),
        ),
    ])
}

/// Read a header line's id → config-fingerprint map from `path`, if the
/// file exists and starts with a header (files from pre-header versions
/// return `None` and are accepted as-is).
fn load_header(path: &Path) -> io::Result<Option<Vec<(String, u64)>>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let Ok(text) = std::str::from_utf8(first) else {
        return Ok(None);
    };
    let Ok(v) = Json::parse(text) else {
        return Ok(None);
    };
    if v.get("sweep_format").is_none() {
        return Ok(None);
    }
    let Some(configs) = v.get("configs").and_then(|c| c.as_object()) else {
        return Ok(None);
    };
    Ok(Some(
        configs
            .iter()
            .filter_map(|(id, fp)| fp.as_u64().map(|f| (id.clone(), f)))
            .collect(),
    ))
}

/// The recorded header for `out`: the merged report's first line when one
/// exists, else the manifest a crashed run left behind.
fn load_any_header(out: &Path) -> io::Result<Option<Vec<(String, u64)>>> {
    if let Some(h) = load_header(out)? {
        return Ok(Some(h));
    }
    load_header(&shard::manifest_path(out))
}

/// Reject a `--resume` whose scenarios carry different configs than the
/// ones recorded in the existing files (header/manifest line and
/// per-record fingerprints). Scenarios the files have never seen are
/// fine — resuming with a superset is supported.
fn validate_resume_configs(
    scenarios: &[Scenario],
    fingerprints: &[u64],
    out_path: &Path,
) -> io::Result<()> {
    let header = load_any_header(out_path)?;
    let (previous, _) = shard::load_previous(out_path)?;
    for (s, &fp) in scenarios.iter().zip(fingerprints) {
        let recorded = header
            .as_ref()
            .and_then(|h| h.iter().find(|(id, _)| *id == s.id).map(|&(_, f)| f))
            .or_else(|| {
                previous
                    .iter()
                    .find(|r| r.id == s.id)
                    .and_then(|r| r.config_fingerprint)
            });
        if let Some(old) = recorded {
            if old != fp {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "resume config mismatch for scenario '{}': the existing \
                         sweep file was produced with config fingerprint \
                         {old:#018x}, this invocation's config has {fp:#018x}; \
                         rerun against a fresh output file instead of mixing \
                         results",
                        s.id
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Supervise one scenario: bounded attempts, each in an isolated worker
/// with panic capture and the wall-clock backstop, with capped
/// exponential backoff between retries.
pub(crate) fn supervise(
    scenario: &Scenario,
    opts: &SweepOptions,
    ckpt: Option<&CkptPlan>,
    pool: &PoolSlot,
) -> ScenarioResult {
    let limits = RunLimits {
        max_sim_time: Some(sim_budget(scenario, opts)),
        max_events: opts.max_events,
    };
    // Per-scenario jitter salt: scenarios that hit the same transient at
    // the same moment (a shared sink hiccup, a brownout) de-synchronize
    // their retries instead of stampeding back in lockstep.
    let salt = fnv1a_64(scenario.id.as_bytes());
    let mut attempts = 0u32;
    loop {
        let outcome = run_attempt(scenario, attempts, &limits, opts.wall_timeout, ckpt, pool);
        attempts += 1;
        let (status, error, summary) = match outcome {
            Some(Attempt::Ok(summary)) => (ScenarioStatus::Ok, None, Some(*summary)),
            Some(Attempt::Invalid(e)) => (ScenarioStatus::Invalid, Some(e), None),
            Some(Attempt::Stalled(e)) => (ScenarioStatus::Stalled, Some(e), None),
            Some(Attempt::Watchdog(e)) => (ScenarioStatus::Watchdog, Some(e), None),
            Some(Attempt::Panicked(e)) => (ScenarioStatus::Panicked, Some(e), None),
            Some(Attempt::Transient(e)) => {
                if attempts <= opts.retries {
                    backoff_sleep(opts.retry_backoff, attempts, salt);
                    continue;
                }
                (ScenarioStatus::Transient, Some(e), None)
            }
            None => {
                if attempts <= opts.retries {
                    backoff_sleep(opts.retry_backoff, attempts, salt);
                    continue;
                }
                (
                    ScenarioStatus::WallTimeout,
                    Some(format!(
                        "attempt exceeded the {:?} wall-clock backstop",
                        opts.wall_timeout
                    )),
                    None,
                )
            }
        };
        return ScenarioResult {
            id: scenario.id.clone(),
            status,
            attempts,
            error,
            summary,
            config_fingerprint: Some(config_fingerprint(&scenario.config)),
        };
    }
}

/// Ceiling of the capped exponential retry backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Deterministic jitter factor in `[0.5, 1.5)` for retry `attempt` of the
/// scenario salted with `salt`: the same (salt, attempt) pair always
/// jitters identically — results and attempt counts cannot depend on it,
/// only the sleep's wall-clock length does — but different scenarios
/// spread across the whole window instead of thundering back together.
fn backoff_jitter(salt: u64, attempt: u32) -> f64 {
    let bits = simdes::splitmix64(salt ^ (u64::from(attempt) << 32 | 0x9e37_79b9));
    // Top 53 bits → uniform in [0, 1), the standard float construction.
    0.5 + (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Sleep `base × 2^(attempt-1)`, capped at [`BACKOFF_CAP`], then scaled
/// by the deterministic per-scenario jitter — attempt 1 waits about
/// `base`, attempt 2 about twice that, and so on. Zero base disables
/// backoff entirely.
fn backoff_sleep(base: Duration, attempt: u32, salt: u64) {
    if base.is_zero() {
        return;
    }
    let factor = 1u32 << attempt.saturating_sub(1).min(16);
    let nominal = base.saturating_mul(factor).min(BACKOFF_CAP);
    std::thread::sleep(nominal.mul_f64(backoff_jitter(salt, attempt)));
}

/// One isolated attempt. `None` means the wall-clock backstop fired and
/// the worker thread was abandoned.
fn run_attempt(
    scenario: &Scenario,
    attempt: u32,
    limits: &RunLimits,
    wall_timeout: Duration,
    ckpt: Option<&CkptPlan>,
    pool: &PoolSlot,
) -> Option<Attempt> {
    let cfg = scenario.config.clone();
    let chaos = scenario.chaos;
    let limits = *limits;
    let ckpt = ckpt.cloned();
    let worker_pool = Arc::clone(pool);
    let (tx, rx) = mpsc::channel::<Attempt>();
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            attempt_body(cfg, chaos, attempt, &limits, ckpt.as_ref(), &worker_pool)
        }))
        .unwrap_or_else(|payload| Attempt::Panicked(panic_text(payload.as_ref())));
        // The receiver is gone iff the backstop already fired.
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(wall_timeout) {
        Ok(outcome) => Some(outcome),
        Err(_) => {
            // The abandoned thread walked off with the slot's pool (or is
            // about to put it back). Invalidate its generation so a late
            // put-back is discarded, and refill an emptied slot with a
            // fresh budget-sized pool so later attempts keep pooling.
            let mut slot = pool.lock().expect("pool poisoned");
            slot.gen += 1;
            if slot.pool.is_none() {
                slot.pool = Some(EnginePools::with_budget(&slot.budget));
            }
            None
        }
    }
}

/// The actual work of one attempt, run inside the isolated worker.
fn attempt_body(
    cfg: SimConfig,
    chaos: Chaos,
    attempt: u32,
    limits: &RunLimits,
    ckpt: Option<&CkptPlan>,
    pool: &PoolSlot,
) -> Attempt {
    match chaos {
        Chaos::Panic => panic!("chaos: deliberate panic"),
        Chaos::FailAttempts(n) if attempt < n => {
            return Attempt::Transient(format!(
                "chaos: transient failure on attempt {}",
                attempt + 1
            ));
        }
        _ => {}
    }
    let diags = simcheck::analyze(&cfg);
    if simcheck::has_errors(&diags) {
        let errors: Vec<_> = diags.into_iter().filter(|d| d.is_error()).collect();
        return Attempt::Invalid(simcheck::render_report(&errors));
    }
    // A mid-run resume rebuilds its engine from the snapshot, not the
    // pool; only fresh runs draw their buffers from the slot's pool.
    if let Some(engine) = try_restore(&cfg, ckpt) {
        return classify(run_restored(engine, limits, ckpt));
    }
    let (gen, mut pools) = {
        let mut slot = pool.lock().expect("pool poisoned");
        let gen = slot.gen;
        let budget = slot.budget;
        let pools = slot
            .pool
            .take()
            .unwrap_or_else(|| EnginePools::with_budget(&budget));
        (gen, pools)
    };
    if let Chaos::Hang(d) = chaos {
        // Deliberately outlast the wall-clock backstop while holding the
        // slot's pool — the stranded-pool scenario.
        std::thread::sleep(d);
    }
    let run = match ckpt {
        Some(plan) if plan.policy.is_active() => {
            let path = plan.path.clone();
            try_run_checkpointed_pooled(
                &cfg,
                limits,
                &plan.policy,
                move |snap| {
                    // Best-effort: a full disk must not kill a healthy run.
                    let _ = write_snapshot_atomic(&path, snap);
                },
                &mut pools,
            )
        }
        _ => try_run_with_stats_pooled(&cfg, limits, &mut pools),
    };
    {
        let mut slot = pool.lock().expect("pool poisoned");
        if slot.gen == gen {
            slot.pool = Some(pools);
        }
        // else: the backstop abandoned this attempt and already installed
        // a replacement — this pool is stale, drop it.
    }
    classify(run)
}

/// Finish a snapshot-restored engine (unpooled — see [`attempt_body`]).
fn run_restored(
    engine: Engine,
    limits: &RunLimits,
    ckpt: Option<&CkptPlan>,
) -> Result<(Trace, RunStats), SimError> {
    match ckpt {
        Some(plan) if plan.policy.is_active() => {
            let path = plan.path.clone();
            let policy = plan.policy;
            engine.try_run_checkpointed(limits, &policy, move |snap| {
                // Best-effort: a full disk must not kill a healthy run.
                let _ = write_snapshot_atomic(&path, snap);
            })
        }
        _ => engine.try_run_with_stats(limits),
    }
}

/// Map a run's result to an attempt outcome.
fn classify(run: Result<(Trace, RunStats), SimError>) -> Attempt {
    match run {
        Ok((trace, stats)) => Attempt::Ok(Box::new(RunSummary::from_run(&trace, &stats))),
        Err(e @ SimError::Stalled { .. }) => Attempt::Stalled(e.to_string()),
        Err(e @ SimError::Watchdog { .. }) => Attempt::Watchdog(e.to_string()),
        Err(e @ (SimError::InvalidConfig(_) | SimError::Snapshot(_))) => {
            Attempt::Invalid(e.to_string())
        }
    }
}

/// Resume from the scenario's snapshot when one exists and is acceptable.
/// Every rejection — torn file (`RT004`), foreign version (`RT003`),
/// different config (`RT005`) — falls back to a from-scratch run (`None`):
/// a snapshot is an optimisation, never a correctness requirement, and
/// the trace fingerprint is identical either way.
fn try_restore(cfg: &SimConfig, ckpt: Option<&CkptPlan>) -> Option<Engine> {
    let plan = ckpt?;
    if !plan.resume {
        return None;
    }
    let bytes = std::fs::read(&plan.path).ok()?;
    let snap = Snapshot::decode(&bytes).ok()?;
    Engine::restore(cfg.clone(), &snap).ok()
}

/// Write a snapshot atomically: encode to `<path with .tmp>`, fsync-free
/// `rename` into place. Readers therefore only ever see a complete file;
/// a crash mid-write leaves at worst a stale `.tmp` next to the previous
/// complete snapshot.
fn write_snapshot_atomic(path: &Path, snap: &Snapshot) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, snap.encode())?;
    std::fs::rename(&tmp, path)
}

/// The deterministic sim-time budget for a scenario: its explicit
/// `max_sim_time`, or the budget analyzer's predicted runtime
/// ([`simcheck::budget::BudgetReport::sim_time_predicted`]) plus the
/// worst-case allowances the central estimate deliberately leaves out,
/// times `watchdog_factor`.
fn sim_budget(scenario: &Scenario, opts: &SweepOptions) -> SimTime {
    if let Some(t) = scenario.max_sim_time {
        return t;
    }
    let cfg = &scenario.config;
    let steps = u64::from(cfg.steps.max(1));
    let mut nominal = simcheck::budget::budget(cfg).sim_time_predicted;
    if let Some(m) = cfg.faults.messages {
        // Worst case, every step's messages serially exhaust the backoff.
        nominal += m.max_extra_delay().times(steps);
    }
    // The prediction carries one helping of mean noise; budget a second.
    nominal += cfg.noise.mean().times(steps);
    let budget = nominal.mul_f64(opts.watchdog_factor) + SimDuration::from_millis(1);
    SimTime(budget.nanos())
}

/// Render a captured panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

impl ToJson for Chaos {
    fn to_json(&self) -> Json {
        match *self {
            Chaos::None => Json::Str("None".into()),
            Chaos::FailAttempts(n) => Json::obj(vec![(
                "FailAttempts",
                Json::obj(vec![("attempts", n.to_json())]),
            )]),
            Chaos::Panic => Json::Str("Panic".into()),
            Chaos::Hang(d) => Json::obj(vec![(
                "Hang",
                Json::obj(vec![("nanos", (d.as_nanos() as u64).to_json())]),
            )]),
        }
    }
}

impl FromJson for Chaos {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (variant, p) = v.expect_variant()?;
        match variant {
            "None" => Ok(Chaos::None),
            "Panic" => Ok(Chaos::Panic),
            "FailAttempts" => Ok(Chaos::FailAttempts(u32::from_json(p.field("attempts")?)?)),
            "Hang" => Ok(Chaos::Hang(Duration::from_nanos(u64::from_json(
                p.field("nanos")?,
            )?))),
            other => Err(json::JsonError(format!("unknown Chaos variant '{other}'"))),
        }
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("config", self.config.to_json()),
            ("chaos", self.chaos.to_json()),
            ("max_sim_time", self.max_sim_time.to_json()),
        ])
    }
}

impl FromJson for Scenario {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(Scenario {
            id: String::from_json(v.field("id")?)?,
            config: SimConfig::from_json(v.field("config")?)?,
            chaos: field_or_default(v, "chaos")?,
            max_sim_time: field_or_default(v, "max_sim_time")?,
        })
    }
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("runtime_ns", self.runtime_ns.to_json()),
            ("events", self.events.to_json()),
            ("messages", self.messages.to_json()),
            ("retransmissions", self.retransmissions.to_json()),
            ("dropped", self.dropped.to_json()),
            ("corrupted", self.corrupted.to_json()),
            ("trace_fingerprint", self.trace_fingerprint.to_json()),
        ])
    }
}

impl FromJson for RunSummary {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(RunSummary {
            runtime_ns: u64::from_json(v.field("runtime_ns")?)?,
            events: u64::from_json(v.field("events")?)?,
            messages: u64::from_json(v.field("messages")?)?,
            retransmissions: u64::from_json(v.field("retransmissions")?)?,
            dropped: u64::from_json(v.field("dropped")?)?,
            corrupted: u64::from_json(v.field("corrupted")?)?,
            trace_fingerprint: u64::from_json(v.field("trace_fingerprint")?)?,
        })
    }
}

impl ToJson for ScenarioStatus {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

impl FromJson for ScenarioStatus {
    fn from_json(v: &Json) -> json::Result<Self> {
        let s = String::from_json(v)?;
        ScenarioStatus::from_str(&s)
            .ok_or_else(|| json::JsonError(format!("unknown scenario status '{s}'")))
    }
}

impl ToJson for ScenarioResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("status", self.status.to_json()),
            ("attempts", self.attempts.to_json()),
            ("error", self.error.to_json()),
            ("summary", self.summary.to_json()),
            ("config_fingerprint", self.config_fingerprint.to_json()),
        ])
    }
}

impl FromJson for ScenarioResult {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(ScenarioResult {
            id: String::from_json(v.field("id")?)?,
            status: ScenarioStatus::from_json(v.field("status")?)?,
            attempts: u32::from_json(v.field("attempts")?)?,
            error: field_or_default(v, "error")?,
            summary: field_or_default(v, "summary")?,
            config_fingerprint: field_or_default(v, "config_fingerprint")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use mpisim::{FaultPlan, MessageFaults};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("idlewave-sweep-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn quick_cfg(seed: u64) -> SimConfig {
        WaveExperiment::flat_chain(6)
            .texec(SimDuration::from_millis(1))
            .steps(4)
            .seed(seed)
            .into_config()
    }

    fn opts() -> SweepOptions {
        SweepOptions {
            threads: 3,
            wall_timeout: Duration::from_secs(20),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn chaos_sweep_completes_end_to_end() {
        let out = tmp("chaos_end_to_end.jsonl");
        let _ = std::fs::remove_file(&out);
        let mut invalid = quick_cfg(4);
        invalid.msg_bytes = 0;
        let mut stalling = quick_cfg(5);
        stalling.faults = FaultPlan::none().with_crash(2, 1, None);
        let scenarios = vec![
            Scenario::new("plain", quick_cfg(1)),
            Scenario {
                id: "panics".into(),
                config: quick_cfg(2),
                chaos: Chaos::Panic,
                max_sim_time: None,
            },
            Scenario {
                id: "watchdogged".into(),
                config: quick_cfg(3),
                chaos: Chaos::None,
                // 1 us sim budget: trips long before the 4-step run ends.
                max_sim_time: Some(SimTime(1_000)),
            },
            Scenario {
                id: "transient".into(),
                config: quick_cfg(6),
                chaos: Chaos::FailAttempts(2),
                max_sim_time: None,
            },
            Scenario {
                id: "invalid".into(),
                config: invalid,
                chaos: Chaos::None,
                max_sim_time: None,
            },
            Scenario::new("stalls", stalling),
        ];
        let report = run_sweep(&scenarios, &opts(), &out).expect("sweep io");
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.reused, 0);
        let by_id = |id: &str| {
            report
                .results
                .iter()
                .find(|r| r.id == id)
                .unwrap_or_else(|| panic!("missing {id}"))
        };
        assert_eq!(by_id("plain").status, ScenarioStatus::Ok);
        assert!(by_id("plain").summary.is_some());
        assert_eq!(by_id("panics").status, ScenarioStatus::Panicked);
        assert!(
            by_id("panics")
                .error
                .as_deref()
                .is_some_and(|e| e.contains("deliberate panic")),
            "{:?}",
            by_id("panics")
        );
        assert_eq!(by_id("watchdogged").status, ScenarioStatus::Watchdog);
        assert_eq!(by_id("transient").status, ScenarioStatus::Ok);
        assert_eq!(by_id("transient").attempts, 3);
        assert_eq!(by_id("invalid").status, ScenarioStatus::Invalid);
        assert!(by_id("invalid")
            .error
            .as_deref()
            .is_some_and(|e| e.contains("SC004")));
        assert_eq!(by_id("stalls").status, ScenarioStatus::Stalled);
        assert!(by_id("stalls")
            .error
            .as_deref()
            .is_some_and(|e| e.contains("fail-stop")));
        // Every record was persisted, and the shards were compacted away.
        assert_eq!(load_results(&out).expect("readable").len(), 6);
        assert_eq!(report.failures(), 4);
    }

    /// Attempts in one supervision slot share the slot's [`EnginePools`],
    /// pre-sized from the budget analyzer's predicted shape: same-shape
    /// scenarios through the same slot never allocate beyond the budget —
    /// settled from run 1, no warmup runs.
    #[test]
    fn attempts_reuse_the_slot_pool_across_scenarios() {
        let pool = pool_slot(simcheck::budget::budget(&quick_cfg(0)).pool);
        let limits = RunLimits::none();
        for seed in 0..6u64 {
            match attempt_body(quick_cfg(seed), Chaos::None, 0, &limits, None, &pool) {
                Attempt::Ok(_) => {}
                _ => panic!("attempt for seed {seed} did not succeed"),
            }
            let slot = pool.lock().expect("pool lock");
            let pools = slot.pool.as_ref().expect("pools returned to the slot");
            assert_eq!(
                pools.grows(),
                0,
                "a budget-sized pool grew on seed {seed} (run {})",
                pools.runs()
            );
        }
    }

    /// A wall-timeout-abandoned attempt walks off with the slot's pool;
    /// the backstop must install a fresh budget-sized replacement and the
    /// abandoned thread's late put-back must be discarded, not clobber it.
    #[test]
    fn wall_timeout_replaces_the_stranded_pool() {
        let pool = pool_slot(simcheck::budget::budget(&quick_cfg(0)).pool);
        let limits = RunLimits::none();
        let scenario = Scenario {
            id: "hangs".into(),
            config: quick_cfg(0),
            chaos: Chaos::Hang(Duration::from_millis(400)),
            max_sim_time: None,
        };
        let outcome = run_attempt(
            &scenario,
            0,
            &limits,
            Duration::from_millis(20),
            None,
            &pool,
        );
        assert!(outcome.is_none(), "the backstop must fire");
        {
            let slot = pool.lock().expect("pool lock");
            assert_eq!(slot.gen, 1, "abandonment must invalidate the generation");
            let pools = slot.pool.as_ref().expect("slot refilled with a fresh pool");
            assert_eq!(pools.runs(), 0, "the replacement pool is fresh");
        }
        // Wait out the abandoned thread (400 ms hang plus a short run),
        // then confirm its stale put-back was discarded: the replacement
        // would show runs() >= 1 if the stale pool had clobbered it.
        std::thread::sleep(Duration::from_millis(1500));
        let slot = pool.lock().expect("pool lock");
        let pools = slot.pool.as_ref().expect("replacement must stay in place");
        assert_eq!(
            pools.runs(),
            0,
            "the abandoned attempt's stale pool clobbered the replacement"
        );
    }

    #[test]
    fn transient_failures_exhaust_the_retry_budget() {
        let out = tmp("transient_exhaust.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario {
            id: "hopeless".into(),
            config: quick_cfg(7),
            chaos: Chaos::FailAttempts(99),
            max_sim_time: None,
        }];
        let o = SweepOptions {
            retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..opts()
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert_eq!(report.results[0].status, ScenarioStatus::Transient);
        assert_eq!(report.results[0].attempts, 2);
    }

    #[test]
    fn backoff_doubles_from_base_and_respects_the_cap() {
        // No sleeping in this test: just the arithmetic via the clamp.
        assert_eq!(
            Duration::from_millis(10)
                .saturating_mul(1 << 0)
                .min(BACKOFF_CAP),
            Duration::from_millis(10)
        );
        assert_eq!(
            Duration::from_millis(10)
                .saturating_mul(1 << 3)
                .min(BACKOFF_CAP),
            Duration::from_millis(80)
        );
        assert_eq!(
            Duration::from_millis(500)
                .saturating_mul(1 << 4)
                .min(BACKOFF_CAP),
            BACKOFF_CAP
        );
        // And the zero base disables the sleep entirely (returns at once).
        backoff_sleep(Duration::ZERO, 30, 0);
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_spread() {
        // Same (salt, attempt) always jitters identically …
        assert_eq!(
            backoff_jitter(42, 1).to_bits(),
            backoff_jitter(42, 1).to_bits()
        );
        // … inside [0.5, 1.5) …
        let mut seen = Vec::new();
        for salt in 0..64u64 {
            for attempt in 1..4u32 {
                let j = backoff_jitter(fnv1a_64(&salt.to_le_bytes()), attempt);
                assert!((0.5..1.5).contains(&j), "jitter {j} out of range");
                seen.push(j.to_bits());
            }
        }
        // … and actually spread: distinct scenarios must not collapse
        // onto one factor, or the herd thunders after all.
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 100, "only {} distinct factors", seen.len());
        // Different attempts of the *same* scenario differ too.
        assert_ne!(
            backoff_jitter(7, 1).to_bits(),
            backoff_jitter(7, 2).to_bits()
        );
    }

    #[test]
    fn resume_skips_finished_scenarios_and_tolerates_torn_lines() {
        let out = tmp("resume.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| Scenario::new(format!("s{i}"), quick_cfg(i)))
            .collect();
        // First pass: run only the first two scenarios.
        let first = run_sweep(&scenarios[..2], &opts(), &out).expect("sweep io");
        assert!(first.all_ok());
        // Simulate a crash mid-write: append a torn line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&out)
                .expect("open");
            f.write_all(b"{\"id\":\"s2\",\"stat").expect("torn write");
        }
        // Resume over the full set: s0/s1 reload, s2 (torn) and s3 run.
        let resumed = run_sweep(
            &scenarios,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect("sweep io");
        assert_eq!(resumed.reused, 2);
        assert_eq!(resumed.results.len(), 4);
        assert!(resumed.all_ok());
        // Nothing from the first pass was lost, and the merged report
        // holds every record exactly once.
        let ids: Vec<String> = load_results(&out)
            .expect("readable")
            .into_iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids.len(), 4, "{ids:?}");
        for want in ["s0", "s1", "s2", "s3"] {
            assert!(ids.iter().any(|i| i == want), "{want} missing: {ids:?}");
        }
    }

    #[test]
    fn resume_preserves_prior_failures_without_rerunning_them() {
        let out = tmp("resume_failures.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario {
            id: "boom".into(),
            config: quick_cfg(9),
            chaos: Chaos::Panic,
            max_sim_time: None,
        }];
        let first = run_sweep(&scenarios, &opts(), &out).expect("sweep io");
        assert_eq!(first.results[0].status, ScenarioStatus::Panicked);
        let resumed = run_sweep(
            &scenarios,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect("sweep io");
        assert_eq!(resumed.reused, 1);
        assert_eq!(resumed.results[0].status, ScenarioStatus::Panicked);
        // No duplicate record was appended.
        assert_eq!(load_results(&out).expect("readable").len(), 1);
    }

    #[test]
    fn fault_scenarios_fingerprint_identically_across_sweeps() {
        let out_a = tmp("det_a.jsonl");
        let out_b = tmp("det_b.jsonl");
        let _ = std::fs::remove_file(&out_a);
        let _ = std::fs::remove_file(&out_b);
        let mut cfg = quick_cfg(11);
        cfg.protocol = mpisim::Protocol::Rendezvous;
        cfg.faults = FaultPlan::none().with_messages(MessageFaults {
            drop_prob: 0.2,
            rto: SimDuration::from_micros(50),
            ..MessageFaults::default()
        });
        let scenarios = vec![Scenario::new("faulty", cfg)];
        let one = SweepOptions {
            threads: 1,
            ..opts()
        };
        let a = run_sweep(&scenarios, &opts(), &out_a).expect("sweep io");
        let b = run_sweep(&scenarios, &one, &out_b).expect("sweep io");
        let fa = a.results[0].summary.expect("ok run").trace_fingerprint;
        let fb = b.results[0].summary.expect("ok run").trace_fingerprint;
        assert_eq!(fa, fb, "thread count changed a fault-injected trace");
        assert!(a.results[0].summary.expect("ok").retransmissions > 0);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let out = tmp("dupes.jsonl");
        let scenarios = vec![
            Scenario::new("same", quick_cfg(1)),
            Scenario::new("same", quick_cfg(2)),
        ];
        let err = run_sweep(&scenarios, &opts(), &out).expect_err("duplicate ids");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn oversized_checkpoint_interval_warns_sc017() {
        let out = tmp("sc017.jsonl");
        let _ = std::fs::remove_file(&out);
        let dir = tmp("sc017_snaps");
        // 1 ms sim-time watchdog, 100 ms checkpoint cadence: the first
        // snapshot can never fire.
        let scenarios = vec![Scenario {
            id: "unprotected".into(),
            config: quick_cfg(1),
            chaos: Chaos::None,
            max_sim_time: Some(SimTime(1_000_000)),
        }];
        let o = SweepOptions {
            checkpoint_dir: Some(dir),
            checkpoint: CheckpointPolicy {
                every_sim_time: Some(SimDuration::from_millis(100)),
                every_events: None,
            },
            ..opts()
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(
            report.warnings[0].contains("SC017"),
            "{:?}",
            report.warnings
        );
        assert!(
            report.warnings[0].contains("'unprotected'"),
            "{:?}",
            report.warnings
        );
        // An event-count cadence has no sim-time hazard: no warning.
        let o = SweepOptions {
            checkpoint: CheckpointPolicy {
                every_sim_time: None,
                every_events: Some(1_000),
            },
            ..o
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn over_budget_scenarios_are_gated_without_running() {
        let out = tmp("budget_gate.jsonl");
        let _ = std::fs::remove_file(&out);
        // quick_cfg: 6 ranks x 4 steps, eager chain -> exactly 44 events.
        // The pricey variant runs 64 steps -> 704 predicted events.
        let pricey = WaveExperiment::flat_chain(6)
            .texec(SimDuration::from_millis(1))
            .steps(64)
            .seed(2)
            .into_config();
        let scenarios = vec![
            Scenario::new("cheap", quick_cfg(1)),
            Scenario::new("pricey", pricey),
        ];
        let o = SweepOptions {
            budget: Some(100),
            ..opts()
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        let cheap = &report.results[0];
        let pricey = &report.results[1];
        assert_eq!(cheap.status, ScenarioStatus::Ok);
        assert_eq!(pricey.status, ScenarioStatus::OverBudget);
        assert_eq!(pricey.attempts, 0, "a gated scenario must never run");
        assert!(
            pricey
                .error
                .as_deref()
                .is_some_and(|e| e.contains("SC018") && e.contains("budget")),
            "{pricey:?}"
        );
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("SC018") && w.contains("'pricey'")),
            "{:?}",
            report.warnings
        );
        // The gate record is persisted like any terminal record and is
        // honoured on resume instead of re-gating or re-running.
        assert_eq!(load_results(&out).expect("readable").len(), 2);
        let resumed =
            run_sweep(&scenarios, &SweepOptions { resume: true, ..o }, &out).expect("sweep io");
        assert_eq!(resumed.reused, 2);
        assert_eq!(resumed.results[1].status, ScenarioStatus::OverBudget);
        assert_eq!(load_results(&out).expect("readable").len(), 2);
    }

    #[test]
    fn duplicate_configs_warn_sc020() {
        let out = tmp("sc020.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![
            Scenario::new("first", quick_cfg(1)),
            Scenario::new("copy", quick_cfg(1)),
            Scenario::new("different", quick_cfg(2)),
        ];
        let report = run_sweep(&scenarios, &opts(), &out).expect("sweep io");
        assert!(report.all_ok(), "duplicates still run");
        let sc020: Vec<&String> = report
            .warnings
            .iter()
            .filter(|w| w.contains("SC020"))
            .collect();
        assert_eq!(sc020.len(), 1, "{:?}", report.warnings);
        assert!(
            sc020[0].contains("first") && sc020[0].contains("copy"),
            "{}",
            sc020[0]
        );
    }

    #[test]
    fn infeasible_retry_policy_warns_sc025() {
        let out = tmp("sc025.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario::new("s", quick_cfg(1))];
        // One scenario, 30 s per attempt, 2 retries: worst case 90 s
        // against a 10 s sweep budget — the retries are decorative.
        let o = SweepOptions {
            max_wall: Some(Duration::from_secs(10)),
            wall_timeout: Duration::from_secs(30),
            ..opts()
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert!(
            report.warnings.iter().any(|w| w.contains("SC025")),
            "{:?}",
            report.warnings
        );
        // A feasible budget is silent.
        let o = SweepOptions {
            max_wall: Some(Duration::from_secs(600)),
            ..o
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn resume_with_changed_config_is_rejected() {
        let out = tmp("resume_mismatch.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario::new("s", quick_cfg(1))];
        run_sweep(&scenarios, &opts(), &out).expect("sweep io");
        // Same id, different seed: the recorded fingerprint no longer
        // matches, so blindly reusing the old record would mix results
        // from two different experiments.
        let changed = vec![Scenario::new("s", quick_cfg(2))];
        let err = run_sweep(
            &changed,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect_err("config changed under resume");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("config fingerprint"), "{err}");
        assert!(err.to_string().contains("'s'"), "{err}");
    }

    #[test]
    fn resume_tolerates_a_line_torn_mid_codepoint() {
        let out = tmp("resume_torn_utf8.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..2)
            .map(|i| Scenario::new(format!("u{i}"), quick_cfg(i)))
            .collect();
        let first = run_sweep(&scenarios[..1], &opts(), &out).expect("sweep io");
        assert!(first.all_ok());
        // A crash mid-write can cut a record anywhere — including inside a
        // multi-byte UTF-8 sequence. 0xE2 0x82 is a truncated '€'.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&out)
                .expect("open");
            f.write_all(b"{\"id\":\"u1\",\"error\":\"\xe2\x82")
                .expect("torn write");
        }
        let resumed = run_sweep(
            &scenarios,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect("resume must survive invalid UTF-8 in the torn tail");
        assert_eq!(resumed.reused, 1);
        assert!(resumed.all_ok());
        assert_eq!(load_results(&out).expect("readable").len(), 2);
    }

    #[test]
    fn mid_scenario_snapshot_resume_matches_uninterrupted_run() {
        let dir = tmp("ckpt_resume_snaps");
        let _ = std::fs::remove_dir_all(&dir);
        let out = tmp("ckpt_resume.jsonl");
        let ctrl = tmp("ckpt_resume_ctrl.jsonl");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&ctrl);
        let mut cfg = quick_cfg(21);
        cfg.protocol = mpisim::Protocol::Rendezvous;
        let scenarios = vec![Scenario::new("mid", cfg.clone())];
        // Uninterrupted control run.
        let control = run_sweep(&scenarios, &opts(), &ctrl).expect("sweep io");
        let want = control.results[0].summary.expect("ok").trace_fingerprint;
        // Pre-seed the checkpoint dir with a mid-run snapshot, as if a
        // previous sweep was killed after writing it.
        let policy = CheckpointPolicy {
            every_sim_time: None,
            every_events: Some(25),
        };
        let mut first: Option<Snapshot> = None;
        Engine::try_new(cfg)
            .expect("valid config")
            .try_run_checkpointed(&RunLimits::none(), &policy, |s| {
                if first.is_none() {
                    first = Some(s.clone());
                }
            })
            .expect("run completes");
        std::fs::create_dir_all(&dir).expect("snapshot dir");
        let path = snapshot_path(&dir, "mid");
        write_snapshot_atomic(&path, &first.expect("snapshot captured")).expect("seed snapshot");
        let o = SweepOptions {
            resume: true,
            checkpoint_dir: Some(dir.clone()),
            checkpoint: policy,
            ..opts()
        };
        let resumed = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert!(resumed.all_ok());
        assert_eq!(
            resumed.results[0].summary.expect("ok").trace_fingerprint,
            want,
            "resuming from a mid-run snapshot changed the trace"
        );
        // The snapshot is garbage once its scenario has a durable record.
        assert!(!path.exists(), "snapshot survived sweep completion");
    }

    #[test]
    fn killed_workers_retire_and_survivors_finish_the_sweep() {
        let ctrl = tmp("kills_ctrl.jsonl");
        let out = tmp("kills.jsonl");
        let _ = std::fs::remove_file(&ctrl);
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| Scenario::new(format!("k{i}"), quick_cfg(i)))
            .collect();
        let control = run_sweep(&scenarios, &opts(), &ctrl).expect("sweep io");
        assert!(control.all_ok());
        assert_eq!(control.retired_workers, 0);
        // Kill worker 2 before it takes any work and worker 1 after its
        // first item: worker 0 (and briefly 1) carry the whole fabric.
        let chaotic = SweepOptions {
            fabric_chaos: FabricChaos {
                kill_workers: vec![(1, 1), (2, 0)],
            },
            ..opts()
        };
        let report = run_sweep(&scenarios, &chaotic, &out).expect("sweep io");
        assert!(report.all_ok());
        assert_eq!(report.retired_workers, 2);
        assert_eq!(
            std::fs::read(&out).expect("chaos report"),
            std::fs::read(&ctrl).expect("control report"),
            "worker kills changed the merged report"
        );
    }

    #[test]
    fn all_workers_killed_drains_the_fabric_inline() {
        let ctrl = tmp("drain_ctrl.jsonl");
        let out = tmp("drain.jsonl");
        let _ = std::fs::remove_file(&ctrl);
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..5)
            .map(|i| Scenario::new(format!("d{i}"), quick_cfg(i)))
            .collect();
        let control = run_sweep(&scenarios, &opts(), &ctrl).expect("sweep io");
        // Every worker dies before taking work: nothing runs on the
        // fabric, everything drains inline — degraded, never deadlocked.
        let chaotic = SweepOptions {
            fabric_chaos: FabricChaos {
                kill_workers: vec![(0, 0), (1, 0), (2, 0)],
            },
            ..opts()
        };
        let report = run_sweep(&scenarios, &chaotic, &out).expect("sweep io");
        assert!(report.all_ok());
        assert_eq!(report.retired_workers, 3);
        assert_eq!(report.results.len(), 5);
        assert_eq!(
            std::fs::read(&out).expect("chaos report"),
            std::fs::read(&ctrl).expect("control report"),
            "inline drain changed the merged report"
        );
        assert_eq!(control.results, report.results);
    }

    #[test]
    fn merge_compacts_the_manifest_and_shards_away() {
        let out = tmp("compact.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..5)
            .map(|i| Scenario::new(format!("c{i}"), quick_cfg(i)))
            .collect();
        let o = SweepOptions {
            shards: Some(2),
            ..opts()
        };
        run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert!(out.exists());
        assert!(
            !shard::manifest_path(&out).exists(),
            "manifest must be compacted away"
        );
        assert!(
            shard::existing_shard_files(&out)
                .expect("listable")
                .is_empty(),
            "shard files must be compacted away"
        );
        // The merged report: header first, then records in input order.
        let text = std::fs::read_to_string(&out).expect("report");
        let mut lines = text.lines();
        assert!(
            lines
                .next()
                .expect("header")
                .starts_with("{\"sweep_format\":"),
            "{text}"
        );
        let ids: Vec<String> = load_results(&out)
            .expect("readable")
            .into_iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, vec!["c0", "c1", "c2", "c3", "c4"]);
    }

    #[test]
    fn unknown_status_records_warn_and_rerun_instead_of_vanishing() {
        let out = tmp("future_status.jsonl");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(shard::manifest_path(&out));
        for f in shard::existing_shard_files(&out).expect("listable") {
            let _ = std::fs::remove_file(f);
        }
        let scenarios = vec![Scenario::new("fut", quick_cfg(1))];
        // A crashed sweep left a shard record written by a newer version:
        // parseable JSON, unknown status string.
        std::fs::write(
            shard::shard_path(&out, 0),
            "{\"id\":\"fut\",\"status\":\"from-the-future\",\"attempts\":1}\n",
        )
        .expect("plant record");
        let report = run_sweep(
            &scenarios,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect("sweep io");
        // The record was surfaced, not silently dropped — and the
        // scenario re-ran to a terminal record this version understands.
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("'fut'") && w.contains("unknown status 'from-the-future'")),
            "{:?}",
            report.warnings
        );
        assert_eq!(report.reused, 0);
        assert!(report.all_ok());
        assert_eq!(load_results(&out).expect("readable").len(), 1);
    }

    #[test]
    fn cache_serves_warm_reruns_byte_identically() {
        let cache_dir = tmp("cache_warm_dir");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cold_out = tmp("cache_cold.jsonl");
        let warm_out = tmp("cache_warm.jsonl");
        let _ = std::fs::remove_file(&cold_out);
        let _ = std::fs::remove_file(&warm_out);
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| Scenario::new(format!("w{i}"), quick_cfg(i)))
            .collect();
        let o = SweepOptions {
            cache_dir: Some(cache_dir.clone()),
            ..opts()
        };
        let cold = run_sweep(&scenarios, &o, &cold_out).expect("sweep io");
        assert!(cold.all_ok());
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 4);
        assert_eq!(cold.cache_quarantined, 0);
        // Warm rerun against a fresh output file: zero re-simulations,
        // bit-identical merged report.
        let warm = run_sweep(&scenarios, &o, &warm_out).expect("sweep io");
        assert!(warm.all_ok());
        assert_eq!(warm.cache_hits, 4);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_quarantined, 0);
        assert_eq!(
            std::fs::read(&cold_out).expect("cold"),
            std::fs::read(&warm_out).expect("warm"),
            "a cache-served sweep must be bit-identical to the computed one"
        );
    }

    #[test]
    fn corrupt_cache_entries_are_quarantined_and_resimulated() {
        let cache_dir = tmp("cache_corrupt_dir");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cold_out = tmp("cache_corrupt_cold.jsonl");
        let rerun_out = tmp("cache_corrupt_rerun.jsonl");
        let _ = std::fs::remove_file(&cold_out);
        let _ = std::fs::remove_file(&rerun_out);
        let scenarios: Vec<Scenario> = (0..3)
            .map(|i| Scenario::new(format!("q{i}"), quick_cfg(i)))
            .collect();
        let o = SweepOptions {
            cache_dir: Some(cache_dir.clone()),
            ..opts()
        };
        run_sweep(&scenarios, &o, &cold_out).expect("sweep io");
        // Bit-flip the first scenario's entry.
        let cache = cache::ResultCache::open(&cache_dir).expect("cache dir");
        let victim = cache.entry_path(config_fingerprint(&scenarios[0].config));
        let mut bytes = std::fs::read(&victim).expect("entry");
        bytes[12] ^= 0x01;
        std::fs::write(&victim, &bytes).expect("corrupt");
        let rerun = run_sweep(&scenarios, &o, &rerun_out).expect("sweep io");
        assert!(rerun.all_ok());
        assert_eq!(rerun.cache_quarantined, 1);
        assert_eq!(rerun.cache_hits, 2);
        assert_eq!(rerun.cache_misses, 0);
        assert!(
            rerun
                .warnings
                .iter()
                .any(|w| w.contains("'q0'") && w.contains("quarantined")),
            "{:?}",
            rerun.warnings
        );
        assert_eq!(
            std::fs::read(&cold_out).expect("cold"),
            std::fs::read(&rerun_out).expect("rerun"),
            "quarantine-and-resimulate must reproduce the original report"
        );
    }

    #[test]
    fn unusable_cache_dir_degrades_to_uncached_with_sc026() {
        let blocked = tmp("cache_blocked_dir");
        let _ = std::fs::remove_dir_all(&blocked);
        std::fs::write(&blocked, b"a file where the dir should be").expect("blocker");
        let out = tmp("cache_blocked.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario::new("b", quick_cfg(1))];
        let o = SweepOptions {
            cache_dir: Some(blocked),
            ..opts()
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert!(report.all_ok(), "the sweep itself must still succeed");
        assert_eq!(report.cache_hits + report.cache_misses, 0, "uncached");
        assert!(
            report.warnings.iter().any(|w| w.contains("SC026")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn planted_cache_collisions_warn_sc027_and_resimulate() {
        let cache_dir = tmp("cache_collision_dir");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cold_out = tmp("cache_collision_cold.jsonl");
        let rerun_out = tmp("cache_collision_rerun.jsonl");
        let _ = std::fs::remove_file(&cold_out);
        let _ = std::fs::remove_file(&rerun_out);
        let scenarios = vec![Scenario::new("col", quick_cfg(1))];
        let o = SweepOptions {
            cache_dir: Some(cache_dir.clone()),
            ..opts()
        };
        run_sweep(&scenarios, &o, &cold_out).expect("sweep io");
        // Plant a *verified* entry that stores a different config behind
        // this scenario's fingerprint: the integrity footer checks out,
        // the payload is for something else entirely.
        let cache = cache::ResultCache::open(&cache_dir).expect("cache dir");
        let fp = config_fingerprint(&scenarios[0].config);
        let other = json::to_string(&quick_cfg(2));
        let summary = RunSummary {
            runtime_ns: 1,
            events: 1,
            messages: 1,
            retransmissions: 0,
            dropped: 0,
            corrupted: 0,
            trace_fingerprint: 1,
        };
        cache.store(&other, fp, 1, &summary).expect("plant");
        let rerun = run_sweep(&scenarios, &o, &rerun_out).expect("sweep io");
        assert!(rerun.all_ok());
        assert_eq!(rerun.cache_quarantined, 1);
        assert!(
            rerun
                .warnings
                .iter()
                .any(|w| w.contains("SC027") && w.contains("'col'")),
            "{:?}",
            rerun.warnings
        );
        assert_eq!(
            std::fs::read(&cold_out).expect("cold"),
            std::fs::read(&rerun_out).expect("rerun"),
            "a planted collision must not change the merged report"
        );
    }

    #[test]
    fn scenario_and_result_json_round_trip() {
        let s = Scenario {
            id: "rt".into(),
            config: quick_cfg(3),
            chaos: Chaos::FailAttempts(2),
            max_sim_time: Some(SimTime(123)),
        };
        let back: Scenario = json::from_str(&json::to_string(&s)).expect("scenario");
        assert_eq!(s, back);
        let r = ScenarioResult {
            id: "rt".into(),
            status: ScenarioStatus::WallTimeout,
            attempts: 3,
            error: Some("slow".into()),
            summary: None,
            config_fingerprint: Some(0xdead_beef),
        };
        let back: ScenarioResult = json::from_str(&json::to_string(&r)).expect("result");
        assert_eq!(r, back);
        // A bare scenario omits chaos defaults cleanly.
        let plain = Scenario::new("p", quick_cfg(1));
        let back: Scenario = json::from_str(&json::to_string(&plain)).expect("plain");
        assert_eq!(back.chaos, Chaos::None);
    }

    #[test]
    fn a_stop_request_interrupts_resumably_and_resume_completes_the_suite() {
        let out = tmp("interrupt.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| Scenario::new(format!("s{i}"), quick_cfg(i)))
            .collect();
        let control =
            run_sweep(&scenarios, &opts(), &tmp("interrupt-control.jsonl")).expect("control sweep");

        // A stop flag raised before the workers start is the extreme
        // case: nothing dealt, everything left for the resume.
        let stop = AtomicBool::new(true);
        let report =
            run_sweep_interruptible(&scenarios, &opts(), &out, &stop).expect("interrupted sweep");
        assert!(report.interrupted);
        assert!(report.results.len() < scenarios.len());
        // The resumable state survived: the manifest is still there and
        // the final report was *not* merged.
        assert!(shard::manifest_path(&out).exists(), "manifest kept");

        let mut resume_opts = opts();
        resume_opts.resume = true;
        let resumed = run_sweep(&scenarios, &resume_opts, &out).expect("resume sweep");
        assert!(!resumed.interrupted);
        assert_eq!(resumed.results.len(), scenarios.len());
        for (c, r) in control.results.iter().zip(&resumed.results) {
            assert_eq!(
                c.summary, r.summary,
                "resumed result differs for '{}'",
                c.id
            );
        }
        assert!(!shard::manifest_path(&out).exists(), "manifest compacted");
    }
}
