//! Sharded crash-safe result persistence.
//!
//! During a sweep every scenario's terminal record is appended to one of
//! `N` per-shard JSONL files (`<out>.shard-K.jsonl`, `K = index % N`) the
//! moment it finishes — flushed per line, optionally fsynced
//! ([`crate::sweep::SweepOptions::fsync`]), so a crash of the sweep
//! process loses at most the scenarios still in flight. Which *worker*
//! ran a scenario never matters: the shard is a function of the
//! scenario's input index, so steal order cannot move records between
//! files.
//!
//! The suite's config-fingerprint header lives in `<out>.manifest`
//! (written atomically before any scenario runs) so a resume after a
//! crash can still validate configs. On completion the fabric merges
//! everything into the final `<out>` report — header line plus one
//! record per scenario in input order, written to a temp file and
//! renamed into place — then deletes the manifest and shard files.
//! Readers of `<out>` therefore only ever see a complete report;
//! mid-sweep state is always reconstructible from manifest + shards.
//!
//! Torn writes are expected, not fatal: a reopened shard file gets its
//! unterminated tail newline-terminated so the next record starts on a
//! fresh line, and the loaders skip unparseable tails byte-safely (a
//! line may be cut mid-UTF-8-codepoint). Parseable records whose status
//! string is unknown (written by a future version) are *surfaced* as
//! warnings instead of silently vanishing — their scenarios re-run.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use tracefmt::json::{self, FromJson, Json};

use super::{ScenarioResult, ScenarioStatus};

/// The per-shard sink file for shard `k` of the report at `out`.
pub(crate) fn shard_path(out: &Path, k: usize) -> PathBuf {
    sibling(out, &format!(".shard-{k}.jsonl"))
}

/// The manifest file carrying the header line while shards are live.
pub(crate) fn manifest_path(out: &Path) -> PathBuf {
    sibling(out, ".manifest")
}

/// `<out><suffix>` next to the report file.
fn sibling(out: &Path, suffix: &str) -> PathBuf {
    let mut name = out
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "sweep".to_string());
    name.push_str(suffix);
    out.with_file_name(name)
}

/// Every existing shard file of `out`, in shard order — including shards
/// beyond the current run's count, left behind by a crashed run with a
/// different sharding.
pub(crate) fn existing_shard_files(out: &Path) -> io::Result<Vec<PathBuf>> {
    let dir = match out.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!(
        "{}.shard-",
        out.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "sweep".to_string())
    );
    let mut found: Vec<(usize, PathBuf)> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(k) = rest
            .strip_suffix(".jsonl")
            .and_then(|digits| digits.parse::<usize>().ok())
        else {
            continue;
        };
        found.push((k, entry.path()));
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// One shard's append-only sink.
pub(crate) struct ShardSink {
    file: std::fs::File,
    fsync: bool,
}

impl ShardSink {
    /// Open (or create) the sink in append mode, repairing a torn tail: a
    /// crash mid-write can leave a final line with no newline — possibly
    /// cut mid-UTF-8-codepoint — so the tail is newline-terminated and
    /// the next record starts on a fresh line.
    pub(crate) fn open(path: &Path, fsync: bool) -> io::Result<ShardSink> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)
            .map_err(|e| with_path(path, e))?;
        // Inspect the tail through the open handle, not the path — the
        // handle stays valid whatever happens to the directory entry.
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| with_path(path, e))?;
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            file.write_all(b"\n").map_err(|e| with_path(path, e))?;
            file.flush().map_err(|e| with_path(path, e))?;
        }
        Ok(ShardSink { file, fsync })
    }

    /// Append one record and flush it before acknowledging; with `fsync`,
    /// additionally push it to stable storage so even an OS-level crash
    /// immediately after the acknowledgement cannot lose it.
    pub(crate) fn persist(&mut self, result: &ScenarioResult) -> io::Result<()> {
        self.file.write_all(json::to_string(result).as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// Annotate a bare OS error with the path it was about, so a harness
/// failure surfaces as "<path>: No such file ..." instead of an
/// undiagnosable raw errno.
fn with_path(path: &Path, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// Write `contents` atomically: temp file + rename, so readers only ever
/// see a complete file.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents).map_err(|e| with_path(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| with_path(path, e))
}

/// Merge a finished sweep into the final report at `out` — header line
/// plus one record per scenario in input order, atomically — then delete
/// the manifest and every shard file. A crash *before* the rename leaves
/// the previous `out` (if any) plus the complete shard set; a crash
/// *after* it leaves at worst orphaned shard files a later run deletes.
pub(crate) fn merge(out: &Path, header: &Json, results: &[ScenarioResult]) -> io::Result<()> {
    let mut text = json::to_string(header);
    text.push('\n');
    for r in results {
        text.push_str(&json::to_string(r));
        text.push('\n');
    }
    write_atomic(out, &text)?;
    let _ = std::fs::remove_file(manifest_path(out));
    for shard in existing_shard_files(out)? {
        let _ = std::fs::remove_file(shard);
    }
    Ok(())
}

/// Reload persisted records leniently. Unparseable lines are skipped, not
/// fatal: that covers the header line (not a record), a torn final line
/// after a crash mid-write, and — because the file is read as bytes and
/// each line checked for UTF-8 individually — a final line truncated
/// *mid-UTF-8-codepoint*, which would make the whole file unreadable via
/// `read_to_string`.
pub fn load_results(path: &Path) -> io::Result<Vec<ScenarioResult>> {
    load_results_checked(path).map(|(results, _)| results)
}

/// [`load_results`], but records that *parse* as JSON objects with an
/// `id` and still fail to decode — most importantly an unknown
/// `status` written by a future version — come back as warnings instead
/// of silently vanishing. Their scenarios simply re-run; the warning
/// tells the operator why.
pub(crate) fn load_results_checked(path: &Path) -> io::Result<(Vec<ScenarioResult>, Vec<String>)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), Vec::new())),
        Err(e) => return Err(e),
    };
    let mut results = Vec::new();
    let mut warnings = Vec::new();
    for line in bytes.split(|&b| b == b'\n') {
        // Torn tails may not be UTF-8 or JSON at all: skip silently.
        let Ok(text) = std::str::from_utf8(line) else {
            continue;
        };
        let Ok(v) = Json::parse(text) else {
            continue;
        };
        match ScenarioResult::from_json(&v) {
            Ok(r) => results.push(r),
            Err(e) => {
                // Header and other non-record lines have no id; a line
                // *with* one is a record this version cannot honour —
                // say so instead of dropping it on the floor.
                if let Some(id) = v.get("id").and_then(|j| j.as_str()) {
                    let status = v
                        .get("status")
                        .and_then(|j| j.as_str())
                        .unwrap_or("<missing>");
                    let known = ScenarioStatus::from_str(status).is_some();
                    warnings.push(format!(
                        "scenario '{id}': undecodable record in {} ({}) — \
                         ignoring it and re-running the scenario",
                        path.display(),
                        if known {
                            e.0.clone()
                        } else {
                            format!("unknown status '{status}', written by a newer version?")
                        }
                    ));
                }
            }
        }
    }
    Ok((results, warnings))
}

/// Everything a crashed or finished sweep left behind for `out`: records
/// from the merged report (if one exists) overlaid with records from
/// every surviving shard file, deduplicated by scenario id (shard
/// records win — they are at least as new as a stale merged report).
pub(crate) fn load_previous(out: &Path) -> io::Result<(Vec<ScenarioResult>, Vec<String>)> {
    let (mut results, mut warnings) = load_results_checked(out)?;
    for shard in existing_shard_files(out)? {
        let (shard_results, shard_warnings) = load_results_checked(&shard)?;
        warnings.extend(shard_warnings);
        for r in shard_results {
            if let Some(slot) = results.iter_mut().find(|have| have.id == r.id) {
                *slot = r;
            } else {
                results.push(r);
            }
        }
    }
    Ok((results, warnings))
}
