//! The crash-safe job journal behind `wavesim serve`.
//!
//! One append-only JSONL file (`journal.jsonl` in the serve directory)
//! records the service's durable state transitions: a `job` line when a
//! submission is admitted (written *before* the client sees `accepted`,
//! so an acknowledged job can never be lost), and a `done` line when it
//! reaches a terminal record. Replaying the file yields exactly the
//! restart obligations: jobs without a `done` are pending and re-run —
//! bit-identically, because the simulator is deterministic — and
//! completed records are kept addressable for `query`.
//!
//! The same torn-write discipline as the sweep's shard sinks
//! (`sweep::shard`): append + flush (optionally fsync) per line, tail
//! repair through the open handle on reopen, and byte-safe lenient
//! replay. On top of that, every line carries an FNV-1a digest of its
//! record — the journal's per-line version of the footer-verified
//! snapshot documents — so a half-flushed or bit-damaged line is
//! *detected* and skipped with a warning instead of silently decoding to
//! garbage.

use std::io::{self, Read, Write};
use std::path::Path;

use tracefmt::fnv1a_64;
use tracefmt::json::{self, FromJson, Json, ToJson};

use crate::sweep::{Scenario, ScenarioResult};

/// Version tag on every journal line.
pub(crate) const JOURNAL_FORMAT: u64 = 1;

/// One durable state transition.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JournalRecord {
    /// A submission passed admission under this job number.
    Job {
        /// Monotonic job number.
        job: u64,
        /// The admitted scenario.
        scenario: Scenario,
    },
    /// The job reached a terminal record.
    Done {
        /// The job number from the matching [`JournalRecord::Job`] line.
        job: u64,
        /// The terminal record, byte-identical to a sweep's.
        result: ScenarioResult,
    },
}

impl JournalRecord {
    fn rec_json(&self) -> Json {
        match self {
            JournalRecord::Job { job, scenario } => Json::obj(vec![
                ("type", Json::Str("job".into())),
                ("job", job.to_json()),
                ("scenario", scenario.to_json()),
            ]),
            JournalRecord::Done { job, result } => Json::obj(vec![
                ("type", Json::Str("done".into())),
                ("job", job.to_json()),
                ("result", result.to_json()),
            ]),
        }
    }

    fn from_rec_json(v: &Json) -> json::Result<JournalRecord> {
        let ty = v.field("type")?.expect_str()?;
        let job = v.field("job")?.expect_u64()?;
        Ok(match ty {
            "job" => JournalRecord::Job {
                job,
                scenario: Scenario::from_json(v.field("scenario")?)?,
            },
            "done" => JournalRecord::Done {
                job,
                result: ScenarioResult::from_json(v.field("result")?)?,
            },
            other => return Err(json::JsonError(format!("unknown journal record '{other}'"))),
        })
    }
}

/// What a replay of the journal found.
#[derive(Debug, Default)]
pub(crate) struct Recovery {
    /// Admitted jobs without a `done` line, in job order: the restart
    /// obligations.
    pub pending: Vec<(u64, Scenario)>,
    /// Terminal records, in completion order (later lines win on id).
    pub completed: Vec<ScenarioResult>,
    /// The next unused job number.
    pub next_job: u64,
    /// Lines that were skipped (torn tail, digest mismatch, unknown
    /// future record) — surfaced, never silently dropped.
    pub warnings: Vec<String>,
}

/// The open append handle.
pub(crate) struct Journal {
    file: std::fs::File,
    fsync: bool,
}

impl Journal {
    /// Open (or create) `dir/journal.jsonl`, repair a torn tail through
    /// the open handle, and replay the surviving lines.
    pub(crate) fn open(dir: &Path, fsync: bool) -> io::Result<(Journal, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("journal.jsonl");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
            file.write_all(b"\n")?;
            file.flush()?;
        }
        let recovery = replay(&bytes, &path);
        Ok((Journal { file, fsync }, recovery))
    }

    /// Append one record, flushed (and optionally fsynced) before the
    /// caller acknowledges anything downstream of it.
    pub(crate) fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let rec = record.rec_json();
        let digest = fnv1a_64(rec.dump().as_bytes());
        let line = Json::obj(vec![
            ("journal_format", JOURNAL_FORMAT.to_json()),
            ("digest", digest.to_json()),
            ("rec", rec),
        ]);
        self.file.write_all(line.dump().as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// Lenient, digest-checking replay of the journal bytes.
fn replay(bytes: &[u8], path: &Path) -> Recovery {
    let mut rec = Recovery::default();
    let mut jobs: Vec<(u64, Scenario)> = Vec::new();
    let mut done: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (lineno, line) in bytes.split(|&b| b == b'\n').enumerate() {
        if line.is_empty() {
            continue;
        }
        // A torn tail may be cut mid-UTF-8-codepoint or mid-JSON: both
        // are expected crash artifacts, skipped without a warning only
        // when they cannot even be framed.
        let Ok(text) = std::str::from_utf8(line) else {
            rec.warnings
                .push(skipped(path, lineno, "not UTF-8 (torn tail)"));
            continue;
        };
        let Ok(v) = Json::parse(text) else {
            rec.warnings
                .push(skipped(path, lineno, "unparseable (torn tail)"));
            continue;
        };
        let (Some(digest), Some(body)) = (v.get("digest").and_then(Json::as_u64), v.get("rec"))
        else {
            rec.warnings
                .push(skipped(path, lineno, "missing digest or rec"));
            continue;
        };
        if fnv1a_64(body.dump().as_bytes()) != digest {
            rec.warnings.push(skipped(path, lineno, "digest mismatch"));
            continue;
        }
        match JournalRecord::from_rec_json(body) {
            Ok(JournalRecord::Job { job, scenario }) => {
                rec.next_job = rec.next_job.max(job + 1);
                jobs.push((job, scenario));
            }
            Ok(JournalRecord::Done { job, result }) => {
                rec.next_job = rec.next_job.max(job + 1);
                done.insert(job);
                rec.completed.push(result);
            }
            Err(e) => rec.warnings.push(skipped(path, lineno, &e.0)),
        }
    }
    jobs.sort_by_key(|&(job, _)| job);
    rec.pending = jobs
        .into_iter()
        .filter(|(job, _)| !done.contains(job))
        .collect();
    rec
}

fn skipped(path: &Path, lineno: usize, why: &str) -> String {
    format!(
        "journal {} line {}: skipped — {why}",
        path.display(),
        lineno + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ScenarioStatus;
    use mpisim::SimConfig;
    use netmodel::presets;
    use std::path::PathBuf;
    use workload::{Boundary, CommPattern, Direction};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wavesim-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn scenario(id: &str) -> Scenario {
        Scenario::new(
            id,
            SimConfig::baseline(
                presets::loggopsim_like(4),
                CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Periodic),
                3,
            ),
        )
    }

    fn result(id: &str) -> ScenarioResult {
        ScenarioResult {
            id: id.into(),
            status: ScenarioStatus::Ok,
            attempts: 1,
            error: None,
            summary: None,
            config_fingerprint: Some(1),
        }
    }

    #[test]
    fn replay_separates_pending_from_completed() {
        let dir = tmp("replay");
        {
            let (mut j, rec) = Journal::open(&dir, false).expect("open");
            assert_eq!(rec.next_job, 0);
            j.append(&JournalRecord::Job {
                job: 0,
                scenario: scenario("a"),
            })
            .expect("append");
            j.append(&JournalRecord::Job {
                job: 1,
                scenario: scenario("b"),
            })
            .expect("append");
            j.append(&JournalRecord::Done {
                job: 0,
                result: result("a"),
            })
            .expect("append");
        }
        let (_, rec) = Journal::open(&dir, false).expect("reopen");
        assert_eq!(rec.next_job, 2);
        assert_eq!(rec.completed.len(), 1);
        assert_eq!(rec.pending.len(), 1);
        assert_eq!(rec.pending[0].0, 1);
        assert_eq!(rec.pending[0].1.id, "b");
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_and_bit_damage_are_skipped_with_warnings() {
        let dir = tmp("torn");
        {
            let (mut j, _) = Journal::open(&dir, false).expect("open");
            j.append(&JournalRecord::Job {
                job: 0,
                scenario: scenario("a"),
            })
            .expect("append");
            j.append(&JournalRecord::Done {
                job: 0,
                result: result("a"),
            })
            .expect("append");
        }
        let path = dir.join("journal.jsonl");
        let mut bytes = std::fs::read(&path).expect("read back");
        // Flip one content byte of the *done* line so its digest fails,
        // then append a torn half-line with an invalid UTF-8 tail.
        let second_line = bytes.iter().position(|&b| b == b'\n').expect("newline") + 1;
        let flip = second_line
            + bytes[second_line..]
                .windows(4)
                .position(|w| w == b"\"ok\"")
                .expect("status text")
            + 1;
        bytes[flip] ^= 0x20;
        bytes.extend(b"{\"journal_format\":1,\"digest\":9,\"rec\"\xff");
        std::fs::write(&path, bytes).expect("rewrite");

        let (_, rec) = Journal::open(&dir, false).expect("reopen");
        // The damaged done line is ignored, so job 0 is pending again —
        // re-running it is always safe (determinism) and never wrong.
        assert_eq!(rec.pending.len(), 1, "{:?}", rec.warnings);
        assert!(rec.completed.is_empty());
        assert!(
            rec.warnings.iter().any(|w| w.contains("digest mismatch")),
            "{:?}",
            rec.warnings
        );
        assert!(
            rec.warnings.iter().any(|w| w.contains("torn tail")),
            "{:?}",
            rec.warnings
        );
        // The reopen newline-terminated the torn tail: the next append
        // starts on a fresh line and replays cleanly.
        let (mut j, _) = Journal::open(&dir, false).expect("third open");
        j.append(&JournalRecord::Done {
            job: 0,
            result: result("a"),
        })
        .expect("append after repair");
        let (_, rec) = Journal::open(&dir, false).expect("fourth open");
        assert!(rec.pending.is_empty());
        assert_eq!(rec.completed.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_before_job_is_tolerated() {
        // The worker may journal `done` concurrently with nothing else —
        // a future version interleaving differently must still replay.
        let dir = tmp("order");
        {
            let (mut j, _) = Journal::open(&dir, false).expect("open");
            j.append(&JournalRecord::Done {
                job: 5,
                result: result("z"),
            })
            .expect("append");
        }
        let (_, rec) = Journal::open(&dir, false).expect("reopen");
        assert!(rec.pending.is_empty());
        assert_eq!(rec.completed.len(), 1);
        assert_eq!(rec.next_job, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
