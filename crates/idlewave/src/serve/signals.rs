//! Zero-dependency SIGTERM/SIGINT latching.
//!
//! The workspace bakes in no external crates, so signal handling is the
//! minimal async-signal-safe primitive done by hand: a process-wide
//! [`AtomicBool`] that the C handler stores into and cooperative loops
//! poll. `std` already links libc on the Unix targets this runs on, so
//! `signal(2)` is declared directly. On non-Unix targets the flag simply
//! never fires from a signal — the serve accept loop and the sweep
//! fabric still honour it when set programmatically.
//!
//! Both `wavesim serve` (graceful drain) and `wavesim sweep` (stop
//! dealing, keep resumable state) install the same latch: the first
//! SIGTERM or SIGINT requests a graceful stop; in-flight work finishes
//! and is flushed before the process exits.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// The handler body: a single atomic store, the only thing that is
/// async-signal-safe here.
extern "C" fn latch_term(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Install the SIGTERM/SIGINT latch and return the flag cooperative
/// loops should poll. Idempotent; the flag is process-wide.
pub fn install_term_handler() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = latch_term as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the libc prototype; the handler does one
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(15, handler); // SIGTERM
            signal(2, handler); // SIGINT
        }
    }
    &TERM_REQUESTED
}

/// The latch without (re)installing handlers — for in-process tests and
/// drills that set it programmatically.
pub fn term_flag() -> &'static AtomicBool {
    &TERM_REQUESTED
}
