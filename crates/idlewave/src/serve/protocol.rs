//! The `wavesim serve` wire protocol: line-delimited JSON records,
//! version `serve_format = 1`.
//!
//! Every line is one record with a `"type"` discriminator. The server
//! greets each connection with a `hello`, then answers every request
//! line with at least one reply line; `submit` additionally produces a
//! later `result` line when the job reaches a terminal state. Replies
//! to a connection are serialized by a single writer, so a client can
//! match results to submissions by scenario id.
//!
//! Requests: `submit` (carries a sweep [`Scenario`]), `query` (fetch the
//! terminal record for an id, e.g. after a server restart), `ping`,
//! `stats`, and `drain` (ask the server to stop accepting, finish
//! in-flight work, and exit — the request-shaped twin of SIGTERM).
//!
//! Protocol errors are *replies*, not disconnects: a malformed,
//! oversized, or unknown line gets a structured `error` record and the
//! connection keeps serving (see `docs/SERVE.md`).

use tracefmt::json::{self, FromJson, Json, JsonError, ToJson};

use crate::sweep::{Scenario, ScenarioResult};

/// Wire format version in the `hello` greeting.
pub const SERVE_FORMAT: u64 = 1;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one scenario for execution.
    Submit(Box<Scenario>),
    /// Fetch the terminal record for a scenario id, if one exists.
    Query {
        /// The scenario id to look up.
        id: String,
    },
    /// Liveness probe; echoed back in a `pong`.
    Ping {
        /// Opaque client token, echoed verbatim.
        nonce: u64,
    },
    /// Snapshot of the service counters.
    Stats,
    /// Graceful drain: stop accepting, finish in-flight jobs, exit 0.
    Drain,
}

/// Parse one request line. The error string is ready to embed in an
/// `error` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|JsonError(e)| format!("malformed JSON: {e}"))?;
    let ty = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "record has no \"type\" field".to_string())?;
    match ty {
        "submit" => {
            let s = v
                .field("scenario")
                .and_then(Scenario::from_json)
                .map_err(|JsonError(e)| format!("bad scenario in submit: {e}"))?;
            Ok(Request::Submit(Box::new(s)))
        }
        "query" => {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "query has no \"id\" field".to_string())?;
            Ok(Request::Query { id: id.to_string() })
        }
        "ping" => Ok(Request::Ping {
            nonce: v.get("nonce").and_then(Json::as_u64).unwrap_or(0),
        }),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        other => Err(format!("unknown record type '{other}'")),
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Submit(s) => Json::obj(vec![
                ("type", Json::Str("submit".into())),
                ("scenario", s.to_json()),
            ]),
            Request::Query { id } => Json::obj(vec![
                ("type", Json::Str("query".into())),
                ("id", Json::Str(id.clone())),
            ]),
            Request::Ping { nonce } => Json::obj(vec![
                ("type", Json::Str("ping".into())),
                ("nonce", nonce.to_json()),
            ]),
            Request::Stats => Json::obj(vec![("type", Json::Str("stats".into()))]),
            Request::Drain => Json::obj(vec![("type", Json::Str("drain".into()))]),
        }
    }
}

/// Service counters, as reported by a `stats` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Submissions admitted to the job queue.
    pub accepted: u64,
    /// Submissions refused by admission control (`SC028`).
    pub rejected: u64,
    /// Submissions load-shed by the full queue (`SC029`).
    pub shed: u64,
    /// Jobs that reached a terminal record this process lifetime.
    pub completed: u64,
    /// Jobs cancelled because their client disconnected first.
    pub cancelled: u64,
    /// Pending jobs recovered from the journal at startup.
    pub recovered: u64,
    /// Jobs served byte-identically from the verified result cache.
    pub cache_hits: u64,
    /// Cache-eligible jobs that had to simulate.
    pub cache_misses: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently being executed by a worker.
    pub inflight: u64,
    /// Whether the service is draining.
    pub draining: bool,
}

impl ToJson for StatsBody {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("accepted", self.accepted.to_json()),
            ("rejected", self.rejected.to_json()),
            ("shed", self.shed.to_json()),
            ("completed", self.completed.to_json()),
            ("cancelled", self.cancelled.to_json()),
            ("recovered", self.recovered.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("queued", self.queued.to_json()),
            ("inflight", self.inflight.to_json()),
            ("draining", Json::Bool(self.draining)),
        ])
    }
}

impl FromJson for StatsBody {
    fn from_json(v: &Json) -> json::Result<StatsBody> {
        Ok(StatsBody {
            accepted: v.field("accepted")?.expect_u64()?,
            rejected: v.field("rejected")?.expect_u64()?,
            shed: v.field("shed")?.expect_u64()?,
            completed: v.field("completed")?.expect_u64()?,
            cancelled: v.field("cancelled")?.expect_u64()?,
            recovered: v.field("recovered")?.expect_u64()?,
            cache_hits: v.field("cache_hits")?.expect_u64()?,
            cache_misses: v.field("cache_misses")?.expect_u64()?,
            queued: v.field("queued")?.expect_u64()?,
            inflight: v.field("inflight")?.expect_u64()?,
            draining: v.field("draining")?.expect_bool()?,
        })
    }
}

/// One reply line from the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Connection greeting carrying the wire format version.
    Hello {
        /// [`SERVE_FORMAT`].
        serve_format: u64,
    },
    /// The submission passed admission and was journaled + queued.
    Accepted {
        /// Scenario id of the submission.
        id: String,
        /// Server-assigned monotonic job number.
        job: u64,
        /// Queue depth at admission (including this job).
        queued: u64,
    },
    /// The submission was refused by admission control.
    Rejected {
        /// Scenario id of the submission.
        id: String,
        /// Summary line.
        error: String,
        /// The SC diagnostics ([`mpisim::Diagnostic`] JSON), `SC028` last.
        diagnostics: Vec<Json>,
    },
    /// The submission was load-shed by the full job queue.
    Overloaded {
        /// Scenario id of the submission.
        id: String,
        /// Jobs queued when the submission arrived.
        queued: u64,
        /// The queue's capacity.
        capacity: u64,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
        /// The `SC029` diagnostic.
        diagnostics: Vec<Json>,
    },
    /// A job's terminal record (also the answer to a successful `query`).
    Result {
        /// The persisted record, byte-identical to a sweep's.
        record: ScenarioResult,
    },
    /// A `query` for an id with no terminal record (unknown, queued, or
    /// still running).
    NoResult {
        /// The queried id.
        id: String,
    },
    /// Answer to a `ping`.
    Pong {
        /// The request's nonce, echoed.
        nonce: u64,
    },
    /// Answer to a `stats` request.
    Stats(StatsBody),
    /// The service is draining and accepts no new submissions.
    Draining,
    /// A protocol-level error (malformed/oversized/unknown input line).
    Error {
        /// Human-readable reason.
        error: String,
    },
}

impl ToJson for Reply {
    fn to_json(&self) -> Json {
        let t = |s: &str| Json::Str(s.to_string());
        match self {
            Reply::Hello { serve_format } => Json::obj(vec![
                ("type", t("hello")),
                ("serve_format", serve_format.to_json()),
            ]),
            Reply::Accepted { id, job, queued } => Json::obj(vec![
                ("type", t("accepted")),
                ("id", Json::Str(id.clone())),
                ("job", job.to_json()),
                ("queued", queued.to_json()),
            ]),
            Reply::Rejected {
                id,
                error,
                diagnostics,
            } => Json::obj(vec![
                ("type", t("rejected")),
                ("id", Json::Str(id.clone())),
                ("error", Json::Str(error.clone())),
                ("diagnostics", Json::Array(diagnostics.clone())),
            ]),
            Reply::Overloaded {
                id,
                queued,
                capacity,
                retry_after_ms,
                diagnostics,
            } => Json::obj(vec![
                ("type", t("overloaded")),
                ("id", Json::Str(id.clone())),
                ("queued", queued.to_json()),
                ("capacity", capacity.to_json()),
                ("retry_after_ms", retry_after_ms.to_json()),
                ("diagnostics", Json::Array(diagnostics.clone())),
            ]),
            Reply::Result { record } => {
                Json::obj(vec![("type", t("result")), ("record", record.to_json())])
            }
            Reply::NoResult { id } => Json::obj(vec![
                ("type", t("no-result")),
                ("id", Json::Str(id.clone())),
            ]),
            Reply::Pong { nonce } => {
                Json::obj(vec![("type", t("pong")), ("nonce", nonce.to_json())])
            }
            Reply::Stats(body) => Json::obj(vec![("type", t("stats")), ("stats", body.to_json())]),
            Reply::Draining => Json::obj(vec![("type", t("draining"))]),
            Reply::Error { error } => Json::obj(vec![
                ("type", t("error")),
                ("error", Json::Str(error.clone())),
            ]),
        }
    }
}

impl FromJson for Reply {
    fn from_json(v: &Json) -> json::Result<Reply> {
        let ty = v
            .field("type")
            .and_then(|t| t.expect_str())
            .map_err(|JsonError(e)| JsonError(format!("reply type: {e}")))?;
        Ok(match ty {
            "hello" => Reply::Hello {
                serve_format: v.field("serve_format")?.expect_u64()?,
            },
            "accepted" => Reply::Accepted {
                id: v.field("id")?.expect_str()?.to_string(),
                job: v.field("job")?.expect_u64()?,
                queued: v.field("queued")?.expect_u64()?,
            },
            "rejected" => Reply::Rejected {
                id: v.field("id")?.expect_str()?.to_string(),
                error: v.field("error")?.expect_str()?.to_string(),
                diagnostics: v.field("diagnostics")?.expect_array()?.to_vec(),
            },
            "overloaded" => Reply::Overloaded {
                id: v.field("id")?.expect_str()?.to_string(),
                queued: v.field("queued")?.expect_u64()?,
                capacity: v.field("capacity")?.expect_u64()?,
                retry_after_ms: v.field("retry_after_ms")?.expect_u64()?,
                diagnostics: v.field("diagnostics")?.expect_array()?.to_vec(),
            },
            "result" => Reply::Result {
                record: ScenarioResult::from_json(v.field("record")?)?,
            },
            "no-result" => Reply::NoResult {
                id: v.field("id")?.expect_str()?.to_string(),
            },
            "pong" => Reply::Pong {
                nonce: v.field("nonce")?.expect_u64()?,
            },
            "stats" => Reply::Stats(StatsBody::from_json(v.field("stats")?)?),
            "draining" => Reply::Draining,
            "error" => Reply::Error {
                error: v.field("error")?.expect_str()?.to_string(),
            },
            other => return Err(JsonError(format!("unknown reply type '{other}'"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{RunSummary, ScenarioStatus};
    use mpisim::SimConfig;
    use netmodel::presets;
    use workload::{Boundary, CommPattern, Direction};

    fn scenario() -> Scenario {
        Scenario::new(
            "p1",
            SimConfig::baseline(
                presets::loggopsim_like(4),
                CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Periodic),
                3,
            ),
        )
    }

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        for req in [
            Request::Submit(Box::new(scenario())),
            Request::Query { id: "p1".into() },
            Request::Ping { nonce: 7 },
            Request::Stats,
            Request::Drain,
        ] {
            let line = json::to_string(&req);
            assert_eq!(parse_request(&line).expect("round trip"), req);
        }
    }

    #[test]
    fn bad_request_lines_yield_reportable_errors() {
        assert!(parse_request("{oops")
            .expect_err("malformed")
            .contains("malformed JSON"));
        assert!(parse_request("{\"nope\":1}")
            .expect_err("untyped")
            .contains("no \"type\""));
        assert!(parse_request("{\"type\":\"frobnicate\"}")
            .expect_err("unknown")
            .contains("unknown record type 'frobnicate'"));
        assert!(
            parse_request("{\"type\":\"submit\",\"scenario\":{\"id\":3}}")
                .expect_err("bad scenario")
                .contains("bad scenario")
        );
        assert!(parse_request("{\"type\":\"query\"}")
            .expect_err("query without id")
            .contains("no \"id\""));
    }

    #[test]
    fn replies_round_trip_including_the_result_record() {
        let record = ScenarioResult {
            id: "p1".into(),
            status: ScenarioStatus::Ok,
            attempts: 1,
            error: None,
            summary: Some(RunSummary {
                runtime_ns: 10,
                events: 20,
                messages: 30,
                retransmissions: 0,
                dropped: 0,
                corrupted: 0,
                trace_fingerprint: 0xfeed,
            }),
            config_fingerprint: Some(0xbeef),
        };
        let replies = vec![
            Reply::Hello {
                serve_format: SERVE_FORMAT,
            },
            Reply::Accepted {
                id: "p1".into(),
                job: 3,
                queued: 2,
            },
            Reply::Rejected {
                id: "p1".into(),
                error: "no".into(),
                diagnostics: vec![Json::obj(vec![("code", Json::Str("SC028".into()))])],
            },
            Reply::Overloaded {
                id: "p1".into(),
                queued: 8,
                capacity: 8,
                retry_after_ms: 250,
                diagnostics: vec![],
            },
            Reply::Result { record },
            Reply::NoResult { id: "p9".into() },
            Reply::Pong { nonce: 7 },
            Reply::Stats(StatsBody {
                accepted: 1,
                draining: true,
                ..Default::default()
            }),
            Reply::Draining,
            Reply::Error {
                error: "unknown record type 'x'".into(),
            },
        ];
        for reply in replies {
            let line = json::to_string(&reply);
            let back = Reply::from_json(&Json::parse(&line).expect("parses")).expect("decodes");
            assert_eq!(back, reply, "{line}");
        }
    }
}
