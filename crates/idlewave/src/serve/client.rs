//! Client side of the serve protocol: a typed connection and the
//! `wavesim loadgen` driver.
//!
//! [`ServeClient`] wraps one TCP connection — framed reads through
//! [`wire::LineReader`], typed [`Request`]/[`Reply`] records — and is
//! what the drill, the CLI tests, and [`run_loadgen`] all speak through.
//!
//! [`run_loadgen`] generates a *deterministic* request population
//! (fixed ids, fixed seeds), spreads it over several connections,
//! retries load-shed submissions with the server's retry-after hint
//! (jittered, so synchronized clients de-stampede), and writes the
//! collected terminal records sorted by id — which makes two loadgen
//! runs against equivalent servers byte-comparable, the property the
//! smoke scripts and the recovery drill assert.

use std::io::{self, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use simdes::SimDuration;
use tracefmt::json::{self, FromJson, Json, ToJson};
use tracefmt::{fnv1a_64, wire};

use super::protocol::{Reply, Request, StatsBody};
use crate::experiment::WaveExperiment;
use crate::sweep::{Scenario, ScenarioResult};

/// One typed client connection to a serve instance.
pub struct ServeClient {
    reader: wire::LineReader<TcpStream>,
    writer: TcpStream,
    /// The `serve_format` the server greeted with.
    pub serve_format: u64,
}

impl ServeClient {
    /// Connect and consume the `hello` greeting.
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        let mut client = ServeClient {
            reader: wire::LineReader::new(stream, wire::DEFAULT_MAX_LINE_BYTES),
            writer,
            serve_format: 0,
        };
        match client.next_reply()? {
            Reply::Hello { serve_format } => client.serve_format = serve_format,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected a hello greeting, got {other:?}"),
                ))
            }
        }
        Ok(client)
    }

    /// Send one request line.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        wire::write_json_line(&mut self.writer, req)
    }

    /// Send one raw line, bypassing the typed layer — for tests that
    /// need to put malformed bytes on the wire.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Next reply line, blocking. EOF and undecodable replies are
    /// errors — a well-behaved server never sends either mid-session.
    pub fn next_reply(&mut self) -> io::Result<Reply> {
        loop {
            match self.reader.next_line()? {
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Some(Err(frame)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        frame.to_string(),
                    ))
                }
                Some(Ok(line)) => {
                    let v = Json::parse(&line).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {}", e.0))
                    })?;
                    return Reply::from_json(&v).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {}", e.0))
                    });
                }
            }
        }
    }

    /// Round-trip a `ping`; returns the echoed nonce.
    ///
    /// # Panics
    /// Never — non-pong replies become `InvalidData` errors.
    pub fn ping(&mut self, nonce: u64) -> io::Result<u64> {
        self.send(&Request::Ping { nonce })?;
        match self.next_reply()? {
            Reply::Pong { nonce } => Ok(nonce),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Fetch the service counters.
    pub fn stats(&mut self) -> io::Result<StatsBody> {
        self.send(&Request::Stats)?;
        match self.next_reply()? {
            Reply::Stats(body) => Ok(body),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Query the terminal record for `id`: `Some` if the server has one.
    pub fn query(&mut self, id: &str) -> io::Result<Option<ScenarioResult>> {
        self.send(&Request::Query { id: id.to_string() })?;
        match self.next_reply()? {
            Reply::Result { record } => Ok(Some(record)),
            Reply::NoResult { .. } => Ok(None),
            other => Err(unexpected("result/no-result", &other)),
        }
    }

    /// Ask the server to drain (stop accepting, finish in-flight, exit).
    pub fn drain(&mut self) -> io::Result<()> {
        self.send(&Request::Drain)?;
        match self.next_reply()? {
            Reply::Draining => Ok(()),
            other => Err(unexpected("draining", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected a {wanted} reply, got {got:?}"),
    )
}

/// How `wavesim loadgen` drives a server.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Ranks per generated scenario.
    pub ranks: u32,
    /// Steps per generated scenario.
    pub steps: u32,
    /// Where to write the collected records (sorted by id, one JSON
    /// record per line); `None` keeps them in the report only.
    pub out: Option<PathBuf>,
    /// Query mode: instead of submitting, poll `query` for the same
    /// deterministic ids until every record is served — how the smoke
    /// scripts read results back from a restarted server.
    pub query: bool,
    /// Bound on overload retries (and on query polls) per request.
    pub max_retries: u32,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: String::new(),
            requests: 12,
            connections: 3,
            ranks: 8,
            steps: 4,
            out: None,
            query: false,
            max_retries: 600,
        }
    }
}

/// What a loadgen run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub sent: usize,
    /// Terminal records collected.
    pub completed: usize,
    /// Submissions refused by admission control.
    pub rejected: usize,
    /// Load-shed replies absorbed by retrying.
    pub overload_retries: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// The collected terminal records, sorted by id.
    pub results: Vec<ScenarioResult>,
}

impl LoadgenReport {
    /// Completed requests per wall-clock second (0 when instantaneous).
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

impl ToJson for LoadgenReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("type", Json::Str("loadgen".into())),
            ("sent", (self.sent as u64).to_json()),
            ("completed", (self.completed as u64).to_json()),
            ("rejected", (self.rejected as u64).to_json()),
            ("overload_retries", self.overload_retries.to_json()),
            ("elapsed_ms", (self.elapsed.as_millis() as u64).to_json()),
            ("requests_per_sec", Json::Float(self.requests_per_sec())),
        ])
    }
}

/// The deterministic loadgen population: fixed ids (`load-000`…), fixed
/// per-request seeds, pairwise-distinct config fingerprints. Generating
/// it twice — in a submit run and a later query run, or on two sides of
/// a server restart — yields the same requests, which is what makes
/// loadgen output byte-comparable.
pub fn loadgen_scenarios(requests: usize, ranks: u32, steps: u32) -> Vec<Scenario> {
    (0..requests)
        .map(|i| {
            let config = WaveExperiment::flat_chain(ranks.max(2))
                .texec(SimDuration::from_micros(200))
                .steps(steps.max(1))
                .seed(i as u64 + 1)
                .into_config();
            Scenario::new(format!("load-{i:03}"), config)
        })
        .collect()
}

/// Jittered overload backoff: the server's hint scaled by a factor in
/// [0.5, 1.5) derived from the request id and attempt, so clients shed
/// at the same instant do not retry at the same instant either.
fn shed_backoff(retry_after_ms: u64, salt: u64, attempt: u32) -> Duration {
    let bits = simdes::splitmix64(salt ^ (u64::from(attempt) << 32 | 0x9e37_79b9));
    let factor = 0.5 + (bits >> 11) as f64 / (1u64 << 53) as f64;
    Duration::from_millis(retry_after_ms.max(1)).mul_f64(factor)
}

/// Drive one connection's share of the population to terminal records.
fn run_connection(
    addr: &str,
    scenarios: Vec<Scenario>,
    opts: &LoadgenOptions,
) -> io::Result<ConnTally> {
    let mut client = ServeClient::connect(addr)?;
    let mut tally = ConnTally::default();
    if opts.query {
        for s in scenarios {
            tally.sent += 1;
            let mut polls = 0u32;
            loop {
                match client.query(&s.id)? {
                    Some(record) => {
                        tally.results.push(record);
                        break;
                    }
                    None if polls < opts.max_retries => {
                        polls += 1;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("no terminal record for '{}' after {polls} polls", s.id),
                        ))
                    }
                }
            }
        }
        return Ok(tally);
    }
    // Submit the whole share up front, then absorb the interleaved reply
    // stream; shed submissions go back out after a jittered backoff.
    let mut outstanding = 0usize;
    for s in &scenarios {
        tally.sent += 1;
        client.send(&Request::Submit(Box::new(s.clone())))?;
        outstanding += 1;
    }
    let mut retries: std::collections::BTreeMap<String, u32> = std::collections::BTreeMap::new();
    while outstanding > 0 {
        match client.next_reply()? {
            Reply::Accepted { .. } => {}
            Reply::Result { record } => {
                tally.results.push(record);
                outstanding -= 1;
            }
            Reply::Rejected { id, error, .. } => {
                tally.rejected += 1;
                tally.errors.push(format!("'{id}' rejected: {error}"));
                outstanding -= 1;
            }
            Reply::Overloaded {
                id, retry_after_ms, ..
            } => {
                let attempt = retries.entry(id.clone()).or_insert(0);
                *attempt += 1;
                if *attempt > opts.max_retries {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("'{id}' still shed after {} retries", opts.max_retries),
                    ));
                }
                tally.overload_retries += 1;
                std::thread::sleep(shed_backoff(
                    retry_after_ms,
                    fnv1a_64(id.as_bytes()),
                    *attempt,
                ));
                let again = scenarios
                    .iter()
                    .find(|s| s.id == id)
                    .expect("shed reply names a scenario this connection sent");
                client.send(&Request::Submit(Box::new(again.clone())))?;
            }
            Reply::Draining => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "server is draining; submission not accepted",
                ))
            }
            Reply::Error { error } => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, error))
            }
            other @ (Reply::Hello { .. }
            | Reply::NoResult { .. }
            | Reply::Pong { .. }
            | Reply::Stats(_)) => return Err(unexpected("submission reply", &other)),
        }
    }
    Ok(tally)
}

#[derive(Default)]
struct ConnTally {
    sent: usize,
    rejected: usize,
    overload_retries: u64,
    results: Vec<ScenarioResult>,
    errors: Vec<String>,
}

/// Run the loadgen population against `opts.addr` and collect every
/// terminal record (submitting, or querying with [`LoadgenOptions::query`]).
///
/// # Panics
/// Never — connection failures surface as `Err`.
pub fn run_loadgen(opts: &LoadgenOptions) -> io::Result<LoadgenReport> {
    let scenarios = loadgen_scenarios(opts.requests, opts.ranks, opts.steps);
    let connections = opts.connections.clamp(1, scenarios.len().max(1));
    // simlint: allow(wall-clock) — loadgen measures real service latency.
    let started = std::time::Instant::now();
    let mut shares: Vec<Vec<Scenario>> = vec![Vec::new(); connections];
    for (i, s) in scenarios.into_iter().enumerate() {
        shares[i % connections].push(s);
    }
    let tallies: Vec<io::Result<ConnTally>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shares
            .into_iter()
            .map(|share| scope.spawn(|| run_connection(&opts.addr, share, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(io::Error::other("loadgen connection thread panicked")),
            })
            .collect()
    });
    let mut report = LoadgenReport {
        sent: 0,
        completed: 0,
        rejected: 0,
        overload_retries: 0,
        elapsed: Duration::ZERO,
        results: Vec::new(),
    };
    for tally in tallies {
        let tally = tally?;
        report.sent += tally.sent;
        report.rejected += tally.rejected;
        report.overload_retries += tally.overload_retries;
        report.results.extend(tally.results);
    }
    report.elapsed = started.elapsed();
    report.completed = report.results.len();
    report.results.sort_by(|a, b| a.id.cmp(&b.id));
    if let Some(out) = &opts.out {
        let mut body = String::new();
        for r in &report.results {
            body.push_str(&json::to_string(r));
            body.push('\n');
        }
        std::fs::write(out, body)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::config_fingerprint;

    #[test]
    fn the_loadgen_population_is_deterministic_and_distinct() {
        let a = loadgen_scenarios(12, 8, 4);
        let b = loadgen_scenarios(12, 8, 4);
        assert_eq!(a, b, "same parameters must mean the same requests");
        let mut fps: Vec<u64> = a.iter().map(|s| config_fingerprint(&s.config)).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 12, "per-request seeds must differ");
        assert_eq!(a[0].id, "load-000");
        assert_eq!(a[11].id, "load-011");
    }

    #[test]
    fn shed_backoff_is_deterministic_and_bounded_by_the_hint() {
        for attempt in 1..=5u32 {
            let d = shed_backoff(250, 7, attempt);
            assert_eq!(d, shed_backoff(250, 7, attempt));
            assert!(d >= Duration::from_millis(125), "{d:?}");
            assert!(d < Duration::from_millis(375), "{d:?}");
        }
        assert_ne!(shed_backoff(250, 7, 1), shed_backoff(250, 8, 1));
    }
}
