//! `wavesim serve` — a hardened, crash-recoverable scenario service.
//!
//! A long-running TCP front door over the sweep fabric's supervision
//! machinery: clients submit [`crate::sweep::Scenario`]s as
//! line-delimited JSON ([`protocol`]) and receive streamed replies plus
//! the same terminal [`crate::sweep::ScenarioResult`] records a sweep
//! would persist — byte-identical, cache-served when warm. The headline
//! is the robustness envelope, not the plumbing:
//!
//! * **Admission control** ([`admission`]): `simcheck` + the static
//!   budget pass reject invalid or over-budget submissions with SC
//!   diagnostics (`SC028`) before they cost a worker anything.
//! * **Backpressure, not buffering**: a bounded job queue sheds load
//!   with an explicit `overloaded` reply and retry-after hint (`SC029`)
//!   instead of growing memory.
//! * **Per-request deadlines**: each job runs under the sweep
//!   supervisor — deterministic sim-time watchdog, wall-clock backstop,
//!   capped-and-jittered retries for transients.
//! * **Per-connection isolation**: a panicking job is a `panic` record,
//!   not a dead server; a client that disconnects mid-stream has its
//!   queued jobs cancelled, and the next connection is served as if
//!   nothing happened.
//! * **Graceful drain**: SIGTERM (or a `drain` request) stops the
//!   accept loop, finishes and flushes everything already admitted, and
//!   exits 0.
//! * **Crash-safe journal** ([`journal`]): admitted jobs are durable
//!   before they are acknowledged, so a SIGKILLed server re-runs
//!   pending jobs on restart — bit-identically, by determinism — and
//!   `query` serves every completed record across restarts.
//!
//! The [`drill`] module self-tests the envelope the way the sweep drill
//! does: overload, malformed input, disconnects, drain, SIGKILL +
//! recovery, each phase asserting byte-identity against an undisturbed
//! control run. See `docs/SERVE.md`.

mod admission;
pub mod client;
pub mod drill;
mod journal;
pub mod protocol;
pub mod signals;

use std::io;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use mpisim::{config_fingerprint, PoolBudget};
use tracefmt::json;
use tracefmt::wire;

use crate::sweep::{self, Chaos, Scenario, ScenarioResult, ScenarioStatus, SweepOptions};
use admission::{Admission, Job, JobQueue};
use journal::{Journal, JournalRecord};
use protocol::{Reply, Request, StatsBody, SERVE_FORMAT};

/// Service policy for one `run_serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks a free one — the bound
    /// address is reported through `on_ready`).
    pub addr: String,
    /// Service state directory: holds `journal.jsonl`.
    pub dir: PathBuf,
    /// Worker threads executing jobs.
    pub threads: usize,
    /// Job-queue capacity; submissions beyond it are load-shed.
    pub queue_cap: usize,
    /// The retry-after hint sent with `overloaded` replies.
    pub retry_after: Duration,
    /// Per-attempt wall-clock deadline (the sweep supervisor's
    /// `wall_timeout` backstop behind the sim-time watchdog).
    pub deadline: Duration,
    /// Extra attempts after a transient failure or deadline miss.
    pub retries: u32,
    /// Base of the capped, jittered exponential retry backoff.
    pub retry_backoff: Duration,
    /// Sim-time watchdog budget factor (see
    /// [`SweepOptions::watchdog_factor`]).
    pub watchdog_factor: f64,
    /// Admission ceiling on *predicted* events per submission (`SC018`
    /// → `rejected`); `None` disables the gate.
    pub admission_budget: Option<u64>,
    /// Verified result-cache directory shared with `wavesim sweep`;
    /// warm entries serve repeat submissions without simulating.
    pub cache_dir: Option<PathBuf>,
    /// Fsync journal lines (not just flush) — survives OS-level crashes.
    pub fsync: bool,
    /// Per-request line-length bound; longer lines get a structured
    /// `error` reply and are discarded.
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            dir: PathBuf::from("wavesim-serve"),
            threads: 4,
            queue_cap: 64,
            retry_after: Duration::from_millis(250),
            deadline: Duration::from_secs(30),
            retries: 2,
            retry_backoff: Duration::from_millis(10),
            watchdog_factor: 64.0,
            admission_budget: None,
            cache_dir: None,
            fsync: false,
            max_line_bytes: wire::DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// What a drained service did over its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The address the listener was actually bound to.
    pub addr: String,
    /// Final counter snapshot.
    pub stats: StatsBody,
    /// Journal-replay and runtime warnings, one per incident.
    pub warnings: Vec<String>,
}

/// Process-wide counters, mirrored into `stats` replies.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    recovered: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    inflight: AtomicU64,
}

/// Everything the accept loop, connections, and workers share.
struct Shared {
    sweep_opts: SweepOptions,
    queue: JobQueue,
    journal: Mutex<Journal>,
    /// Latest terminal record per scenario id (journal replay + this
    /// lifetime), the `query` index.
    results: Mutex<std::collections::BTreeMap<String, ScenarioResult>>,
    counters: Counters,
    draining: AtomicBool,
    next_job: AtomicU64,
    admission_budget: Option<u64>,
    retry_after: Duration,
    cache: Option<sweep::cache::ResultCache>,
    warnings: Mutex<Vec<String>>,
}

impl Shared {
    fn stats(&self) -> StatsBody {
        StatsBody {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            recovered: self.counters.recovered.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            queued: self.queue.len() as u64,
            inflight: self.counters.inflight.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::SeqCst),
        }
    }

    fn warn(&self, w: String) {
        self.warnings.lock().expect("warnings poisoned").push(w);
    }
}

fn zero_budget() -> PoolBudget {
    PoolBudget {
        ranks: 0,
        steps: 0,
        peak_queue: 0,
        requests_per_rank: 0,
        trace_records: 0,
    }
}

/// Run the service until `shutdown` is set (the CLI wires SIGTERM and
/// SIGINT to it) or a client sends `drain`, then drain gracefully:
/// stop accepting, finish and journal everything already admitted,
/// flush, and return the lifetime report.
///
/// `on_ready` fires once with the bound address (after journal recovery,
/// before the first accept) — the CLI prints it as a `ready` record,
/// tests use it to learn the ephemeral port.
///
/// # Panics
/// Panics if `opts.threads` is zero.
pub fn run_serve(
    opts: &ServeOptions,
    shutdown: &AtomicBool,
    on_ready: impl FnOnce(&str),
) -> io::Result<ServeReport> {
    assert!(opts.threads >= 1, "need at least one worker thread");
    let (journal, recovery) = Journal::open(&opts.dir, opts.fsync)?;

    let mut warnings = recovery.warnings;
    let cache = match &opts.cache_dir {
        Some(dir) => match sweep::cache::ResultCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                warnings.push(simcheck::cache_dir_unwritable(dir, &e).to_string());
                None
            }
        },
        None => None,
    };

    // Every job runs under the sweep supervisor with the service's
    // deadline policy; `threads`/`shards` are fabric knobs the
    // supervisor never reads.
    let sweep_opts = SweepOptions {
        retries: opts.retries,
        retry_backoff: opts.retry_backoff,
        wall_timeout: opts.deadline,
        watchdog_factor: opts.watchdog_factor,
        ..SweepOptions::default()
    };

    let shared = Arc::new(Shared {
        sweep_opts,
        queue: JobQueue::new(opts.queue_cap),
        journal: Mutex::new(journal),
        results: Mutex::new(std::collections::BTreeMap::new()),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        next_job: AtomicU64::new(recovery.next_job),
        admission_budget: opts.admission_budget,
        retry_after: opts.retry_after,
        cache,
        warnings: Mutex::new(warnings),
    });

    // Seed the query index with completed records (later lines win),
    // then re-queue the restart obligations. Their results are fetched
    // via `query` — the connections that submitted them died with the
    // previous process.
    {
        let mut results = shared.results.lock().expect("results poisoned");
        for r in recovery.completed {
            results.insert(r.id.clone(), r);
        }
    }
    shared
        .counters
        .recovered
        .store(recovery.pending.len() as u64, Ordering::Relaxed);
    for (jobno, scenario) in recovery.pending {
        let report = simcheck::budget::budget(&scenario.config);
        shared.queue.push_recovered(Job {
            job: jobno,
            fingerprint: config_fingerprint(&scenario.config),
            config_json: json::to_string(&scenario.config),
            pool: report.pool,
            cancel: Arc::new(AtomicBool::new(false)),
            reply: None,
            scenario,
        });
    }

    let mut workers = Vec::with_capacity(opts.threads);
    for _ in 0..opts.threads {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker(&shared)));
    }

    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?.to_string();
    on_ready(&addr);

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let max_line = opts.max_line_bytes;
                conns.push(std::thread::spawn(move || {
                    connection(&shared, stream, max_line);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conns.retain(|h| !h.is_finished());
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }

    // Graceful drain: no new connections (loop exited), no new
    // admissions (flag + closed queue), everything already admitted
    // runs to a journaled terminal record before the workers exit.
    shared.draining.store(true, Ordering::SeqCst);
    shared.queue.close();
    for w in workers {
        let _ = w.join();
    }
    for c in conns {
        let _ = c.join();
    }

    let stats = shared.stats();
    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|arc| panic!("{} live references after drain", Arc::strong_count(&arc)));
    let mut warnings = shared.warnings.into_inner().expect("warnings poisoned");
    warnings.sort();
    Ok(ServeReport {
        addr,
        stats,
        warnings,
    })
}

/// One worker: drain the queue to terminal, journaled records.
fn worker(shared: &Shared) {
    let pool = sweep::pool_slot(zero_budget());
    while let Some(job) = shared.queue.pop() {
        shared.counters.inflight.fetch_add(1, Ordering::SeqCst);
        let result = if job.cancel.load(Ordering::SeqCst) {
            ScenarioResult {
                id: job.scenario.id.clone(),
                status: ScenarioStatus::Cancelled,
                attempts: 0,
                error: Some(
                    "cancelled before running: the submitting client disconnected".to_string(),
                ),
                summary: None,
                config_fingerprint: Some(job.fingerprint),
            }
        } else {
            run_job(shared, &job, &pool)
        };
        // The journal write is best-effort *here* (the result is already
        // earned and the client still gets it); a failure is surfaced as
        // a warning and the job simply re-runs after a restart.
        if let Err(e) =
            shared
                .journal
                .lock()
                .expect("journal poisoned")
                .append(&JournalRecord::Done {
                    job: job.job,
                    result: result.clone(),
                })
        {
            shared.warn(format!(
                "job {} ('{}'): journal append failed ({e}); the job will re-run \
                 if the service restarts",
                job.job, result.id
            ));
        }
        shared
            .results
            .lock()
            .expect("results poisoned")
            .insert(result.id.clone(), result.clone());
        let counter = if result.status == ScenarioStatus::Cancelled {
            &shared.counters.cancelled
        } else {
            &shared.counters.completed
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(tx) = &job.reply {
            // The client may be long gone; that is its problem, not ours.
            let _ = tx.send(Reply::Result { record: result });
        }
        shared.counters.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Execute one admitted job: cache-serve when warm, else supervise a
/// real run under the service deadline policy (and store clean
/// completions back).
fn run_job(shared: &Shared, job: &Job, pool: &sweep::PoolSlot) -> ScenarioResult {
    let cacheable = shared.cache.is_some()
        && job.scenario.chaos == Chaos::None
        && job.scenario.max_sim_time.is_none();
    if cacheable {
        let cache = shared.cache.as_ref().expect("cacheable implies a cache");
        match cache.lookup(&job.config_json, job.fingerprint) {
            sweep::cache::Lookup::Hit { attempts, summary } => {
                shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return ScenarioResult {
                    id: job.scenario.id.clone(),
                    status: ScenarioStatus::Ok,
                    attempts,
                    error: None,
                    summary: Some(summary),
                    config_fingerprint: Some(job.fingerprint),
                };
            }
            sweep::cache::Lookup::Quarantined(reason) => {
                shared.warn(format!(
                    "job {} ('{}'): cache entry {:#018x} quarantined ({reason}); \
                     re-simulating",
                    job.job, job.scenario.id, job.fingerprint
                ));
            }
            sweep::cache::Lookup::Miss => {
                shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    sweep::ensure_pool_budget(pool, job.pool);
    let result = sweep::supervise(&job.scenario, &shared.sweep_opts, None, pool);
    if cacheable && result.status == ScenarioStatus::Ok {
        if let (Some(cache), Some(summary)) = (shared.cache.as_ref(), result.summary.as_ref()) {
            let _ = cache.store(&job.config_json, job.fingerprint, result.attempts, summary);
        }
    }
    result
}

/// One client connection: a reader loop (this thread) and a writer
/// thread serializing all replies — the reader's synchronous answers and
/// every in-flight job's eventual `result` — onto the socket.
fn connection(shared: &Arc<Shared>, stream: std::net::TcpStream, max_line: usize) {
    // The reader polls so it can notice a drain without client traffic.
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer_cancel = Arc::clone(&cancel);
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        for reply in rx {
            if wire::write_json_line(&mut out, &reply).is_err() {
                // The client stopped reading: its queued jobs are
                // orphans from here on.
                writer_cancel.store(true, Ordering::SeqCst);
                break;
            }
        }
    });
    let _ = tx.send(Reply::Hello {
        serve_format: SERVE_FORMAT,
    });

    let mut reader = wire::LineReader::new(stream, max_line);
    let mut client_gone = false;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            // Drain is not disconnect: pending jobs keep their reply
            // senders and finish; only the reader stops.
            break;
        }
        match reader.next_line() {
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) | Ok(None) => {
                client_gone = true;
                break;
            }
            Ok(Some(Err(frame_err))) => {
                let _ = tx.send(Reply::Error {
                    error: frame_err.to_string(),
                });
            }
            Ok(Some(Ok(line))) => match protocol::parse_request(&line) {
                Err(e) => {
                    let _ = tx.send(Reply::Error { error: e });
                }
                Ok(req) => handle_request(shared, req, &tx, &cancel),
            },
        }
    }
    if client_gone {
        cancel.store(true, Ordering::SeqCst);
    }
    drop(tx);
    let _ = writer.join();
}

/// Answer one parsed request on behalf of `connection`.
fn handle_request(
    shared: &Arc<Shared>,
    req: Request,
    tx: &mpsc::Sender<Reply>,
    cancel: &Arc<AtomicBool>,
) {
    match req {
        Request::Ping { nonce } => {
            let _ = tx.send(Reply::Pong { nonce });
        }
        Request::Stats => {
            let _ = tx.send(Reply::Stats(shared.stats()));
        }
        Request::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            let _ = tx.send(Reply::Draining);
        }
        Request::Query { id } => {
            let found = shared
                .results
                .lock()
                .expect("results poisoned")
                .get(&id)
                .cloned();
            let _ = tx.send(match found {
                Some(record) => Reply::Result { record },
                None => Reply::NoResult { id },
            });
        }
        Request::Submit(scenario) => submit(shared, *scenario, tx, cancel),
    }
}

/// The submit path: admission → capacity reservation → durable journal
/// line → queue, with every refusal an explicit structured reply.
fn submit(
    shared: &Arc<Shared>,
    scenario: Scenario,
    tx: &mpsc::Sender<Reply>,
    cancel: &Arc<AtomicBool>,
) {
    if shared.draining.load(Ordering::SeqCst) {
        let _ = tx.send(Reply::Draining);
        return;
    }
    let report = match admission::admit(&scenario, shared.admission_budget) {
        Admission::Reject { error, diagnostics } => {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Reply::Rejected {
                id: scenario.id,
                error,
                diagnostics,
            });
            return;
        }
        Admission::Accept(report) => report,
    };
    let depth = match shared.queue.reserve() {
        Err(depth) => {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            let retry_after_ms = shared.retry_after.as_millis() as u64;
            let _ = tx.send(Reply::Overloaded {
                id: scenario.id,
                queued: depth as u64,
                capacity: shared.queue.capacity() as u64,
                retry_after_ms,
                diagnostics: vec![tracefmt::json::ToJson::to_json(
                    &simcheck::serve_overloaded(depth, shared.queue.capacity(), shared.retry_after),
                )],
            });
            return;
        }
        Ok(depth) => depth,
    };
    let jobno = shared.next_job.fetch_add(1, Ordering::SeqCst);
    // Journal *before* acknowledging: an accepted job survives SIGKILL.
    let journaled = shared
        .journal
        .lock()
        .expect("journal poisoned")
        .append(&JournalRecord::Job {
            job: jobno,
            scenario: scenario.clone(),
        });
    if let Err(e) = journaled {
        shared.queue.unreserve();
        shared.warn(format!(
            "job {jobno} ('{}'): journal append failed ({e}); submission refused",
            scenario.id
        ));
        let _ = tx.send(Reply::Error {
            error: format!("journal write failed: {e}"),
        });
        return;
    }
    // Acknowledge before queueing: the job is already durable, and this
    // keeps the per-job reply order deterministic (`accepted` always
    // precedes that job's `result` on the serialized writer).
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    let _ = tx.send(Reply::Accepted {
        id: scenario.id.clone(),
        job: jobno,
        queued: depth as u64,
    });
    shared.queue.push_reserved(Job {
        job: jobno,
        fingerprint: config_fingerprint(&scenario.config),
        config_json: json::to_string(&scenario.config),
        pool: report.pool,
        cancel: Arc::clone(cancel),
        reply: Some(tx.clone()),
        scenario,
    });
}
