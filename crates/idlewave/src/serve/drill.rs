//! The serve self-chaos drill: the service attacking itself.
//!
//! `wavesim serve --drill` establishes an undisturbed control run of a
//! fixed six-submission suite, then re-runs the suite under every
//! failure mode the robustness envelope claims to survive, asserting
//! after each phase that every completed submission's result record is
//! **byte-identical** to the control's:
//!
//! 1. `control` — a healthy server runs the suite once; its record
//!    bytes are the yardstick for every later phase.
//! 2. `admission` — an invalid config and an over-budget config are
//!    refused with SC diagnostics (`SC004`/`SC018`, summarised by
//!    `SC028`) without costing a worker; a valid submission on the same
//!    connection still completes identically.
//! 3. `overload` — one worker, a one-slot queue, and a three-connection
//!    burst: submissions are shed with `overloaded` + retry-after
//!    (`SC029`), the clients' jittered retries absorb the shedding, and
//!    the completed records still match the control.
//! 4. `malformed` — garbage JSON, an oversized line, and an unknown
//!    record type each get a structured `error` reply; the connection
//!    and server keep serving identically.
//! 5. `isolation` — a scenario that panics inside the worker becomes a
//!    `panic` record (not a dead server), and a client that disconnects
//!    mid-stream has its queued jobs cancelled while everything else
//!    keeps running; resubmission completes identically.
//! 6. `drain` — a `drain` request (the request-shaped twin of SIGTERM)
//!    stops admissions, every in-flight job finishes and flushes, and
//!    the server exits cleanly with identical records.
//! 7. `sigkill-recovery` — a real `wavesim serve` child is SIGKILLed
//!    mid-suite; a restart over the same directory replays the journal,
//!    re-runs the pending jobs, and serves all six records identically
//!    over `query`. Skipped (as passed) when no executable is supplied.
//! 8. `cache-warm` — with a shared result cache, a repeat of the whole
//!    suite is served from verified cache entries: six hits, zero new
//!    misses, zero re-simulations, identical bytes.
//!
//! The drill reuses the sweep drill's report types so the CLI prints
//! both the same way; `scripts/verify.sh` and CI run it through the
//! binary with the SIGKILL phase live.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use tracefmt::json::{self, Json};

use super::client::{loadgen_scenarios, ServeClient};
use super::protocol::{Reply, Request};
use super::{run_serve, ServeOptions, ServeReport};
use crate::sweep::drill::{DrillReport, PhaseOutcome};
use crate::sweep::{Chaos, Scenario, ScenarioResult, ScenarioStatus};

/// How to run the serve drill.
#[derive(Debug, Clone)]
pub struct ServeDrillOptions {
    /// Scratch directory for journals and the cache (created if missing;
    /// reused state is deleted first).
    pub dir: PathBuf,
    /// The `wavesim` executable the SIGKILL phase spawns and kills. With
    /// `None` that phase is skipped (and says so).
    pub exe: Option<PathBuf>,
}

impl ServeDrillOptions {
    /// Drill in `dir` with no child executable.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeDrillOptions {
            dir: dir.into(),
            exe: None,
        }
    }
}

/// The fixed six-submission drill suite — the deterministic loadgen
/// population, so the child-process phase can regenerate it bit-for-bit.
fn drill_suite() -> Vec<Scenario> {
    loadgen_scenarios(6, 6, 4)
}

/// A deliberate blocker: hangs inside the single worker for a known
/// interval, so the isolation phase can orphan the queue behind it
/// without racing a real simulation's runtime.
fn blocker_scenario() -> Scenario {
    let mut s = drill_suite().remove(0);
    s.id = "blocker".to_string();
    s.chaos = Chaos::Hang(Duration::from_millis(1500));
    s
}

/// An in-process server plus the handles to stop it.
struct TestServer {
    addr: String,
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<io::Result<ServeReport>>,
}

impl TestServer {
    fn start(opts: ServeOptions) -> io::Result<TestServer> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let (tx, rx) = mpsc::channel();
        let join = std::thread::spawn(move || {
            run_serve(&opts, &flag, |addr| {
                let _ = tx.send(addr.to_string());
            })
        });
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(addr) => Ok(TestServer {
                addr,
                shutdown,
                join,
            }),
            Err(_) => {
                shutdown.store(true, Ordering::SeqCst);
                match join.join() {
                    Ok(Err(e)) => Err(e),
                    _ => Err(io::Error::other("server never reported ready")),
                }
            }
        }
    }

    fn stop(self) -> io::Result<ServeReport> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Submit `scenarios` over one connection and collect their terminal
/// records (sorted by id), failing on any non-accept reply.
fn submit_all(addr: &str, scenarios: &[Scenario]) -> io::Result<Vec<ScenarioResult>> {
    let mut client = ServeClient::connect(addr)?;
    for s in scenarios {
        client.send(&Request::Submit(Box::new(s.clone())))?;
    }
    let mut results = Vec::new();
    while results.len() < scenarios.len() {
        match client.next_reply()? {
            Reply::Accepted { .. } => {}
            Reply::Result { record } => results.push(record),
            other => {
                return Err(io::Error::other(format!(
                    "unexpected reply during a clean submit: {other:?}"
                )))
            }
        }
    }
    results.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(results)
}

/// Record bytes keyed by id — the unit of the byte-identity assertions.
fn record_bytes(results: &[ScenarioResult]) -> BTreeMap<String, String> {
    results
        .iter()
        .map(|r| (r.id.clone(), json::to_string(r)))
        .collect()
}

fn verdict(identical: bool) -> &'static str {
    if identical {
        "records bit-identical to the control"
    } else {
        "records DIVERGED from the control"
    }
}

/// Poll `probe` (about every 10 ms, bounded) until it returns true.
fn wait_until(tries: usize, mut probe: impl FnMut() -> bool) -> bool {
    for _ in 0..tries {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Run the full serve drill. `Err` is reserved for scratch-directory and
/// harness I/O trouble; failure modes the service fails to absorb show
/// up as failed phases in the report, not errors.
pub fn run_drill(opts: &ServeDrillOptions) -> io::Result<DrillReport> {
    let _ = std::fs::remove_dir_all(&opts.dir);
    std::fs::create_dir_all(&opts.dir)?;
    let suite = drill_suite();
    let base = ServeOptions {
        dir: opts.dir.join("control"),
        threads: 2,
        queue_cap: 16,
        fsync: true,
        ..ServeOptions::default()
    };
    let mut phases = Vec::new();

    // Phase 1: the undisturbed control run everything is measured against.
    let server = TestServer::start(base.clone())?;
    let results = submit_all(&server.addr, &suite)?;
    server.stop()?;
    let control = record_bytes(&results);
    let all_ok = results.iter().all(|r| r.status == ScenarioStatus::Ok);
    if !(all_ok && control.len() == suite.len()) {
        phases.push(PhaseOutcome {
            name: "control",
            passed: false,
            detail: format!(
                "the undisturbed control run produced {} clean record(s) of {}; \
                 nothing to compare against",
                results
                    .iter()
                    .filter(|r| r.status == ScenarioStatus::Ok)
                    .count(),
                suite.len()
            ),
        });
        return Ok(DrillReport { phases });
    }
    phases.push(PhaseOutcome {
        name: "control",
        passed: true,
        detail: format!(
            "{} submissions completed clean; control records established",
            control.len()
        ),
    });

    phases.push(admission_phase(opts, &suite, &control)?);
    phases.push(overload_phase(opts, &control)?);
    phases.push(malformed_phase(opts, &suite, &control)?);
    phases.push(isolation_phase(opts, &suite, &control)?);
    phases.push(drain_phase(opts, &suite, &control)?);
    phases.push(match &opts.exe {
        Some(exe) => sigkill_phase(opts, exe, &suite, &control)?,
        None => PhaseOutcome {
            name: "sigkill-recovery",
            passed: true,
            detail: "skipped: no wavesim executable supplied".to_string(),
        },
    });
    phases.push(cache_warm_phase(opts, &suite, &control)?);

    Ok(DrillReport { phases })
}

/// Phase 2: admission control refuses bad and over-budget configs with
/// SC diagnostics, and keeps serving good ones.
fn admission_phase(
    opts: &ServeDrillOptions,
    suite: &[Scenario],
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("admission"),
        threads: 1,
        // A budget every drill scenario exceeds, so the gate is visible.
        admission_budget: Some(1),
        fsync: true,
        ..ServeOptions::default()
    })?;
    let mut client = ServeClient::connect(&server.addr)?;

    // An analyzably-invalid config: zero-byte messages.
    let mut invalid = suite[0].clone();
    invalid.id = "invalid".to_string();
    invalid.config.msg_bytes = 0;
    client.send(&Request::Submit(Box::new(invalid)))?;
    let invalid_ok = match client.next_reply()? {
        Reply::Rejected { diagnostics, .. } => {
            let codes: Vec<&str> = diagnostics
                .iter()
                .filter_map(|d| d.get("code").and_then(Json::as_str))
                .collect();
            codes.contains(&"SC004") && codes.last() == Some(&"SC028")
        }
        _ => false,
    };

    // A clean config over the service's admission budget.
    client.send(&Request::Submit(Box::new(suite[1].clone())))?;
    let budget_ok = match client.next_reply()? {
        Reply::Rejected { diagnostics, .. } => diagnostics
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("SC018")),
        _ => false,
    };
    drop(client);
    server.stop()?;

    // A budget-free server still completes the same submission identically.
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("admission-pass"),
        threads: 1,
        fsync: true,
        ..ServeOptions::default()
    })?;
    let results = submit_all(&server.addr, &suite[..1])?;
    server.stop()?;
    let identical = record_bytes(&results)
        .iter()
        .all(|(id, bytes)| control.get(id) == Some(bytes));
    Ok(PhaseOutcome {
        name: "admission",
        passed: invalid_ok && budget_ok && identical,
        detail: format!(
            "invalid config {} (SC004+SC028), over-budget config {} (SC018), \
             clean resubmission {}",
            refused(invalid_ok),
            refused(budget_ok),
            verdict(identical)
        ),
    })
}

fn refused(ok: bool) -> &'static str {
    if ok {
        "refused with diagnostics"
    } else {
        "NOT refused as expected"
    }
}

/// Phase 3: a one-worker, one-slot server under a three-connection burst
/// sheds load explicitly and still converges to the control records.
fn overload_phase(
    opts: &ServeDrillOptions,
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("overload"),
        threads: 1,
        queue_cap: 1,
        retry_after: Duration::from_millis(25),
        fsync: true,
        ..ServeOptions::default()
    })?;
    let report = super::client::run_loadgen(&super::client::LoadgenOptions {
        addr: server.addr.clone(),
        requests: 6,
        connections: 3,
        ranks: 6,
        steps: 4,
        ..super::client::LoadgenOptions::default()
    })?;
    let server_report = server.stop()?;
    let identical = record_bytes(&report.results)
        .iter()
        .all(|(id, bytes)| control.get(id) == Some(bytes))
        && report.results.len() == control.len();
    let shed = server_report.stats.shed;
    Ok(PhaseOutcome {
        name: "overload",
        passed: identical && shed > 0 && report.overload_retries == shed,
        detail: format!(
            "1 worker / 1 queue slot under a 3-connection burst: {} submissions \
             shed with retry-after, {} client retries absorbed them, {}",
            shed,
            report.overload_retries,
            verdict(identical)
        ),
    })
}

/// Phase 4: protocol garbage gets structured `error` replies and the
/// connection keeps serving.
fn malformed_phase(
    opts: &ServeDrillOptions,
    suite: &[Scenario],
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("malformed"),
        threads: 1,
        max_line_bytes: 4096,
        fsync: true,
        ..ServeOptions::default()
    })?;
    let mut client = ServeClient::connect(&server.addr)?;
    let mut errors = Vec::new();
    for bad in [
        "{oops".to_string(),
        format!("{{\"type\":\"submit\",\"pad\":\"{}\"}}", "x".repeat(8192)),
        "{\"type\":\"frobnicate\"}".to_string(),
    ] {
        client.send_raw(&bad)?;
        match client.next_reply()? {
            Reply::Error { error } => errors.push(error),
            other => {
                return Err(io::Error::other(format!(
                    "expected an error reply to garbage, got {other:?}"
                )))
            }
        }
    }
    let errors_ok = errors.len() == 3
        && errors[0].contains("malformed JSON")
        && errors[1].contains("line exceeds")
        && errors[2].contains("unknown record type");
    // The same connection still serves a clean submission.
    client.send(&Request::Submit(Box::new(suite[0].clone())))?;
    let mut result = None;
    while result.is_none() {
        match client.next_reply()? {
            Reply::Accepted { .. } => {}
            Reply::Result { record } => result = Some(record),
            other => {
                return Err(io::Error::other(format!(
                    "unexpected reply after garbage: {other:?}"
                )))
            }
        }
    }
    drop(client);
    server.stop()?;
    let record = result.expect("loop exits with a record");
    let identical = control.get(&record.id) == Some(&json::to_string(&record));
    Ok(PhaseOutcome {
        name: "malformed",
        passed: errors_ok && identical,
        detail: format!(
            "garbage, oversized, and unknown lines {} structured error replies; \
             the same connection then completed a submission, {}",
            if errors_ok {
                "all drew"
            } else {
                "did NOT all draw"
            },
            verdict(identical)
        ),
    })
}

/// Phase 5: a panicking job is a record, not a dead server; a mid-stream
/// disconnect cancels the orphaned queue and nothing else.
fn isolation_phase(
    opts: &ServeDrillOptions,
    suite: &[Scenario],
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("isolation"),
        threads: 1,
        queue_cap: 16,
        fsync: true,
        ..ServeOptions::default()
    })?;

    // A worker panic must come back as a `panic` record.
    let mut panicker = suite[0].clone();
    panicker.id = "panicker".to_string();
    panicker.chaos = Chaos::Panic;
    let mut client = ServeClient::connect(&server.addr)?;
    client.send(&Request::Submit(Box::new(panicker)))?;
    let panic_ok = loop {
        match client.next_reply()? {
            Reply::Accepted { .. } => {}
            Reply::Result { record } => break record.status == ScenarioStatus::Panicked,
            other => {
                return Err(io::Error::other(format!(
                    "unexpected reply to the panicking job: {other:?}"
                )))
            }
        }
    };

    // Block the single worker with a hanging job, queue the suite behind
    // it, then vanish: the queued suite is orphaned and cancelled.
    let mut doomed = ServeClient::connect(&server.addr)?;
    doomed.send(&Request::Submit(Box::new(blocker_scenario())))?;
    match doomed.next_reply()? {
        Reply::Accepted { .. } => {}
        other => return Err(io::Error::other(format!("blocker not accepted: {other:?}"))),
    }
    let inflight = wait_until(600, || {
        client
            .stats()
            .map(|s| s.inflight == 1 && s.queued == 0)
            .unwrap_or(false)
    });
    if !inflight {
        return Err(io::Error::other("the blocker never reached a worker"));
    }
    for s in suite {
        doomed.send(&Request::Submit(Box::new(s.clone())))?;
        match doomed.next_reply()? {
            Reply::Accepted { .. } => {}
            other => return Err(io::Error::other(format!("suite not accepted: {other:?}"))),
        }
    }
    drop(doomed); // mid-stream disconnect: six queued jobs orphaned
    let drained = wait_until(6000, || {
        client
            .stats()
            .map(|s| s.queued == 0 && s.inflight == 0)
            .unwrap_or(false)
    });
    if !drained {
        return Err(io::Error::other("the orphaned queue never drained"));
    }
    let stats = client.stats()?;
    let cancelled = stats.cancelled;
    let alive = client.ping(42)? == 42;

    // The server is intact: resubmitting the suite completes identically.
    let results = submit_all(&server.addr, suite)?;
    server.stop()?;
    let identical = record_bytes(&results)
        .iter()
        .all(|(id, bytes)| control.get(id) == Some(bytes))
        && results.len() == suite.len();
    Ok(PhaseOutcome {
        name: "isolation",
        passed: panic_ok && alive && cancelled == suite.len() as u64 && identical,
        detail: format!(
            "worker panic {} a panic record; disconnect orphaned the queue \
             ({cancelled} job(s) cancelled, server {}); resubmission {}",
            if panic_ok { "became" } else { "did NOT become" },
            if alive { "still answering" } else { "DEAD" },
            verdict(identical)
        ),
    })
}

/// Phase 6: a `drain` request finishes and flushes everything already
/// admitted, then the server exits cleanly.
fn drain_phase(
    opts: &ServeDrillOptions,
    suite: &[Scenario],
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("drain"),
        threads: 2,
        queue_cap: 16,
        fsync: true,
        ..ServeOptions::default()
    })?;
    let mut client = ServeClient::connect(&server.addr)?;
    for s in suite {
        client.send(&Request::Submit(Box::new(s.clone())))?;
    }
    client.send(&Request::Drain)?;
    // The reply stream now interleaves accepts, the draining ack, and
    // every admitted job's result — all of which must still arrive.
    // One connection processes requests in order, so all six submits are
    // admitted before the drain is handled.
    let mut results = Vec::new();
    let mut saw_draining = false;
    let mut accepted = 0usize;
    while results.len() < suite.len() || !saw_draining {
        match client.next_reply()? {
            Reply::Accepted { .. } => accepted += 1,
            Reply::Draining => saw_draining = true,
            Reply::Result { record } => results.push(record),
            Reply::Rejected { id, error, .. } => {
                return Err(io::Error::other(format!(
                    "'{id}' rejected mid-drain: {error}"
                )))
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected reply mid-drain: {other:?}"
                )))
            }
        }
    }
    drop(client);
    let report = server.stop()?;
    results.sort_by(|a, b| a.id.cmp(&b.id));
    let identical = record_bytes(&results)
        .iter()
        .all(|(id, bytes)| control.get(id) == Some(bytes))
        && results.len() == accepted;
    Ok(PhaseOutcome {
        name: "drain",
        passed: identical && saw_draining && report.stats.draining && accepted == suite.len(),
        detail: format!(
            "drain after {} accepts: ack {}, all in-flight work finished \
             before exit, {}",
            accepted,
            if saw_draining { "received" } else { "MISSING" },
            verdict(identical)
        ),
    })
}

/// Phase 7: SIGKILL a real child server mid-suite, restart over the same
/// directory, and read all six records back over `query`.
fn sigkill_phase(
    opts: &ServeDrillOptions,
    exe: &Path,
    suite: &[Scenario],
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let dir = opts.dir.join("sigkill");
    let mut child = std::process::Command::new(exe)
        .arg("serve")
        .args([
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "1",
            "--fsync",
            "--quiet",
        ])
        .args(["--dir"])
        .arg(&dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("no child stdout"))?;
    let mut ready = String::new();
    BufReader::new(stdout).read_line(&mut ready)?;
    let addr = Json::parse(ready.trim())
        .ok()
        .and_then(|v| v.get("addr").and_then(Json::as_str).map(str::to_string))
        .ok_or_else(|| io::Error::other(format!("unparseable ready line: {ready:?}")))?;

    // Park the child's single worker on the blocker first so the suite is
    // provably still pending when the SIGKILL lands — the real jobs are
    // fast enough to outrun a naive "kill mid-flight" race.
    let mut client = ServeClient::connect(&addr)?;
    client.send(&Request::Submit(Box::new(blocker_scenario())))?;
    for s in suite {
        client.send(&Request::Submit(Box::new(s.clone())))?;
    }
    // Read until every submit is acknowledged. Results may interleave with
    // later accepts — that is fine, the journal still holds them; only a
    // rejection or shed is a phase failure.
    let mut accepted = 0;
    while accepted < suite.len() + 1 {
        match client.next_reply()? {
            Reply::Accepted { .. } => accepted += 1,
            Reply::Result { .. } => {}
            other => {
                return Err(io::Error::other(format!(
                    "child refused a submit: {other:?}"
                )))
            }
        }
    }
    // Every job is journaled (accept follows the durable append), and the
    // worker is hanging on the blocker. SIGKILL: no drain, no cleanup —
    // the journal is the truth.
    let journal = dir.join("journal.jsonl");
    let done_lines = || -> usize {
        std::fs::read_to_string(&journal)
            .map(|s| s.lines().filter(|l| l.contains("\"done\"")).count())
            .unwrap_or(0)
    };
    child.kill()?;
    let _ = child.wait();
    drop(client);
    let killed_done = done_lines();

    // Restart in-process over the same directory and query everything.
    let server = TestServer::start(ServeOptions {
        dir: dir.clone(),
        threads: 1,
        fsync: true,
        ..ServeOptions::default()
    })?;
    let mut client = ServeClient::connect(&server.addr)?;
    let mut results = Vec::new();
    for s in suite {
        let mut polls = 0;
        loop {
            match client.query(&s.id)? {
                Some(record) => {
                    results.push(record);
                    break;
                }
                None if polls < 1200 => {
                    polls += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                None => return Err(io::Error::other(format!("'{}' never recovered", s.id))),
            }
        }
    }
    drop(client);
    let report = server.stop()?;
    results.sort_by(|a, b| a.id.cmp(&b.id));
    let identical = record_bytes(&results)
        .iter()
        .all(|(id, bytes)| control.get(id) == Some(bytes))
        && results.len() == suite.len();
    Ok(PhaseOutcome {
        name: "sigkill-recovery",
        passed: identical && killed_done < suite.len(),
        detail: format!(
            "SIGKILLed the child with its worker parked on a blocker \
             ({killed_done}/{} journaled done), restart recovered {} pending \
             job(s) and served every record over query, {}",
            suite.len(),
            report.stats.recovered,
            verdict(identical)
        ),
    })
}

/// Phase 8: a warm shared cache serves the repeated suite with zero
/// re-simulations.
fn cache_warm_phase(
    opts: &ServeDrillOptions,
    suite: &[Scenario],
    control: &BTreeMap<String, String>,
) -> io::Result<PhaseOutcome> {
    let cache_dir = opts.dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = TestServer::start(ServeOptions {
        dir: opts.dir.join("cache-serve"),
        threads: 2,
        cache_dir: Some(cache_dir),
        fsync: true,
        ..ServeOptions::default()
    })?;
    let cold = submit_all(&server.addr, suite)?;
    let warm = submit_all(&server.addr, suite)?;
    let report = server.stop()?;
    let identical = record_bytes(&cold)
        .iter()
        .chain(record_bytes(&warm).iter())
        .all(|(id, bytes)| control.get(id) == Some(bytes));
    let counters_ok = report.stats.cache_misses == suite.len() as u64
        && report.stats.cache_hits == suite.len() as u64;
    Ok(PhaseOutcome {
        name: "cache-warm",
        passed: identical && counters_ok,
        detail: format!(
            "cold pass {} misses / warm pass {} hits — zero re-simulations on \
             repeat, verified by the counters; both passes {}",
            report.stats.cache_misses,
            report.stats.cache_hits,
            verdict(identical)
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full in-process serve drill (SIGKILL phase skipped: the test
    /// binary is not `wavesim`). CI additionally runs it through the
    /// binary with the SIGKILL phase live.
    #[test]
    fn the_serve_drill_passes_in_process() {
        let dir = std::env::temp_dir().join("idlewave-serve-drill-test");
        let report = run_drill(&ServeDrillOptions::new(&dir)).expect("drill io");
        for p in &report.phases {
            eprintln!("phase {}: {} — {}", p.name, p.passed, p.detail);
        }
        assert!(report.passed(), "{:?}", report.phases);
        assert_eq!(report.phases.len(), 8, "all phases must report");
        assert!(report.phases[6].detail.contains("skipped"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_drill_suite_is_the_deterministic_loadgen_population() {
        let suite = drill_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite, loadgen_scenarios(6, 6, 4));
        for s in &suite {
            assert_eq!(s.chaos, Chaos::None, "the suite must be cache-eligible");
            assert!(s.max_sim_time.is_none());
        }
    }
}
