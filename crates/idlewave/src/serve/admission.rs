//! Admission control and the bounded job queue.
//!
//! Two gates stand between a `submit` line and a worker:
//!
//! 1. **Admission** ([`admit`]): the full `simcheck` analyzer plus the
//!    static budget pass run on the submitted config *before* it costs a
//!    queue slot. Invalid configs and predictions over the service's
//!    admission budget come back as a `rejected` reply carrying the SC
//!    diagnostics (`SC028` summarising), so no worker time is ever spent
//!    on a scenario that could have been refused from its config alone.
//! 2. **The bounded queue** ([`JobQueue`]): a fixed-capacity FIFO with
//!    explicit load shedding. When it is full the submission is *shed* —
//!    an `overloaded` reply with a retry-after hint (`SC029`) — never
//!    buffered without bound. Admission reserves a slot *before* the
//!    journal write and commits after it, so "journaled implies queued
//!    (or completed)" holds even though several connections admit
//!    concurrently.

use std::collections::VecDeque;
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc, Condvar, Mutex};

use mpisim::PoolBudget;
use tracefmt::json::{Json, ToJson};

use super::protocol::Reply;
use crate::sweep::Scenario;

/// One admitted unit of work.
pub(crate) struct Job {
    /// Monotonic journal job number.
    pub job: u64,
    /// The scenario to run.
    pub scenario: Scenario,
    /// `config_fingerprint` of the scenario's config.
    pub fingerprint: u64,
    /// Canonical config JSON (the cache verification key).
    pub config_json: String,
    /// Predicted buffer shape, used to grow the worker's pool slot.
    pub pool: PoolBudget,
    /// Set when the submitting connection died: the job is recorded as
    /// cancelled instead of run. Recovered jobs use a flag that is never
    /// set — nobody can disconnect from the journal.
    pub cancel: Arc<AtomicBool>,
    /// Where the terminal `result` reply goes; `None` for jobs recovered
    /// from the journal (their results are fetched via `query`).
    pub reply: Option<mpsc::Sender<Reply>>,
}

/// Outcome of the admission gates for one submission.
pub(crate) enum Admission {
    /// Passed: the predicted cost report rides along.
    Accept(Box<simcheck::BudgetReport>),
    /// Refused, with the reply-ready diagnostics (`SC028` last).
    Reject {
        /// Summary for the `rejected` reply's `error` field.
        error: String,
        /// Diagnostics as JSON values.
        diagnostics: Vec<Json>,
    },
}

/// Run the pre-flight gates on one submission.
pub(crate) fn admit(scenario: &Scenario, admission_budget: Option<u64>) -> Admission {
    let diags = simcheck::analyze(&scenario.config);
    if simcheck::has_errors(&diags) {
        let n = diags.iter().filter(|d| d.is_error()).count();
        let mut out: Vec<Json> = diags.iter().map(ToJson::to_json).collect();
        out.push(simcheck::serve_rejected(&scenario.id, n).to_json());
        return Admission::Reject {
            error: format!("configuration rejected by the analyzer ({n} error(s))"),
            diagnostics: out,
        };
    }
    let report = simcheck::budget::budget(&scenario.config);
    if admission_budget.is_some() {
        let gates = simcheck::Budgets {
            max_events: admission_budget,
            ..Default::default()
        };
        let over: Vec<_> = simcheck::budget::budget_checks(&scenario.config, &report, &gates)
            .into_iter()
            .filter(|d| d.code == "SC018")
            .collect();
        if !over.is_empty() {
            let mut out: Vec<Json> = over.iter().map(ToJson::to_json).collect();
            out.push(simcheck::serve_rejected(&scenario.id, over.len()).to_json());
            return Admission::Reject {
                error: "submission over the service admission budget".to_string(),
                diagnostics: out,
            };
        }
    }
    Admission::Accept(Box::new(report))
}

struct QueueState {
    items: VecDeque<Job>,
    /// Slots promised to admissions that have not pushed yet (they are
    /// journaling); counted against capacity so the bound holds across
    /// concurrent connections.
    reserved: usize,
    open: bool,
}

/// The bounded FIFO between admission and the workers.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    takeable: Condvar,
    cap: usize,
}

impl JobQueue {
    pub(crate) fn new(cap: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                reserved: 0,
                open: true,
            }),
            takeable: Condvar::new(),
            cap: cap.max(1),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    /// Jobs queued or promised right now.
    pub(crate) fn len(&self) -> usize {
        let s = self.state.lock().expect("queue poisoned");
        s.items.len() + s.reserved
    }

    /// Claim a capacity slot before the journal write. `Ok(depth)` is the
    /// depth including this claim; `Err(depth)` means the queue is full
    /// (or closed) and the submission must be shed.
    pub(crate) fn reserve(&self) -> Result<usize, usize> {
        let mut s = self.state.lock().expect("queue poisoned");
        let depth = s.items.len() + s.reserved;
        if !s.open || depth >= self.cap {
            return Err(depth);
        }
        s.reserved += 1;
        Ok(depth + 1)
    }

    /// Turn a reservation into a queued job (after its journal line is
    /// durable).
    pub(crate) fn push_reserved(&self, job: Job) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.reserved = s.reserved.saturating_sub(1);
        s.items.push_back(job);
        self.takeable.notify_one();
    }

    /// Give a reservation back (the journal write failed).
    pub(crate) fn unreserve(&self) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.reserved = s.reserved.saturating_sub(1);
    }

    /// Queue a job recovered from the journal, ignoring capacity: the
    /// bound exists to stop *new* work from growing memory, while
    /// recovered jobs are already acknowledged obligations (and bounded
    /// by the journal itself).
    pub(crate) fn push_recovered(&self, job: Job) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.items.push_back(job);
        self.takeable.notify_one();
    }

    /// Next job, blocking. `None` once the queue is closed *and* empty —
    /// the drain contract: close() stops admissions, the workers still
    /// run everything already accepted.
    pub(crate) fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = s.items.pop_front() {
                return Some(job);
            }
            if !s.open {
                return None;
            }
            s = self.takeable.wait(s).expect("queue poisoned");
        }
    }

    /// Stop admitting; wake every worker so they can drain and exit.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue poisoned").open = false;
        self.takeable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::SimConfig;
    use netmodel::presets;
    use workload::{Boundary, CommPattern, Direction};

    fn scenario(id: &str, ranks: u32) -> Scenario {
        Scenario::new(
            id,
            SimConfig::baseline(
                presets::loggopsim_like(ranks),
                CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Periodic),
                3,
            ),
        )
    }

    fn job(n: u64) -> Job {
        let s = scenario(&format!("j{n}"), 4);
        Job {
            job: n,
            fingerprint: 0,
            config_json: String::new(),
            pool: PoolBudget {
                ranks: 0,
                steps: 0,
                peak_queue: 0,
                requests_per_rank: 0,
                trace_records: 0,
            },
            cancel: Arc::new(AtomicBool::new(false)),
            reply: None,
            scenario: s,
        }
    }

    #[test]
    fn admission_rejects_invalid_configs_with_sc028() {
        let mut s = scenario("bad", 4);
        s.config.msg_bytes = 0;
        match admit(&s, None) {
            Admission::Reject { error, diagnostics } => {
                assert!(error.contains("analyzer"), "{error}");
                let codes: Vec<&str> = diagnostics
                    .iter()
                    .filter_map(|d| d.get("code").and_then(Json::as_str))
                    .collect();
                assert!(codes.contains(&"SC004"), "{codes:?}");
                assert_eq!(codes.last(), Some(&"SC028"), "{codes:?}");
            }
            Admission::Accept(_) => panic!("zero-byte messages must be rejected"),
        }
    }

    #[test]
    fn admission_gates_on_the_budget_and_passes_clean_configs() {
        let s = scenario("big", 64);
        match admit(&s, Some(1)) {
            Admission::Reject { error, diagnostics } => {
                assert!(error.contains("admission budget"), "{error}");
                assert!(diagnostics
                    .iter()
                    .any(|d| d.get("code").and_then(Json::as_str) == Some("SC018")));
            }
            Admission::Accept(_) => panic!("1-event budget must reject a 64-rank run"),
        }
        match admit(&s, Some(u64::MAX)) {
            Admission::Accept(report) => assert!(report.events_predicted > 0),
            Admission::Reject { error, .. } => panic!("clean config rejected: {error}"),
        }
    }

    #[test]
    fn the_queue_bounds_reservations_and_drains_after_close() {
        let q = JobQueue::new(2);
        assert_eq!(q.reserve().expect("slot 1"), 1);
        assert_eq!(q.reserve().expect("slot 2"), 2);
        assert_eq!(q.reserve().expect_err("full"), 2);
        q.push_reserved(job(0));
        q.push_reserved(job(1));
        assert_eq!(q.reserve().expect_err("still full"), 2);
        assert_eq!(q.len(), 2);
        q.close();
        assert!(q.reserve().is_err(), "closed queue admits nothing");
        // Closed but not empty: the workers still drain both jobs.
        assert_eq!(q.pop().expect("first queued job").job, 0);
        assert_eq!(q.pop().expect("second queued job").job, 1);
        assert!(q.pop().is_none(), "closed and empty");
    }

    #[test]
    fn unreserve_gives_the_slot_back_and_recovery_ignores_the_cap() {
        let q = JobQueue::new(1);
        q.reserve().expect("slot");
        q.unreserve();
        q.reserve().expect("slot is back");
        q.unreserve();
        q.push_recovered(job(7));
        q.push_recovered(job(8));
        assert_eq!(q.len(), 2, "recovered jobs bypass the cap");
    }
}
