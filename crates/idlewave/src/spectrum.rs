//! Spectral analysis of desynchronisation patterns.
//!
//! The papers that motivated this study (Markidis et al. 2015, Peng et
//! al. 2016) identified idle waves through *Fourier analysis* of
//! per-rank timing profiles, and Fig. 2 of our paper describes the
//! emergent LBM structure by its "fundamental wavelength equal to the
//! size of the system (100 processes)". This module provides that
//! analysis: a discrete Fourier transform over the rank axis of a
//! per-rank signal (e.g. the finish-time skew of one step), the dominant
//! wavelength, and a skew order parameter that tracks structure
//! formation over time.

use simdes::SimTime;

use crate::experiment::WaveTrace;

/// One spectral component of a rank-axis signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Spatial mode number `k` (waves per ring; `k = 1` is the
    /// system-size wavelength).
    pub mode: u32,
    /// Amplitude of the mode (same unit as the input signal).
    pub amplitude: f64,
}

/// Real-input DFT over the rank axis: returns amplitudes for modes
/// `1 ..= n/2` (the mean, mode 0, is removed first). The signal is
/// treated as periodic in rank — appropriate for ring topologies.
///
/// An O(n²) direct transform: rank counts here are in the hundreds, and
/// determinism and zero dependencies beat asymptotics.
///
/// # Panics
///
/// If the signal has fewer than four samples.
pub fn rank_spectrum(signal: &[f64]) -> Vec<Component> {
    let n = signal.len();
    assert!(n >= 4, "need at least four ranks for a spectrum");
    let mean = signal.iter().sum::<f64>() / n as f64;
    let max_mode = n / 2;
    (1..=max_mode as u32)
        .map(|mode| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (r, &v) in signal.iter().enumerate() {
                let phase = std::f64::consts::TAU * f64::from(mode) * r as f64 / n as f64;
                let centred = v - mean;
                re += centred * phase.cos();
                im -= centred * phase.sin();
            }
            // Amplitude normalisation: a pure sine of amplitude A at
            // mode k yields amplitude A.
            let amp = 2.0 * (re * re + im * im).sqrt() / n as f64;
            Component {
                mode,
                amplitude: amp,
            }
        })
        .collect()
}

/// The dominant spatial mode of the signal (largest amplitude).
pub fn dominant_mode(signal: &[f64]) -> Component {
    rank_spectrum(signal)
        .into_iter()
        .max_by(|a, b| {
            a.amplitude
                .partial_cmp(&b.amplitude)
                .expect("finite amplitudes")
        })
        .expect("non-empty spectrum")
}

/// Wavelength (in ranks) of the dominant mode.
pub fn dominant_wavelength(signal: &[f64]) -> f64 {
    let n = signal.len() as f64;
    n / f64::from(dominant_mode(signal).mode)
}

/// Per-rank skew signal of one step: each rank's step-completion time
/// relative to the fastest rank, in seconds.
pub fn step_skew_signal(front: &[SimTime]) -> Vec<f64> {
    let min = front.iter().min().copied().unwrap_or(SimTime::ZERO);
    front
        .iter()
        .map(|&t| t.saturating_since(min).as_secs_f64())
        .collect()
}

/// Desynchronisation order parameter of one step: the standard deviation
/// of the skew signal, in seconds. Zero for a lockstep system; grows as
/// structure forms (cf. the amplitude growth in Fig. 2).
pub fn skew_order_parameter(front: &[SimTime]) -> f64 {
    let skew = step_skew_signal(front);
    let n = skew.len() as f64;
    let mean = skew.iter().sum::<f64>() / n;
    (skew.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
}

/// Structure-formation history of a run: the order parameter and the
/// dominant wavelength of the finish-time profile at each step.
pub fn structure_history(wt: &WaveTrace) -> Vec<(u32, f64, f64)> {
    (0..wt.trace.steps())
        .map(|s| {
            let front = wt.trace.step_front(s);
            let skew = step_skew_signal(&front);
            (s, skew_order_parameter(&front), dominant_wavelength(&skew))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn sine(n: usize, mode: u32, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|r| amp * (TAU * f64::from(mode) * r as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn pure_sine_recovers_mode_and_amplitude() {
        for mode in [1u32, 3, 7] {
            let sig = sine(64, mode, 2.5);
            let d = dominant_mode(&sig);
            assert_eq!(d.mode, mode);
            assert!((d.amplitude - 2.5).abs() < 1e-9, "amp {}", d.amplitude);
            assert!((dominant_wavelength(&sig) - 64.0 / f64::from(mode)).abs() < 1e-9);
        }
    }

    #[test]
    fn mean_offset_does_not_leak_into_the_spectrum() {
        let mut sig = sine(32, 2, 1.0);
        for v in &mut sig {
            *v += 100.0;
        }
        let d = dominant_mode(&sig);
        assert_eq!(d.mode, 2);
        assert!((d.amplitude - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_picks_the_larger_component() {
        let a = sine(48, 1, 3.0);
        let b = sine(48, 5, 1.0);
        let sig: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let d = dominant_mode(&sig);
        assert_eq!(d.mode, 1);
        let spec = rank_spectrum(&sig);
        let m5 = spec.iter().find(|c| c.mode == 5).unwrap();
        assert!((m5.amplitude - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_signal_has_vanishing_spectrum() {
        let sig = vec![7.0; 16];
        for c in rank_spectrum(&sig) {
            assert!(c.amplitude.abs() < 1e-12);
        }
    }

    #[test]
    fn skew_signal_and_order_parameter() {
        let front = vec![SimTime(100), SimTime(150), SimTime(100), SimTime(150)];
        let skew = step_skew_signal(&front);
        for (got, want) in skew.iter().zip([0.0, 50e-9, 0.0, 50e-9]) {
            assert!((got - want).abs() < 1e-18, "{got} vs {want}");
        }
        let op = skew_order_parameter(&front);
        assert!((op - 25e-9).abs() < 1e-15);
        // Lockstep: zero.
        assert_eq!(skew_order_parameter(&[SimTime(5); 8]), 0.0);
    }

    #[test]
    fn idle_wave_shows_up_as_system_size_wavelength() {
        // A single idle wave on a ring leaves a one-winding phase
        // profile: dominant mode 1 (wavelength = system size), just as
        // the paper describes for Fig. 2.
        use crate::experiment::WaveExperiment;
        use simdes::SimDuration;
        use workload::{Boundary, Direction};
        let wt = WaveExperiment::flat_chain(24)
            .direction(Direction::Unidirectional)
            .boundary(Boundary::Periodic)
            .texec(SimDuration::from_millis(3))
            .steps(12)
            .inject(5, 0, SimDuration::from_millis(12))
            .run();
        // Mid-run: the wave has passed some ranks (late) but not others.
        let front = wt.trace.step_front(8);
        let skew = step_skew_signal(&front);
        let d = dominant_mode(&skew);
        assert_eq!(d.mode, 1, "one travelling wave = one winding");
        // Structure history: order parameter grows from 0 when the wave
        // launches.
        let hist = structure_history(&wt);
        assert!(hist[0].1 < hist[8].1);
    }

    #[test]
    #[should_panic(expected = "at least four")]
    fn tiny_signals_are_rejected() {
        rank_spectrum(&[1.0, 2.0]);
    }
}
