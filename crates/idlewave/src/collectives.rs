//! Idle waves under collective-style communication schedules.
//!
//! The paper's outlook (Sec. VII) asks how collective communication
//! patterns influence the idle-wave phenomenon; its Eq. (2) model
//! explicitly "makes a starting point for the investigation of collective
//! communication primitives". This module follows that thread: with an
//! explicit per-round schedule (`workload::CommSchedule`) the simulator
//! runs collectives such as recursive-doubling allreduce, and the
//! analysis measures how fast an injected delay contaminates the job.
//!
//! The headline result (covered by tests and the `ablations` bench): on a
//! next-neighbour ring a delay spreads *linearly* (σ·d ranks per step,
//! Eq. 2), while under a hypercube allreduce it spreads *exponentially* —
//! every rank of a 2^k job idles within k rounds, because the delayed
//! rank's dependency cone is the whole hypercube.

use mpisim::SimConfig;
use simdes::SimDuration;
use workload::CommSchedule;

use crate::experiment::{WaveExperiment, WaveTrace};

/// Per-step contamination profile of an injected delay.
#[derive(Debug, Clone, PartialEq)]
pub struct Contamination {
    /// Number of ranks idling beyond the threshold at each step.
    pub affected_per_step: Vec<u32>,
    /// First step by which *every* rank other than the source has idled
    /// at least once, if that happens within the run.
    pub global_impact_step: Option<u32>,
}

/// Build a hypercube-allreduce experiment: `ranks` (power of two) ranks,
/// compute phases of `texec`, one message per partner per round, and a
/// delay of `delay` injected at `source` in step 0.
pub fn hypercube_experiment(
    ranks: u32,
    texec: SimDuration,
    steps: u32,
    source: u32,
    delay: SimDuration,
) -> SimConfig {
    let mut cfg = WaveExperiment::flat_chain(ranks)
        .texec(texec)
        .steps(steps)
        .inject(source, 0, delay)
        .into_config();
    cfg.schedule = Some(CommSchedule::hypercube_allreduce(ranks));
    cfg
}

/// Measure the contamination profile of a run: which ranks have idled by
/// when.
pub fn contamination(wt: &WaveTrace, source: u32, threshold: SimDuration) -> Contamination {
    let ranks = wt.trace.ranks();
    let steps = wt.trace.steps();
    let mut touched = vec![false; ranks as usize];
    let mut affected_per_step = Vec::with_capacity(steps as usize);
    let mut global_impact_step = None;
    for s in 0..steps {
        let mut affected = 0;
        for r in 0..ranks {
            if wt.idle(r, s) > threshold {
                affected += 1;
                touched[r as usize] = true;
            }
        }
        affected_per_step.push(affected);
        let all_touched = (0..ranks).all(|r| r == source || touched[r as usize]);
        if global_impact_step.is_none() && all_touched {
            global_impact_step = Some(s);
        }
    }
    Contamination {
        affected_per_step,
        global_impact_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn hypercube_delay_contaminates_all_ranks_in_log_rounds() {
        // 16 ranks => log2 = 4 rounds.
        let cfg = hypercube_experiment(16, MS.times(3), 12, 5, MS.times(30));
        let wt = WaveTrace::from_config(cfg);
        let th = wt.default_threshold();
        let c = contamination(&wt, 5, th);
        let step = c.global_impact_step.expect("delay must reach everyone");
        assert!(
            step <= 4,
            "hypercube contamination should complete within log2(16)=4 rounds, took {step}"
        );
        // Exponential growth: affected count at least doubles early on.
        assert!(c.affected_per_step[0] >= 1);
        assert!(c.affected_per_step[1] > c.affected_per_step[0]);
    }

    #[test]
    fn ring_contamination_is_linear_by_comparison() {
        // Same job on a bidirectional eager ring: 2 ranks per step, so
        // full contamination of 16 ranks takes ~8 steps, not 4.
        let wt = WaveExperiment::flat_chain(16)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Periodic)
            .eager()
            .texec(MS.times(3))
            .steps(14)
            .inject(5, 0, MS.times(30))
            .run();
        let th = wt.default_threshold();
        let ring = contamination(&wt, 5, th);
        let ring_step = ring.global_impact_step.expect("ring reaches everyone too");
        assert!(
            ring_step >= 6,
            "ring contamination should take ~N/2 steps, took {ring_step}"
        );

        let cfg = hypercube_experiment(16, MS.times(3), 14, 5, MS.times(30));
        let hyper = WaveTrace::from_config(cfg);
        let hc = contamination(&hyper, 5, hyper.default_threshold());
        assert!(
            hc.global_impact_step.unwrap() < ring_step,
            "collective must spread the delay faster than the ring"
        );
    }

    #[test]
    fn silent_schedule_runs_have_no_contamination() {
        let mut cfg = hypercube_experiment(8, MS, 6, 0, SimDuration::ZERO);
        cfg.injections = noise_model::InjectionPlan::none();
        let wt = WaveTrace::from_config(cfg);
        let c = contamination(&wt, 0, wt.default_threshold());
        assert_eq!(c.affected_per_step, vec![0; 6]);
        assert_eq!(c.global_impact_step, None);
    }

    #[test]
    fn schedule_runs_are_deterministic() {
        let cfg = hypercube_experiment(8, MS, 8, 2, MS.times(5));
        let a = WaveTrace::from_config(cfg.clone());
        let b = WaveTrace::from_config(cfg);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn binomial_gather_blocks_only_the_ancestor_chain() {
        // A one-shot binomial gather towards rank 0: a delay on a leaf
        // only stalls its ancestors, not unrelated subtrees.
        let ranks = 8u32;
        let rounds = (0..3)
            .map(|k| workload::CommGraph::binomial_gather_round(ranks, k))
            .collect();
        let mut cfg = WaveExperiment::flat_chain(ranks)
            .texec(MS.times(3))
            .steps(3)
            .inject(5, 0, MS.times(30))
            .into_config();
        cfg.schedule = Some(workload::CommSchedule::cyclic(rounds));
        let wt = WaveTrace::from_config(cfg);
        let th = wt.default_threshold();
        // Rank 5's gather path: round 0 it sends to 4; round 1, 4 has
        // nothing to do with 5's data... the tree: 5->4 (round 0),
        // 4->... round 1 sends 6->4? no: round 1 sends ranks with low
        // bits 10 -> clear: 2->0, 6->4; round 2: 4->0. So the delay at 5
        // stalls 4 (round 0), then 0 via round 2. Rank 3, 7 subtrees are
        // untouched, ranks 1, 2, 6 finish without waiting on 5.
        assert!(
            wt.total_idle(4) > th,
            "parent must wait for the delayed leaf"
        );
        assert!(wt.total_idle(0) > th, "root must wait transitively");
        for unaffected in [1u32, 3, 7] {
            assert!(
                wt.total_idle(unaffected) <= th,
                "rank {unaffected} is outside the ancestor chain but idled {}",
                wt.total_idle(unaffected)
            );
        }
    }
}
