//! The analytic propagation-speed model — Eq. (2) of the paper.
//!
//! On a noise-free homogeneous system with core-bound execution, an idle
//! wave travels at
//!
//! ```text
//! v_silent = σ · d / (T_exec + T_comm)    [ranks/s]
//!
//! σ = 2  for bidirectional rendezvous-mode communication
//! σ = 1  for any other mode
//! ```
//!
//! where `d` is the largest distance to any communication partner. The
//! paper stresses that it does not matter what `T_comm` is composed of
//! (latency, overhead, transfer): communication overhead and execution
//! time enter on an equal footing.

use mpisim::{nominal_step_duration, Mode, SimConfig};
use simdes::SimDuration;
use workload::Direction;

/// The mode/direction factor σ of Eq. (2).
pub fn sigma(direction: Direction, mode: Mode) -> u32 {
    match (direction, mode) {
        (Direction::Bidirectional, Mode::Rendezvous) => 2,
        _ => 1,
    }
}

/// `v_silent` in ranks per second from explicit ingredients.
///
/// # Panics
///
/// If `sigma` is not 1 or 2, `distance` is zero, or the step period is.
pub fn v_silent(sigma: u32, distance: u32, t_exec: SimDuration, t_comm: SimDuration) -> f64 {
    assert!(sigma == 1 || sigma == 2, "sigma must be 1 or 2");
    assert!(distance >= 1, "distance must be at least 1");
    let period = (t_exec + t_comm).as_secs_f64();
    assert!(period > 0.0, "zero step duration");
    f64::from(sigma) * f64::from(distance) / period
}

/// `v_silent` predicted for a complete configuration: σ from the pattern
/// direction and chosen protocol mode, `d` from the pattern, and
/// `T_exec + T_comm` from the analytic step baseline.
pub fn predicted_speed(cfg: &SimConfig) -> f64 {
    let mode = cfg.protocol.mode_for(cfg.msg_bytes);
    let s = sigma(cfg.pattern.direction, mode);
    let period = nominal_step_duration(cfg).as_secs_f64();
    f64::from(s) * f64::from(cfg.pattern.distance) / period
}

/// Expected number of steps for the wave front to travel `hops` ranks.
pub fn steps_to_travel(sigma: u32, distance: u32, hops: u32) -> u32 {
    let per_step = sigma * distance;
    hops.div_ceil(per_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use workload::Boundary;

    #[test]
    fn sigma_is_two_only_for_bidirectional_rendezvous() {
        assert_eq!(sigma(Direction::Bidirectional, Mode::Rendezvous), 2);
        assert_eq!(sigma(Direction::Bidirectional, Mode::Eager), 1);
        assert_eq!(sigma(Direction::Unidirectional, Mode::Rendezvous), 1);
        assert_eq!(sigma(Direction::Unidirectional, Mode::Eager), 1);
    }

    #[test]
    fn v_silent_formula() {
        // T_exec = 3 ms, T_comm = 0: 1 rank per 3 ms = 333.3 ranks/s.
        let v = v_silent(1, 1, SimDuration::from_millis(3), SimDuration::ZERO);
        assert!((v - 1000.0 / 3.0).abs() < 1e-9);
        // Doubling sigma or distance doubles the speed.
        let v2 = v_silent(2, 1, SimDuration::from_millis(3), SimDuration::ZERO);
        let v3 = v_silent(1, 2, SimDuration::from_millis(3), SimDuration::ZERO);
        assert!((v2 - 2.0 * v).abs() < 1e-9);
        assert!((v3 - 2.0 * v).abs() < 1e-9);
        // Communication time slows the wave.
        let v4 = v_silent(
            1,
            1,
            SimDuration::from_millis(3),
            SimDuration::from_millis(1),
        );
        assert!((v4 - 250.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_speed_reads_the_config() {
        let cfg = WaveExperiment::flat_chain(18)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Open)
            .rendezvous()
            .texec(SimDuration::from_millis(3))
            .into_config();
        let step = nominal_step_duration(&cfg).as_secs_f64();
        let expect = 2.0 / step;
        assert!((predicted_speed(&cfg) - expect).abs() < 1e-9);

        let eager = WaveExperiment::flat_chain(18)
            .direction(Direction::Bidirectional)
            .eager()
            .into_config();
        let step_e = nominal_step_duration(&eager).as_secs_f64();
        assert!((predicted_speed(&eager) - 1.0 / step_e).abs() < 1e-9);
    }

    #[test]
    fn steps_to_travel_rounds_up() {
        assert_eq!(steps_to_travel(1, 1, 10), 10);
        assert_eq!(steps_to_travel(2, 1, 10), 5);
        assert_eq!(steps_to_travel(2, 2, 10), 3);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn bad_sigma_panics() {
        v_silent(3, 1, SimDuration::from_millis(1), SimDuration::ZERO);
    }
}
