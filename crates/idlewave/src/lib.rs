//! # idlewave — idle-wave analysis
//!
//! The core library of this reproduction of *Propagation and Decay of
//! Injected One-Off Delays on Clusters* (Afzal, Hager, Wellein, CLUSTER
//! 2019). It builds on the `mpisim` cluster simulator and provides:
//!
//! * [`WaveExperiment`] / [`WaveTrace`] — build and run idle-wave
//!   experiments with the paper's full parameter grid;
//! * [`model`] — the analytic propagation-speed model, Eq. (2):
//!   `v_silent = σ·d / (T_exec + T_comm)`;
//! * [`wavefront`] — extraction of wave arrival times and amplitudes;
//! * [`speed`] — measured propagation speed vs. the model;
//! * [`decay`] — decay rate β̄ of waves under exponential noise (Fig. 8);
//! * [`interaction`] — wave collision and cancellation analysis (Fig. 6);
//! * [`elimination`] — wave absorption by noise (Fig. 9);
//! * [`collectives`], [`hierarchy`], [`edges`] — extensions along the
//!   paper's future-work directions (collective schedules, domain-boundary
//!   speed changes, leading/trailing edge behaviour).
//!
//! ## Quick example
//!
//! ```
//! use idlewave::{WaveExperiment, model};
//! use simdes::SimDuration;
//!
//! // 18-rank chain, 3 ms phases; 13.5 ms delay at rank 5 (paper Fig. 4).
//! let wt = WaveExperiment::flat_chain(18)
//!     .texec(SimDuration::from_millis(3))
//!     .steps(16)
//!     .inject(5, 0, SimDuration::from_millis(3).mul_f64(4.5))
//!     .run();
//! let th = wt.default_threshold();
//! let cmp = idlewave::speed::compare_with_model(&wt, 5, th).unwrap();
//! assert!((cmp.ratio - 1.0).abs() < 0.05); // Eq. 2 holds on a silent system
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod collectives;
pub mod continuum;
pub mod decay;
pub mod edges;
pub mod elimination;
mod experiment;
pub mod hierarchy;
pub mod interaction;
pub mod model;
pub mod scenarios;
pub mod serve;
pub mod spectrum;
pub mod speed;
pub mod sweep;
pub mod wavefront;

pub use experiment::{WaveExperiment, WaveTrace};
