//! A phenomenological continuum model of idle waves.
//!
//! The paper closes with: "our long-term goal is to establish a nonlinear
//! continuum model of message-passing programs that describes collective
//! phenomena like long-distance correlations and structure formation."
//! This module takes the first step the paper's own results license: a
//! front-tracking continuum description with three ingredients, each
//! measured in this reproduction —
//!
//! 1. **ballistic fronts**: a wave front moves at `v_silent` (Eq. 2);
//!    under noise the front rides the noisy collective pace instead
//!    (`edges` module);
//! 2. **linear amplitude decay**: the idle amplitude shrinks by β̄ per
//!    rank travelled (Fig. 8);
//! 3. **annihilating collisions**: two colliding fronts cancel the
//!    overlapping amplitude; the larger one survives with the amplitude
//!    difference (Fig. 6) — the explicitly *nonlinear* term.
//!
//! The model is deliberately minimal: closed-form, no simulation, and
//! the tests check its predictions against the discrete-event simulator.

use simdes::{SimDuration, SimTime};

/// Continuum parameters of one system/workload combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuumModel {
    /// Front speed in ranks per second.
    pub speed_ranks_per_sec: f64,
    /// Amplitude decay in µs per rank travelled (0 on a silent system).
    pub decay_us_per_rank: f64,
}

/// Outcome of two counter-propagating fronts colliding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Collision {
    /// Hops each front travels before meeting (equal speeds assumed).
    pub hops_to_meet: f64,
    /// Amplitude surviving the collision (zero = full annihilation).
    pub surviving_amplitude: SimDuration,
    /// `true` if the wave launched with the larger amplitude survives.
    pub first_survives: bool,
}

impl ContinuumModel {
    /// A silent-system model for a configuration: Eq. 2 speed, no decay.
    pub fn silent(cfg: &mpisim::SimConfig) -> Self {
        ContinuumModel {
            speed_ranks_per_sec: crate::model::predicted_speed(cfg),
            decay_us_per_rank: 0.0,
        }
    }

    /// Construct from an Eq. 2 speed and a measured decay rate (e.g. the
    /// median of a `decay::decay_at_level` row).
    ///
    /// # Panics
    ///
    /// If `decay_us_per_rank` is negative.
    pub fn with_decay(cfg: &mpisim::SimConfig, decay_us_per_rank: f64) -> Self {
        assert!(decay_us_per_rank >= 0.0, "decay cannot be negative");
        ContinuumModel {
            speed_ranks_per_sec: crate::model::predicted_speed(cfg),
            decay_us_per_rank,
        }
    }

    /// Predicted amplitude after travelling `hops` ranks from an initial
    /// amplitude (linear decay, clamped at zero).
    ///
    /// # Panics
    ///
    /// If `hops` is negative.
    pub fn amplitude_after(&self, initial: SimDuration, hops: f64) -> SimDuration {
        assert!(hops >= 0.0, "hops cannot be negative");
        let lost = SimDuration::from_micros_f64(self.decay_us_per_rank * hops);
        initial.saturating_sub(lost)
    }

    /// Predicted number of ranks a wave of `initial` amplitude survives.
    /// `u32::MAX` on a decay-free system.
    pub fn survival_hops(&self, initial: SimDuration) -> u32 {
        if self.decay_us_per_rank <= 0.0 {
            return u32::MAX;
        }
        (initial.as_micros_f64() / self.decay_us_per_rank).floor() as u32
    }

    /// Predicted arrival time of the front at hop distance `hops`, for a
    /// wave launched at `injected_at`.
    ///
    /// # Panics
    ///
    /// If the model's speed is not positive.
    pub fn arrival(&self, injected_at: SimTime, hops: f64) -> SimTime {
        assert!(self.speed_ranks_per_sec > 0.0, "front must move");
        injected_at + SimDuration::from_secs_f64(hops / self.speed_ranks_per_sec)
    }

    /// Two fronts launched simultaneously `gap` ranks apart, travelling
    /// toward each other at equal speed: where they meet and what
    /// survives. The nonlinearity: amplitudes subtract, they do not
    /// superpose.
    pub fn collide(
        &self,
        amplitude_a: SimDuration,
        amplitude_b: SimDuration,
        gap_ranks: u32,
    ) -> Collision {
        let hops = f64::from(gap_ranks) / 2.0;
        let a = self.amplitude_after(amplitude_a, hops);
        let b = self.amplitude_after(amplitude_b, hops);
        let surviving = if a >= b { a - b } else { b - a };
        Collision {
            hops_to_meet: hops,
            surviving_amplitude: surviving,
            first_survives: a >= b,
        }
    }

    /// Predicted extinction step of the Fig. 6 "equal injections" setup:
    /// waves from adjacent sources meet after half the source gap; the
    /// front advances `sigma·d` ranks per step.
    ///
    /// # Panics
    ///
    /// If `ranks_per_step` is zero.
    pub fn extinction_step_equal_sources(&self, gap_ranks: u32, ranks_per_step: u32) -> u32 {
        assert!(ranks_per_step >= 1);
        (gap_ranks / 2).div_ceil(ranks_per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use crate::interaction::activity_profile;
    use crate::wavefront::{arrivals_from, Walk};
    use noise_model::InjectionPlan;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn silent_model_predicts_arrival_times_exactly() {
        let wt = WaveExperiment::flat_chain(16)
            .texec(MS.times(3))
            .steps(14)
            .inject(3, 0, MS.times(12))
            .run();
        let model = ContinuumModel::silent(&wt.cfg);
        let th = wt.default_threshold();
        let arrivals = arrivals_from(&wt, 3, Walk::Up, th);
        // The front sits at hop k at time k x (T_exec + T_comm) from the
        // start: rank 4 begins waiting the moment its own first exec
        // phase ends.
        let launch = SimTime::ZERO;
        for (i, a) in arrivals.iter().enumerate() {
            let predicted = model.arrival(launch, (i + 1) as f64);
            let err = predicted.as_secs_f64() - a.time.as_secs_f64();
            assert!(
                err.abs() < 0.2e-3,
                "hop {}: predicted {predicted}, measured {}",
                i + 1,
                a.time
            );
            // Amplitude constant on a silent system.
            assert_eq!(
                model.amplitude_after(MS.times(12), (i + 1) as f64),
                MS.times(12)
            );
        }
        assert_eq!(model.survival_hops(MS.times(12)), u32::MAX);
    }

    #[test]
    fn decay_model_predicts_survival_distance_on_fresh_seeds() {
        // Calibrate beta on a handful of seeds...
        let base = WaveExperiment::flat_chain(30)
            .boundary(Boundary::Periodic)
            .texec(MS.times(3))
            .steps(46)
            .inject(2, 0, MS.times(24));
        let cal_seeds: Vec<u64> = (0..4).collect();
        let row = crate::decay::decay_at_level(&base, 8.0, &cal_seeds);
        let model = ContinuumModel::with_decay(base.config(), row.summary.median);
        let predicted = model.survival_hops(MS.times(24));

        // ...then predict the survival distance on unseen seeds.
        let mut measured = Vec::new();
        for seed in 20..26 {
            let wt = base.clone().noise_percent(8.0).seed(seed).run();
            let th = wt.default_threshold();
            measured.push(f64::from(crate::wavefront::survival_distance(
                &wt,
                2,
                Walk::Up,
                th,
            )));
        }
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        let rel = (mean - f64::from(predicted)).abs() / mean;
        assert!(
            rel < 0.45,
            "continuum survival {predicted} vs measured mean {mean} ({rel:.2})"
        );
    }

    #[test]
    fn collision_of_equal_waves_annihilates_at_half_gap() {
        let sockets = 4u32;
        let per_socket = 8u32;
        let wt = WaveExperiment::flat_chain(sockets * per_socket)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Periodic)
            .eager()
            .texec(MS.times(3))
            .steps(20)
            .injections(InjectionPlan::per_socket_equal(
                sockets,
                per_socket,
                2,
                0,
                MS.times(12),
            ))
            .run();
        let model = ContinuumModel::silent(&wt.cfg);
        let c = model.collide(MS.times(12), MS.times(12), per_socket);
        assert_eq!(c.surviving_amplitude, SimDuration::ZERO);
        assert_eq!(c.hops_to_meet, 4.0);
        // Model extinction step vs simulated.
        let predicted = model.extinction_step_equal_sources(per_socket, 1);
        let measured = activity_profile(&wt, wt.default_threshold())
            .extinction_step
            .expect("equal waves cancel");
        assert!(
            (i64::from(measured) - i64::from(predicted)).abs() <= 2,
            "extinction: continuum {predicted} vs sim {measured}"
        );
    }

    #[test]
    fn unequal_collision_leaves_the_difference() {
        let model = ContinuumModel {
            speed_ranks_per_sec: 333.0,
            decay_us_per_rank: 0.0,
        };
        let c = model.collide(MS.times(12), MS.times(6), 8);
        assert_eq!(c.surviving_amplitude, MS.times(6));
        assert!(c.first_survives);
        let c2 = model.collide(MS.times(6), MS.times(12), 8);
        assert!(!c2.first_survives);
    }

    #[test]
    fn decay_shrinks_colliding_waves_before_they_meet() {
        let model = ContinuumModel {
            speed_ranks_per_sec: 333.0,
            decay_us_per_rank: 1000.0,
        };
        // 12 ms waves, 10 hops apart: each loses 5 ms before meeting.
        let c = model.collide(MS.times(12), MS.times(8), 10);
        // a: 12 - 5 = 7 ms; b: 8 - 5 = 3 ms; survivor 4 ms.
        assert_eq!(c.surviving_amplitude, MS.times(4));
        assert_eq!(model.survival_hops(MS.times(12)), 12);
    }

    #[test]
    #[should_panic(expected = "decay cannot be negative")]
    fn negative_decay_is_rejected() {
        let cfg = WaveExperiment::flat_chain(4).into_config();
        ContinuumModel::with_decay(&cfg, -1.0);
    }
}
