//! Ergonomic construction of idle-wave experiments.
//!
//! [`WaveExperiment`] is a builder over `mpisim::SimConfig` covering the
//! paper's experimental grid: chain length and placement, communication
//! direction/distance/boundary, protocol (by message size or forced),
//! execution-phase length, injected delays, noise level, and seed. The
//! result of a run is a [`WaveTrace`], which pairs the raw trace with the
//! analytic baselines needed by all analyses.

use mpisim::{nominal_comm_duration, nominal_step_duration, run, Diagnostic, Protocol, SimConfig};
use netmodel::{ClusterNetwork, Hockney, PointToPoint};
use noise_model::{presets, DelayDistribution, InjectionPlan};
use simdes::{SimDuration, SimTime};
use tracefmt::Trace;
use workload::{Boundary, CommPattern, CommSchedule, Direction, ExecModel};

/// Builder for idle-wave experiments.
#[derive(Debug, Clone)]
pub struct WaveExperiment {
    cfg: SimConfig,
}

impl WaveExperiment {
    /// A flat chain of `ranks` single-core nodes on an InfiniBand-like
    /// link — the configuration of the paper's controlled experiments
    /// (one process per node, Sec. IV). Defaults: unidirectional open
    /// next-neighbour pattern, 3 ms compute phases, 8192-byte messages,
    /// protocol by size, 20 steps, no delays, no noise.
    pub fn flat_chain(ranks: u32) -> Self {
        let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros_f64(1.7), 3e9));
        let net = ClusterNetwork::flat(ranks, link);
        let cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open),
            20,
        );
        WaveExperiment { cfg }
    }

    /// Start from an explicit placed job (e.g. a `netmodel::presets`
    /// machine) for multi-rank-per-node experiments (Figs. 6, 9).
    pub fn on_network(net: ClusterNetwork) -> Self {
        let cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            20,
        );
        WaveExperiment { cfg }
    }

    /// Set the communication direction.
    pub fn direction(mut self, d: Direction) -> Self {
        self.cfg.pattern.direction = d;
        self
    }

    /// Set the boundary condition.
    pub fn boundary(mut self, b: Boundary) -> Self {
        self.cfg.pattern.boundary = b;
        self
    }

    /// Set the neighbour distance `d`.
    pub fn distance(mut self, d: u32) -> Self {
        self.cfg.pattern.distance = d;
        self
    }

    /// Use an explicit per-step communication schedule (collectives and
    /// irregular graphs), overriding the regular pattern.
    pub fn schedule(mut self, s: CommSchedule) -> Self {
        self.cfg.schedule = Some(s);
        self
    }

    /// Set the message size in bytes (protocol may switch if `Auto`).
    pub fn msg_bytes(mut self, bytes: u64) -> Self {
        self.cfg.msg_bytes = bytes;
        self
    }

    /// Force the eager protocol regardless of size.
    pub fn eager(mut self) -> Self {
        self.cfg.protocol = Protocol::Eager;
        self
    }

    /// Force the rendezvous protocol regardless of size.
    pub fn rendezvous(mut self) -> Self {
        self.cfg.protocol = Protocol::Rendezvous;
        self
    }

    /// Set the execution-phase length of the compute-bound model.
    pub fn texec(mut self, t: SimDuration) -> Self {
        self.cfg.exec = ExecModel::Compute { duration: t };
        self
    }

    /// Use an explicit execution model (e.g. memory-bound).
    pub fn exec_model(mut self, m: ExecModel) -> Self {
        self.cfg.exec = m;
        self
    }

    /// Set the number of bulk-synchronous steps.
    pub fn steps(mut self, n: u32) -> Self {
        self.cfg.steps = n;
        self
    }

    /// Add one injected delay (accumulates with earlier calls).
    pub fn inject(mut self, rank: u32, step: u32, duration: SimDuration) -> Self {
        let mut list = self.cfg.injections.injections().to_vec();
        list.push(noise_model::Injection {
            rank,
            step,
            duration,
        });
        self.cfg.injections = InjectionPlan::from_list(list);
        self
    }

    /// Replace the whole injection plan.
    pub fn injections(mut self, plan: InjectionPlan) -> Self {
        self.cfg.injections = plan;
        self
    }

    /// Inject exponential application noise at level `E` percent of the
    /// current compute-phase duration (paper Eq. 3).
    ///
    /// # Panics
    ///
    /// If the execution model is not compute-bound — `E` is defined
    /// relative to a fixed `T_exec`.
    pub fn noise_percent(mut self, e: f64) -> Self {
        let t_exec = match self.cfg.exec {
            ExecModel::Compute { duration } => duration,
            ExecModel::MemoryBound { .. } => {
                panic!("noise_percent requires a compute-bound execution model")
            }
        };
        self.cfg.noise = presets::application_noise(e, t_exec);
        self
    }

    /// Use an explicit noise distribution (e.g. a `presets::SystemPreset`).
    pub fn noise(mut self, d: DelayDistribution) -> Self {
        self.cfg.noise = d;
        self
    }

    /// Attach a fault plan: message drop/corruption with retransmission,
    /// link degradation windows, rank stalls and crashes (see
    /// `docs/FAULTS.md`).
    pub fn faults(mut self, plan: mpisim::FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// The underlying configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Consume the builder, returning the configuration.
    pub fn into_config(self) -> SimConfig {
        self.cfg
    }

    /// Static analysis of the configuration as built so far, without
    /// running anything: every `simcheck` diagnostic, including warnings
    /// like the SC001 rendezvous wait-cycle and the SC008 truncated-wave
    /// prediction.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        simcheck::analyze(&self.cfg)
    }

    /// Run the experiment.
    ///
    /// # Panics
    ///
    /// If the configuration fails the `simcheck` pre-check with
    /// error-severity diagnostics.
    pub fn run(self) -> WaveTrace {
        WaveTrace::from_config(self.cfg)
    }

    /// Run the experiment, returning the analyzer's error diagnostics
    /// instead of panicking on an invalid configuration.
    pub fn try_run(self) -> Result<WaveTrace, Vec<Diagnostic>> {
        WaveTrace::try_from_config(self.cfg)
    }
}

/// A completed run plus the analytic baselines all analyses need.
#[derive(Debug, Clone)]
pub struct WaveTrace {
    /// The configuration that produced the trace.
    pub cfg: SimConfig,
    /// The raw per-phase trace.
    pub trace: Trace,
    /// Communication-phase duration on an undisturbed run.
    pub baseline_comm: SimDuration,
    /// `T_exec + T_comm`, the denominator of Eq. 2.
    pub step_duration: SimDuration,
}

impl WaveTrace {
    /// Simulate `cfg` and wrap the result.
    ///
    /// # Panics
    ///
    /// If the configuration fails the `simcheck` pre-check with
    /// error-severity diagnostics; the panic message is the rendered
    /// report. Use [`WaveTrace::try_from_config`] to handle them instead.
    pub fn from_config(cfg: SimConfig) -> Self {
        simcheck::validate_strict(&cfg);
        let trace = run(&cfg);
        WaveTrace::wrap(cfg, trace)
    }

    /// Like [`WaveTrace::from_config`], but both an invalid configuration
    /// and a run-time failure (deadlock/stall, `RT001`) come back as
    /// diagnostics instead of a panic.
    pub fn try_from_config(cfg: SimConfig) -> Result<Self, Vec<Diagnostic>> {
        let errors: Vec<Diagnostic> = simcheck::analyze(&cfg)
            .into_iter()
            .filter(Diagnostic::is_error)
            .collect();
        if !errors.is_empty() {
            return Err(errors);
        }
        let trace = mpisim::try_run(&cfg).map_err(|e| e.into_diagnostics())?;
        Ok(WaveTrace::wrap(cfg, trace))
    }

    fn wrap(cfg: SimConfig, trace: Trace) -> Self {
        let baseline_comm = nominal_comm_duration(&cfg);
        let step_duration = nominal_step_duration(&cfg);
        WaveTrace {
            cfg,
            trace,
            baseline_comm,
            step_duration,
        }
    }

    /// Idle time of `(rank, step)` beyond the communication baseline.
    pub fn idle(&self, rank: u32, step: u32) -> SimDuration {
        self.trace
            .record(rank, step)
            .idle_beyond(self.baseline_comm)
    }

    /// Largest idle of `rank` over all steps, with the step it occurred in.
    pub fn max_idle(&self, rank: u32) -> (u32, SimDuration) {
        (0..self.trace.steps())
            .map(|s| (s, self.idle(rank, s)))
            .max_by_key(|&(_, d)| d)
            .expect("at least one step")
    }

    /// First step in which `rank` idles longer than `threshold`.
    pub fn first_idle_step(&self, rank: u32, threshold: SimDuration) -> Option<u32> {
        (0..self.trace.steps()).find(|&s| self.idle(rank, s) > threshold)
    }

    /// Total idle time of `rank` across the run.
    pub fn total_idle(&self, rank: u32) -> SimDuration {
        self.trace.total_idle_beyond(rank, self.baseline_comm)
    }

    /// Number of ranks idling beyond `threshold` in `step` — the "wave
    /// activity" of a step.
    pub fn activity(&self, step: u32, threshold: SimDuration) -> u32 {
        (0..self.trace.ranks())
            .filter(|&r| self.idle(r, step) > threshold)
            .count() as u32
    }

    /// Wall-clock end of the run.
    pub fn total_runtime(&self) -> SimTime {
        self.trace.total_runtime()
    }

    /// A wave-detection threshold that ignores noise-induced idles: five
    /// times the mean injected noise plus 5 % of the largest injected
    /// delay, but at least 10 µs.
    pub fn default_threshold(&self) -> SimDuration {
        let noise_floor = self.cfg.noise.mean().times(5);
        let delay_frac = self.cfg.injections.max_duration().mul_f64(0.05);
        noise_floor
            .max(delay_frac)
            .max(SimDuration::from_micros(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_the_documented_defaults() {
        let cfg = WaveExperiment::flat_chain(18).into_config();
        assert_eq!(cfg.ranks(), 18);
        assert_eq!(cfg.msg_bytes, 8192);
        assert_eq!(cfg.steps, 20);
        assert_eq!(cfg.pattern.distance, 1);
        assert!(cfg.injections.is_empty());
        assert!(cfg.noise.is_silent());
    }

    #[test]
    fn builder_settings_stick() {
        let cfg = WaveExperiment::flat_chain(18)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Periodic)
            .distance(2)
            .rendezvous()
            .texec(SimDuration::from_millis(1))
            .steps(7)
            .inject(5, 0, SimDuration::from_millis(9))
            .noise_percent(10.0)
            .seed(42)
            .into_config();
        assert_eq!(cfg.pattern.direction, Direction::Bidirectional);
        assert_eq!(cfg.pattern.boundary, Boundary::Periodic);
        assert_eq!(cfg.pattern.distance, 2);
        assert_eq!(cfg.protocol, Protocol::Rendezvous);
        assert_eq!(cfg.steps, 7);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.injections.delay_for(5, 0), SimDuration::from_millis(9));
        // E = 10 % of 1 ms = 100 us mean.
        assert_eq!(cfg.noise.mean(), SimDuration::from_micros(100));
    }

    #[test]
    fn analyze_surfaces_the_wait_cycle_without_running() {
        let warnings = WaveExperiment::flat_chain(8)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Periodic)
            .rendezvous()
            .analyze();
        assert!(warnings.iter().any(|d| d.code == "SC001"), "{warnings:?}");
    }

    #[test]
    fn try_run_reports_errors_instead_of_panicking() {
        let mut cfg = WaveExperiment::flat_chain(8).into_config();
        cfg.msg_bytes = 0;
        let errors = WaveTrace::try_from_config(cfg).expect_err("must be invalid");
        assert!(errors.iter().all(|d| d.is_error()));
        assert!(errors.iter().any(|d| d.code == "SC004"), "{errors:?}");
        // The happy path still works through the same gate.
        let wt = WaveExperiment::flat_chain(4).steps(2).try_run();
        assert!(wt.is_ok());
    }

    #[test]
    fn try_run_reports_runtime_stalls_as_rt001_diagnostics() {
        // A fail-stop crash passes static analysis (SC016 is a warning)
        // but stalls the run; try_run must surface it as a value.
        let errors = WaveExperiment::flat_chain(6)
            .texec(SimDuration::from_millis(1))
            .steps(4)
            .faults(mpisim::FaultPlan::none().with_crash(2, 1, None))
            .try_run()
            .expect_err("fail-stop crash must stall");
        assert!(errors.iter().any(|d| d.code == "RT001"), "{errors:?}");
        assert!(
            errors.iter().any(|d| d.message.contains("fail-stop")),
            "{errors:?}"
        );
    }

    #[test]
    fn faults_builder_attaches_the_plan() {
        let cfg = WaveExperiment::flat_chain(6)
            .faults(mpisim::FaultPlan::none().with_drops(0.1, SimDuration::from_micros(500)))
            .into_config();
        assert!(!cfg.faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "SC002")]
    fn run_panics_with_the_rendered_report_on_invalid_configs() {
        // d = 5 on an 8-rank periodic ring: partners alias (needs n > 2d).
        let _ = WaveExperiment::flat_chain(8)
            .boundary(Boundary::Periodic)
            .distance(5)
            .run();
    }

    #[test]
    fn injections_accumulate_across_calls() {
        let cfg = WaveExperiment::flat_chain(8)
            .inject(1, 0, SimDuration::from_millis(1))
            .inject(2, 3, SimDuration::from_millis(2))
            .into_config();
        assert_eq!(cfg.injections.injections().len(), 2);
    }

    #[test]
    fn wave_trace_exposes_idle_and_baselines() {
        let wt = WaveExperiment::flat_chain(8)
            .texec(SimDuration::from_millis(1))
            .steps(6)
            .inject(3, 0, SimDuration::from_millis(4))
            .run();
        assert!(wt.baseline_comm > SimDuration::ZERO);
        assert!(wt.step_duration > SimDuration::from_millis(1));
        // Rank 4 idles ~4 ms in step 0.
        let (step, idle) = wt.max_idle(4);
        assert_eq!(step, 0);
        assert!(idle > SimDuration::from_millis(3));
        assert_eq!(wt.first_idle_step(4, wt.default_threshold()), Some(0));
        assert!(wt.total_idle(2).is_zero());
        assert_eq!(wt.activity(0, wt.default_threshold()), 1);
    }

    #[test]
    #[should_panic(expected = "compute-bound")]
    fn noise_percent_rejects_memory_bound_models() {
        let _ = WaveExperiment::flat_chain(4)
            .exec_model(ExecModel::MemoryBound {
                bytes: 1,
                core_bw_bps: 1.0,
                socket_bw_bps: 1.0,
            })
            .noise_percent(5.0);
    }

    #[test]
    fn default_threshold_scales_with_noise_and_delay() {
        let quiet = WaveExperiment::flat_chain(4).steps(2).run();
        assert_eq!(quiet.default_threshold(), SimDuration::from_micros(10));
        let noisy = WaveExperiment::flat_chain(4)
            .steps(2)
            .noise_percent(10.0) // mean 300 us => threshold 1.5 ms
            .run();
        assert_eq!(noisy.default_threshold(), SimDuration::from_micros(1500));
    }
}
