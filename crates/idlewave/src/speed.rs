//! Measured propagation speed and its comparison with Eq. (2).

use simdes::stats::{linear_fit, LineFit};
use simdes::SimDuration;

use crate::experiment::WaveTrace;
use crate::model::predicted_speed;
use crate::wavefront::{arrivals_from, Walk};

/// Result of a propagation-speed measurement on one side of the source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedFit {
    /// Fitted speed in ranks per second.
    pub ranks_per_sec: f64,
    /// Quality of the linear fit (1 = perfectly constant speed).
    pub r2: f64,
    /// Number of wave arrivals the fit used.
    pub hops: usize,
}

/// Fit the wave speed from the arrival times walking `walk`-ward from
/// `source`. Returns `None` when fewer than three arrivals are available
/// (no meaningful fit).
pub fn measure_speed(
    wt: &WaveTrace,
    source: u32,
    walk: Walk,
    threshold: SimDuration,
) -> Option<SpeedFit> {
    let arrivals = arrivals_from(wt, source, walk, threshold);
    // On a periodic chain with waves travelling both ways, the walk
    // crosses the antipode where the counter-propagating front arrived
    // first; beyond it arrival times decrease. Fit only the longest
    // non-decreasing prefix — the front this walk is actually following.
    let mut prefix = 0;
    for (i, a) in arrivals.iter().enumerate() {
        if i > 0 && a.time < arrivals[i - 1].time {
            break;
        }
        prefix = i + 1;
    }
    let arrivals = &arrivals[..prefix];
    if arrivals.len() < 3 {
        return None;
    }
    // Points: (arrival time [s], hop distance [ranks]); the slope is the
    // speed in ranks/s.
    let points: Vec<(f64, f64)> = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| (a.time.as_secs_f64(), (i + 1) as f64))
        .collect();
    let fit: LineFit = linear_fit(&points)?;
    Some(SpeedFit {
        ranks_per_sec: fit.slope,
        r2: fit.r2,
        hops: arrivals.len(),
    })
}

/// Measured-vs-model comparison for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedComparison {
    /// Fitted speed (ranks/s).
    pub measured: f64,
    /// Eq. (2) prediction (ranks/s).
    pub predicted: f64,
    /// `measured / predicted`.
    pub ratio: f64,
    /// Fit quality.
    pub r2: f64,
}

/// Measure the up-walking wave speed of `wt` and compare with Eq. (2).
pub fn compare_with_model(
    wt: &WaveTrace,
    source: u32,
    threshold: SimDuration,
) -> Option<SpeedComparison> {
    let fit = measure_speed(wt, source, Walk::Up, threshold)?;
    let predicted = predicted_speed(&wt.cfg);
    Some(SpeedComparison {
        measured: fit.ranks_per_sec,
        predicted,
        ratio: fit.ranks_per_sec / predicted,
        r2: fit.r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    fn measure(dir: Direction, rendezvous: bool, distance: u32, ranks: u32) -> SpeedComparison {
        let mut e = WaveExperiment::flat_chain(ranks)
            .direction(dir)
            .boundary(Boundary::Open)
            .distance(distance)
            .texec(MS.times(3))
            .steps(24)
            .inject(2 * distance + 1, 0, MS.times(12));
        e = if rendezvous {
            e.rendezvous()
        } else {
            e.eager()
        };
        let wt = e.run();
        let th = wt.default_threshold();
        compare_with_model(&wt, 2 * distance + 1, th).expect("fit must exist")
    }

    #[test]
    fn eager_unidirectional_speed_matches_eq2_within_2_percent() {
        let c = measure(Direction::Unidirectional, false, 1, 20);
        assert!((c.ratio - 1.0).abs() < 0.02, "ratio {}", c.ratio);
        assert!(c.r2 > 0.999, "r2 {}", c.r2);
    }

    #[test]
    fn bidirectional_rendezvous_doubles_speed() {
        let eager = measure(Direction::Bidirectional, false, 1, 24);
        let rdv = measure(Direction::Bidirectional, true, 1, 24);
        // Each matches its own prediction (which already contains sigma)...
        assert!(
            (eager.ratio - 1.0).abs() < 0.05,
            "eager ratio {}",
            eager.ratio
        );
        assert!((rdv.ratio - 1.0).abs() < 0.05, "rdv ratio {}", rdv.ratio);
        // ...and the rendezvous wave is really ~2x faster in ranks/s.
        let speedup = rdv.measured / eager.measured;
        assert!((speedup - 2.0).abs() < 0.1, "speedup {speedup}");
    }

    #[test]
    fn distance_scales_speed_linearly() {
        let d1 = measure(Direction::Unidirectional, true, 1, 26);
        let d2 = measure(Direction::Unidirectional, true, 2, 26);
        assert!((d1.ratio - 1.0).abs() < 0.05, "d1 ratio {}", d1.ratio);
        assert!((d2.ratio - 1.0).abs() < 0.08, "d2 ratio {}", d2.ratio);
        let speedup = d2.measured / d1.measured;
        assert!((speedup - 2.0).abs() < 0.15, "speedup {speedup}");
    }

    #[test]
    fn too_few_arrivals_yield_none() {
        // Eager unidirectional wave cannot travel downwards: no fit there.
        let wt = WaveExperiment::flat_chain(12)
            .texec(MS)
            .steps(8)
            .inject(6, 0, MS.times(4))
            .run();
        let th = wt.default_threshold();
        assert!(measure_speed(&wt, 6, Walk::Down, th).is_none());
    }

    #[test]
    fn noise_leaves_leading_edge_speed_roughly_unchanged() {
        // Paper Sec. IV-C: the forward (leading) slope of the wave is
        // hardly changed by noise.
        let silent = measure(Direction::Unidirectional, false, 1, 20);
        let noisy_wt = WaveExperiment::flat_chain(20)
            .texec(MS.times(3))
            .steps(24)
            .inject(3, 0, MS.times(12))
            .noise_percent(5.0)
            .seed(7)
            .run();
        let th = noisy_wt.default_threshold();
        let noisy = compare_with_model(&noisy_wt, 3, th).expect("fit");
        let drift = (noisy.measured - silent.measured).abs() / silent.measured;
        assert!(drift < 0.10, "leading-edge speed drifted {drift}");
    }
}
