//! Supervised, crash-safe sweep execution.
//!
//! [`crate::batch`] fans independent simulations out over threads but
//! propagates any failure: one panicking scenario kills a thousand-config
//! sweep. This module is the hardened harness for chaos and fault-plan
//! sweeps, where individual scenarios are *expected* to die:
//!
//! * every scenario attempt runs in an isolated worker thread with panic
//!   capture;
//! * a **deterministic sim-time watchdog** (an [`mpisim::RunLimits`]
//!   budget derived from the scenario's nominal timing) catches runaway
//!   simulations reproducibly, and a wall-clock timeout backstops the
//!   watchdog against harness bugs;
//! * transient failures are retried a bounded number of times;
//! * every finished scenario is persisted immediately as one JSON line
//!   (append + flush), so a crash of the sweep process itself loses at
//!   most the scenarios still in flight; [`SweepOptions::resume`] reloads
//!   the file and re-runs only scenarios without a persisted record.
//!
//! Scenario outcomes are values ([`ScenarioStatus`]), never panics; the
//! sweep completes end-to-end regardless of what individual scenarios do.

use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use mpisim::{nominal_step_duration, Engine, RunLimits, RunStats, SimConfig, SimError};
use simdes::{SimDuration, SimTime};
use tracefmt::json::{self, field_or_default, FromJson, Json, ToJson};
use tracefmt::Trace;

/// Chaos knobs for exercising the supervisor itself: deliberate failure
/// modes injected at the *harness* level (the fault plan inside
/// [`SimConfig`] injects failures at the *simulation* level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Chaos {
    /// Run the scenario normally.
    #[default]
    None,
    /// Fail the first `n` attempts with a transient error, then succeed —
    /// exercises the bounded-retry path.
    FailAttempts(
        /// Attempts that fail before the first success.
        u32,
    ),
    /// Panic inside the worker on every attempt — exercises panic capture.
    Panic,
}

/// One entry of a sweep: an id, a config, and optional harness overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique identifier, used as the resume key.
    pub id: String,
    /// The simulation to run.
    pub config: SimConfig,
    /// Harness-level chaos (defaults to [`Chaos::None`]).
    pub chaos: Chaos,
    /// Explicit sim-time watchdog budget; `None` derives one from the
    /// scenario's nominal timing (see [`SweepOptions::watchdog_factor`]).
    pub max_sim_time: Option<SimTime>,
}

impl Scenario {
    /// A plain scenario with no chaos and a derived watchdog budget.
    pub fn new(id: impl Into<String>, config: SimConfig) -> Self {
        Scenario {
            id: id.into(),
            config,
            chaos: Chaos::None,
            max_sim_time: None,
        }
    }
}

/// Supervisor policy for one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOptions {
    /// Worker threads (supervision slots). Results do not depend on this.
    pub threads: usize,
    /// Extra attempts allowed after a transient failure or wall-clock
    /// timeout. Deterministic failures (panic, stall, watchdog, invalid
    /// config) are never retried.
    pub retries: u32,
    /// Wall-clock ceiling per attempt — the backstop behind the
    /// deterministic sim-time watchdog. A timed-out attempt's thread is
    /// abandoned (detached), not killed.
    pub wall_timeout: Duration,
    /// The derived sim-time budget is the scenario's nominal runtime
    /// (steps, injections, rank faults, worst-case retransmission backoff)
    /// times this factor.
    pub watchdog_factor: f64,
    /// Optional event-count budget forwarded to [`mpisim::RunLimits`].
    pub max_events: Option<u64>,
    /// Reload the output file and skip scenarios that already have a
    /// persisted record (finished = any terminal status, success or not).
    pub resume: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 4,
            retries: 2,
            wall_timeout: Duration::from_secs(30),
            watchdog_factor: 64.0,
            max_events: None,
            resume: false,
        }
    }
}

/// Terminal outcome of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Completed with a full trace.
    Ok,
    /// Rejected by the analyzer before running.
    Invalid,
    /// The run stalled (deadlock, fail-stop crash, or lost transfers).
    Stalled,
    /// The deterministic sim-time or event budget tripped.
    Watchdog,
    /// The wall-clock backstop fired; the attempt was abandoned.
    WallTimeout,
    /// The worker panicked.
    Panicked,
    /// Transient failures exhausted the retry budget.
    Transient,
}

impl ScenarioStatus {
    /// Stable string form used in the persisted JSON records.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioStatus::Ok => "ok",
            ScenarioStatus::Invalid => "invalid",
            ScenarioStatus::Stalled => "stalled",
            ScenarioStatus::Watchdog => "watchdog",
            ScenarioStatus::WallTimeout => "wall-timeout",
            ScenarioStatus::Panicked => "panic",
            ScenarioStatus::Transient => "transient",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => ScenarioStatus::Ok,
            "invalid" => ScenarioStatus::Invalid,
            "stalled" => ScenarioStatus::Stalled,
            "watchdog" => ScenarioStatus::Watchdog,
            "wall-timeout" => ScenarioStatus::WallTimeout,
            "panic" => ScenarioStatus::Panicked,
            "transient" => ScenarioStatus::Transient,
            _ => return None,
        })
    }
}

/// Compact numbers of a successful run — everything the sweep analyses
/// need without persisting full traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Sim-time end of the run in nanoseconds (deterministic, unlike wall
    /// clock).
    pub runtime_ns: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// Messages transferred.
    pub messages: u64,
    /// Retransmitted copies (fault injection).
    pub retransmissions: u64,
    /// Dropped copies (fault injection).
    pub dropped: u64,
    /// Corrupted copies (fault injection).
    pub corrupted: u64,
    /// FNV-1a digest of the full trace ([`Trace::fingerprint`]) — equal
    /// digests across runs prove bit-identical traces.
    pub trace_fingerprint: u64,
}

impl RunSummary {
    fn from_run(trace: &Trace, stats: &RunStats) -> Self {
        RunSummary {
            runtime_ns: trace.total_runtime().0,
            events: stats.events,
            messages: stats.messages,
            retransmissions: stats.retransmissions,
            dropped: stats.dropped_transfers,
            corrupted: stats.corrupted_transfers,
            trace_fingerprint: trace.fingerprint(),
        }
    }
}

/// The persisted record of one finished scenario — one JSON line in the
/// sweep output file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario id (the resume key).
    pub id: String,
    /// Terminal status.
    pub status: ScenarioStatus,
    /// Attempts consumed (1 = first try succeeded or failed terminally).
    pub attempts: u32,
    /// Error detail for non-[`ScenarioStatus::Ok`] outcomes.
    pub error: Option<String>,
    /// Run numbers for [`ScenarioStatus::Ok`] outcomes.
    pub summary: Option<RunSummary>,
}

impl ScenarioResult {
    /// Did the scenario produce a trace?
    pub fn is_ok(&self) -> bool {
        self.status == ScenarioStatus::Ok
    }
}

/// Everything a finished sweep knows, reassembled in scenario input order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per scenario, in input order.
    pub results: Vec<ScenarioResult>,
    /// How many records were reloaded from a previous run (`--resume`)
    /// instead of executed.
    pub reused: usize,
}

impl SweepReport {
    /// Scenarios that did not finish with a trace.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.is_ok()).count()
    }

    /// Did every scenario produce a trace?
    pub fn all_ok(&self) -> bool {
        self.failures() == 0
    }
}

/// Outcome of one attempt, produced inside the worker thread.
enum Attempt {
    Ok(Box<RunSummary>),
    Invalid(String),
    Stalled(String),
    Watchdog(String),
    Transient(String),
    Panicked(String),
}

/// Run every scenario under supervision, persisting each finished record
/// to `out_path` as a JSON line, and return the reassembled report.
///
/// Scenario outcomes (panics, stalls, watchdog trips, timeouts) are data,
/// not errors: the `Err` path is reserved for harness-level I/O problems
/// (unwritable output file, duplicate scenario ids).
///
/// # Panics
/// Panics if `opts.threads` is zero.
pub fn run_sweep(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    out_path: &Path,
) -> io::Result<SweepReport> {
    assert!(opts.threads >= 1, "need at least one supervisor thread");
    let mut ids = std::collections::BTreeSet::new();
    for s in scenarios {
        if !ids.insert(s.id.as_str()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate scenario id '{}'", s.id),
            ));
        }
    }

    let previous = if opts.resume {
        load_results(out_path)?
    } else {
        Vec::new()
    };
    let finished: std::collections::BTreeMap<&str, &ScenarioResult> =
        previous.iter().map(|r| (r.id.as_str(), r)).collect();

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)?;
    // A crash mid-write can leave a torn final line with no newline;
    // terminate it so the next appended record starts on a fresh line.
    if std::fs::metadata(out_path)?.len() > 0 {
        let text = std::fs::read_to_string(out_path)?;
        if !text.ends_with('\n') {
            file.write_all(b"\n")?;
            file.flush()?;
        }
    }
    let sink = Mutex::new(file);

    let todo: Vec<(usize, &Scenario)> = scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| !finished.contains_key(s.id.as_str()))
        .collect();
    let reused = scenarios.len() - todo.len();

    let queue: Mutex<Vec<(usize, &Scenario)>> = Mutex::new(todo.into_iter().rev().collect());
    let (tx, rx) = mpsc::channel::<(usize, io::Result<ScenarioResult>)>();
    let threads = opts.threads.min(scenarios.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let sink = &sink;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let job = queue.lock().expect("queue poisoned").pop();
                match job {
                    Some((idx, scenario)) => {
                        let result = supervise(scenario, opts);
                        let persisted = persist(sink, &result).map(|()| result);
                        tx.send((idx, persisted)).expect("report receiver gone");
                    }
                    None => break,
                }
            });
        }
        drop(tx);
    });

    let mut slots: Vec<Option<ScenarioResult>> = Vec::with_capacity(scenarios.len());
    slots.resize_with(scenarios.len(), || None);
    for (idx, r) in rx {
        slots[idx] = Some(r?);
    }
    for (idx, s) in scenarios.iter().enumerate() {
        if slots[idx].is_none() {
            let prior = finished
                .get(s.id.as_str())
                .expect("scenario neither run nor reloaded");
            slots[idx] = Some((*prior).clone());
        }
    }
    Ok(SweepReport {
        results: slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect(),
        reused,
    })
}

/// Supervise one scenario: bounded attempts, each in an isolated worker
/// with panic capture and the wall-clock backstop.
fn supervise(scenario: &Scenario, opts: &SweepOptions) -> ScenarioResult {
    let limits = RunLimits {
        max_sim_time: Some(sim_budget(scenario, opts)),
        max_events: opts.max_events,
    };
    let mut attempts = 0u32;
    loop {
        let outcome = run_attempt(scenario, attempts, &limits, opts.wall_timeout);
        attempts += 1;
        let (status, error, summary) = match outcome {
            Some(Attempt::Ok(summary)) => (ScenarioStatus::Ok, None, Some(*summary)),
            Some(Attempt::Invalid(e)) => (ScenarioStatus::Invalid, Some(e), None),
            Some(Attempt::Stalled(e)) => (ScenarioStatus::Stalled, Some(e), None),
            Some(Attempt::Watchdog(e)) => (ScenarioStatus::Watchdog, Some(e), None),
            Some(Attempt::Panicked(e)) => (ScenarioStatus::Panicked, Some(e), None),
            Some(Attempt::Transient(e)) => {
                if attempts <= opts.retries {
                    continue;
                }
                (ScenarioStatus::Transient, Some(e), None)
            }
            None => {
                if attempts <= opts.retries {
                    continue;
                }
                (
                    ScenarioStatus::WallTimeout,
                    Some(format!(
                        "attempt exceeded the {:?} wall-clock backstop",
                        opts.wall_timeout
                    )),
                    None,
                )
            }
        };
        return ScenarioResult {
            id: scenario.id.clone(),
            status,
            attempts,
            error,
            summary,
        };
    }
}

/// One isolated attempt. `None` means the wall-clock backstop fired and
/// the worker thread was abandoned.
fn run_attempt(
    scenario: &Scenario,
    attempt: u32,
    limits: &RunLimits,
    wall_timeout: Duration,
) -> Option<Attempt> {
    let cfg = scenario.config.clone();
    let chaos = scenario.chaos;
    let limits = *limits;
    let (tx, rx) = mpsc::channel::<Attempt>();
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            attempt_body(cfg, chaos, attempt, &limits)
        }))
        .unwrap_or_else(|payload| Attempt::Panicked(panic_text(payload.as_ref())));
        // The receiver is gone iff the backstop already fired.
        let _ = tx.send(outcome);
    });
    rx.recv_timeout(wall_timeout).ok()
}

/// The actual work of one attempt, run inside the isolated worker.
fn attempt_body(cfg: SimConfig, chaos: Chaos, attempt: u32, limits: &RunLimits) -> Attempt {
    match chaos {
        Chaos::Panic => panic!("chaos: deliberate panic"),
        Chaos::FailAttempts(n) if attempt < n => {
            return Attempt::Transient(format!(
                "chaos: transient failure on attempt {}",
                attempt + 1
            ));
        }
        _ => {}
    }
    let diags = simcheck::analyze(&cfg);
    if simcheck::has_errors(&diags) {
        let errors: Vec<_> = diags.into_iter().filter(|d| d.is_error()).collect();
        return Attempt::Invalid(simcheck::render_report(&errors));
    }
    let engine = match Engine::try_new(cfg) {
        Ok(e) => e,
        Err(e) => return Attempt::Invalid(e.to_string()),
    };
    match engine.try_run_with_stats(limits) {
        Ok((trace, stats)) => Attempt::Ok(Box::new(RunSummary::from_run(&trace, &stats))),
        Err(e @ SimError::Stalled { .. }) => Attempt::Stalled(e.to_string()),
        Err(e @ SimError::Watchdog { .. }) => Attempt::Watchdog(e.to_string()),
        Err(e @ SimError::InvalidConfig(_)) => Attempt::Invalid(e.to_string()),
    }
}

/// The deterministic sim-time budget for a scenario: its explicit
/// `max_sim_time`, or the nominal runtime (steps plus every delay the
/// fault plan and injections can add) times `watchdog_factor`.
fn sim_budget(scenario: &Scenario, opts: &SweepOptions) -> SimTime {
    if let Some(t) = scenario.max_sim_time {
        return t;
    }
    let cfg = &scenario.config;
    let steps = u64::from(cfg.steps.max(1));
    let mut nominal = nominal_step_duration(cfg).times(steps);
    nominal += cfg
        .injections
        .injections()
        .iter()
        .map(|i| i.duration)
        .sum::<SimDuration>();
    nominal += cfg.faults.total_rank_fault_delay();
    if let Some(m) = cfg.faults.messages {
        // Worst case, every step's messages serially exhaust the backoff.
        nominal += m.max_extra_delay().times(steps);
    }
    nominal += cfg.noise.mean().times(steps.saturating_mul(2));
    let budget = nominal.mul_f64(opts.watchdog_factor) + SimDuration::from_millis(1);
    SimTime(budget.nanos())
}

/// Render a captured panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Append one record to the output file and flush it to disk before
/// acknowledging — a crash after this point cannot lose the record.
fn persist(sink: &Mutex<std::fs::File>, result: &ScenarioResult) -> io::Result<()> {
    let line = json::to_string(result);
    let mut file = sink.lock().expect("sink poisoned");
    file.write_all(line.as_bytes())?;
    file.write_all(b"\n")?;
    file.flush()
}

/// Reload persisted records. Unparseable lines — e.g. a torn final line
/// after a crash mid-write — are skipped, not fatal: their scenarios
/// simply re-run.
pub fn load_results(path: &Path) -> io::Result<Vec<ScenarioResult>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter_map(|line| json::from_str::<ScenarioResult>(line).ok())
        .collect())
}

impl ToJson for Chaos {
    fn to_json(&self) -> Json {
        match *self {
            Chaos::None => Json::Str("None".into()),
            Chaos::FailAttempts(n) => Json::obj(vec![(
                "FailAttempts",
                Json::obj(vec![("attempts", n.to_json())]),
            )]),
            Chaos::Panic => Json::Str("Panic".into()),
        }
    }
}

impl FromJson for Chaos {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (variant, p) = v.expect_variant()?;
        match variant {
            "None" => Ok(Chaos::None),
            "Panic" => Ok(Chaos::Panic),
            "FailAttempts" => Ok(Chaos::FailAttempts(u32::from_json(p.field("attempts")?)?)),
            other => Err(json::JsonError(format!("unknown Chaos variant '{other}'"))),
        }
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("config", self.config.to_json()),
            ("chaos", self.chaos.to_json()),
            ("max_sim_time", self.max_sim_time.to_json()),
        ])
    }
}

impl FromJson for Scenario {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(Scenario {
            id: String::from_json(v.field("id")?)?,
            config: SimConfig::from_json(v.field("config")?)?,
            chaos: field_or_default(v, "chaos")?,
            max_sim_time: field_or_default(v, "max_sim_time")?,
        })
    }
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("runtime_ns", self.runtime_ns.to_json()),
            ("events", self.events.to_json()),
            ("messages", self.messages.to_json()),
            ("retransmissions", self.retransmissions.to_json()),
            ("dropped", self.dropped.to_json()),
            ("corrupted", self.corrupted.to_json()),
            ("trace_fingerprint", self.trace_fingerprint.to_json()),
        ])
    }
}

impl FromJson for RunSummary {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(RunSummary {
            runtime_ns: u64::from_json(v.field("runtime_ns")?)?,
            events: u64::from_json(v.field("events")?)?,
            messages: u64::from_json(v.field("messages")?)?,
            retransmissions: u64::from_json(v.field("retransmissions")?)?,
            dropped: u64::from_json(v.field("dropped")?)?,
            corrupted: u64::from_json(v.field("corrupted")?)?,
            trace_fingerprint: u64::from_json(v.field("trace_fingerprint")?)?,
        })
    }
}

impl ToJson for ScenarioStatus {
    fn to_json(&self) -> Json {
        Json::Str(self.as_str().to_string())
    }
}

impl FromJson for ScenarioStatus {
    fn from_json(v: &Json) -> json::Result<Self> {
        let s = String::from_json(v)?;
        ScenarioStatus::from_str(&s)
            .ok_or_else(|| json::JsonError(format!("unknown scenario status '{s}'")))
    }
}

impl ToJson for ScenarioResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("status", self.status.to_json()),
            ("attempts", self.attempts.to_json()),
            ("error", self.error.to_json()),
            ("summary", self.summary.to_json()),
        ])
    }
}

impl FromJson for ScenarioResult {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(ScenarioResult {
            id: String::from_json(v.field("id")?)?,
            status: ScenarioStatus::from_json(v.field("status")?)?,
            attempts: u32::from_json(v.field("attempts")?)?,
            error: field_or_default(v, "error")?,
            summary: field_or_default(v, "summary")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use mpisim::{FaultPlan, MessageFaults};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("idlewave-sweep-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn quick_cfg(seed: u64) -> SimConfig {
        WaveExperiment::flat_chain(6)
            .texec(SimDuration::from_millis(1))
            .steps(4)
            .seed(seed)
            .into_config()
    }

    fn opts() -> SweepOptions {
        SweepOptions {
            threads: 3,
            wall_timeout: Duration::from_secs(20),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn chaos_sweep_completes_end_to_end() {
        let out = tmp("chaos_end_to_end.jsonl");
        let _ = std::fs::remove_file(&out);
        let mut invalid = quick_cfg(4);
        invalid.msg_bytes = 0;
        let mut stalling = quick_cfg(5);
        stalling.faults = FaultPlan::none().with_crash(2, 1, None);
        let scenarios = vec![
            Scenario::new("plain", quick_cfg(1)),
            Scenario {
                id: "panics".into(),
                config: quick_cfg(2),
                chaos: Chaos::Panic,
                max_sim_time: None,
            },
            Scenario {
                id: "watchdogged".into(),
                config: quick_cfg(3),
                chaos: Chaos::None,
                // 1 us sim budget: trips long before the 4-step run ends.
                max_sim_time: Some(SimTime(1_000)),
            },
            Scenario {
                id: "transient".into(),
                config: quick_cfg(6),
                chaos: Chaos::FailAttempts(2),
                max_sim_time: None,
            },
            Scenario {
                id: "invalid".into(),
                config: invalid,
                chaos: Chaos::None,
                max_sim_time: None,
            },
            Scenario::new("stalls", stalling),
        ];
        let report = run_sweep(&scenarios, &opts(), &out).expect("sweep io");
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.reused, 0);
        let by_id = |id: &str| {
            report
                .results
                .iter()
                .find(|r| r.id == id)
                .unwrap_or_else(|| panic!("missing {id}"))
        };
        assert_eq!(by_id("plain").status, ScenarioStatus::Ok);
        assert!(by_id("plain").summary.is_some());
        assert_eq!(by_id("panics").status, ScenarioStatus::Panicked);
        assert!(
            by_id("panics")
                .error
                .as_deref()
                .is_some_and(|e| e.contains("deliberate panic")),
            "{:?}",
            by_id("panics")
        );
        assert_eq!(by_id("watchdogged").status, ScenarioStatus::Watchdog);
        assert_eq!(by_id("transient").status, ScenarioStatus::Ok);
        assert_eq!(by_id("transient").attempts, 3);
        assert_eq!(by_id("invalid").status, ScenarioStatus::Invalid);
        assert!(by_id("invalid")
            .error
            .as_deref()
            .is_some_and(|e| e.contains("SC004")));
        assert_eq!(by_id("stalls").status, ScenarioStatus::Stalled);
        assert!(by_id("stalls")
            .error
            .as_deref()
            .is_some_and(|e| e.contains("fail-stop")));
        // Every record was persisted.
        assert_eq!(load_results(&out).expect("readable").len(), 6);
        assert_eq!(report.failures(), 4);
    }

    #[test]
    fn transient_failures_exhaust_the_retry_budget() {
        let out = tmp("transient_exhaust.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario {
            id: "hopeless".into(),
            config: quick_cfg(7),
            chaos: Chaos::FailAttempts(99),
            max_sim_time: None,
        }];
        let o = SweepOptions {
            retries: 1,
            ..opts()
        };
        let report = run_sweep(&scenarios, &o, &out).expect("sweep io");
        assert_eq!(report.results[0].status, ScenarioStatus::Transient);
        assert_eq!(report.results[0].attempts, 2);
    }

    #[test]
    fn resume_skips_finished_scenarios_and_tolerates_torn_lines() {
        let out = tmp("resume.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| Scenario::new(format!("s{i}"), quick_cfg(i)))
            .collect();
        // First pass: run only the first two scenarios.
        let first = run_sweep(&scenarios[..2], &opts(), &out).expect("sweep io");
        assert!(first.all_ok());
        // Simulate a crash mid-write: append a torn line.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&out)
                .expect("open");
            f.write_all(b"{\"id\":\"s2\",\"stat").expect("torn write");
        }
        // Resume over the full set: s0/s1 reload, s2 (torn) and s3 run.
        let resumed = run_sweep(
            &scenarios,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect("sweep io");
        assert_eq!(resumed.reused, 2);
        assert_eq!(resumed.results.len(), 4);
        assert!(resumed.all_ok());
        // Nothing from the first pass was lost, and the re-run scenarios
        // were appended after the torn line.
        let ids: Vec<String> = load_results(&out)
            .expect("readable")
            .into_iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids.len(), 4, "{ids:?}");
        for want in ["s0", "s1", "s2", "s3"] {
            assert!(ids.iter().any(|i| i == want), "{want} missing: {ids:?}");
        }
    }

    #[test]
    fn resume_preserves_prior_failures_without_rerunning_them() {
        let out = tmp("resume_failures.jsonl");
        let _ = std::fs::remove_file(&out);
        let scenarios = vec![Scenario {
            id: "boom".into(),
            config: quick_cfg(9),
            chaos: Chaos::Panic,
            max_sim_time: None,
        }];
        let first = run_sweep(&scenarios, &opts(), &out).expect("sweep io");
        assert_eq!(first.results[0].status, ScenarioStatus::Panicked);
        let resumed = run_sweep(
            &scenarios,
            &SweepOptions {
                resume: true,
                ..opts()
            },
            &out,
        )
        .expect("sweep io");
        assert_eq!(resumed.reused, 1);
        assert_eq!(resumed.results[0].status, ScenarioStatus::Panicked);
        // No duplicate record was appended.
        assert_eq!(load_results(&out).expect("readable").len(), 1);
    }

    #[test]
    fn fault_scenarios_fingerprint_identically_across_sweeps() {
        let out_a = tmp("det_a.jsonl");
        let out_b = tmp("det_b.jsonl");
        let _ = std::fs::remove_file(&out_a);
        let _ = std::fs::remove_file(&out_b);
        let mut cfg = quick_cfg(11);
        cfg.protocol = mpisim::Protocol::Rendezvous;
        cfg.faults = FaultPlan::none().with_messages(MessageFaults {
            drop_prob: 0.2,
            rto: SimDuration::from_micros(50),
            ..MessageFaults::default()
        });
        let scenarios = vec![Scenario::new("faulty", cfg)];
        let one = SweepOptions {
            threads: 1,
            ..opts()
        };
        let a = run_sweep(&scenarios, &opts(), &out_a).expect("sweep io");
        let b = run_sweep(&scenarios, &one, &out_b).expect("sweep io");
        let fa = a.results[0].summary.expect("ok run").trace_fingerprint;
        let fb = b.results[0].summary.expect("ok run").trace_fingerprint;
        assert_eq!(fa, fb, "thread count changed a fault-injected trace");
        assert!(a.results[0].summary.expect("ok").retransmissions > 0);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let out = tmp("dupes.jsonl");
        let scenarios = vec![
            Scenario::new("same", quick_cfg(1)),
            Scenario::new("same", quick_cfg(2)),
        ];
        let err = run_sweep(&scenarios, &opts(), &out).expect_err("duplicate ids");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn scenario_and_result_json_round_trip() {
        let s = Scenario {
            id: "rt".into(),
            config: quick_cfg(3),
            chaos: Chaos::FailAttempts(2),
            max_sim_time: Some(SimTime(123)),
        };
        let back: Scenario = json::from_str(&json::to_string(&s)).expect("scenario");
        assert_eq!(s, back);
        let r = ScenarioResult {
            id: "rt".into(),
            status: ScenarioStatus::WallTimeout,
            attempts: 3,
            error: Some("slow".into()),
            summary: None,
        };
        let back: ScenarioResult = json::from_str(&json::to_string(&r)).expect("result");
        assert_eq!(r, back);
        // A bare scenario omits chaos defaults cleanly.
        let plain = Scenario::new("p", quick_cfg(1));
        let back: Scenario = json::from_str(&json::to_string(&plain)).expect("plain");
        assert_eq!(back.chaos, Chaos::None);
    }
}
