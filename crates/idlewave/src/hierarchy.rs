//! Idle-wave speed across topology-domain boundaries.
//!
//! The paper's outlook (Sec. VII): "the propagation speed changes
//! whenever a domain boundary is crossed", because Eq. (2)'s `T_comm`
//! differs between intra-socket, inter-socket and inter-node links. This
//! module measures exactly that: per-hop arrival intervals of a wave
//! front, grouped by the domain of the link each hop crossed, compared
//! against the per-domain Eq. (2) prediction
//! `interval_D = (T_exec + T_comm(D)) / (σ·d)`.

use netmodel::Domain;
use simdes::stats::Summary;
use simdes::SimDuration;

use crate::experiment::WaveTrace;
use crate::wavefront::{arrivals_from, Walk};

/// One hop of the wave front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Rank the front came from.
    pub from: u32,
    /// Rank the front reached.
    pub to: u32,
    /// Domain of the link between the two ranks.
    pub domain: Domain,
    /// Time between the two arrivals.
    pub interval: SimDuration,
}

/// Extract the per-hop intervals of the wave front walking `walk`-ward
/// from `source`. The first hop (source → first arrival) is excluded —
/// its interval is dominated by the injected delay, not by propagation.
pub fn hop_intervals(wt: &WaveTrace, source: u32, walk: Walk, threshold: SimDuration) -> Vec<Hop> {
    let arrivals = arrivals_from(wt, source, walk, threshold);
    arrivals
        .windows(2)
        .filter_map(|w| {
            let (a, b) = (&w[0], &w[1]);
            // Skip pairs with a detection gap (non-adjacent ranks) and
            // wrapped pairs with non-monotone times.
            if b.time < a.time {
                return None;
            }
            let domain = wt.cfg.network.domain_between(a.rank, b.rank)?;
            Some(Hop {
                from: a.rank,
                to: b.rank,
                domain,
                interval: b.time.since(a.time),
            })
        })
        .collect()
}

/// Summary of hop intervals per domain, in microseconds.
pub fn interval_by_domain(hops: &[Hop]) -> Vec<(Domain, Summary)> {
    let mut out = Vec::new();
    for domain in [Domain::Socket, Domain::Node, Domain::Network] {
        let samples: Vec<f64> = hops
            .iter()
            .filter(|h| h.domain == domain)
            .map(|h| h.interval.as_micros_f64())
            .collect();
        if let Some(s) = Summary::of(&samples) {
            out.push((domain, s));
        }
    }
    out
}

/// Eq. (2) per-domain hop interval for a next-neighbour wave:
/// `T_exec + T_comm(domain)` (σ·d = 1 hop per step assumed; scale by
/// σ·d for other modes).
pub fn predicted_interval(wt: &WaveTrace, domain: Domain) -> SimDuration {
    let cfg = &wt.cfg;
    let mode = cfg.protocol.mode_for(cfg.msg_bytes);
    let link = cfg.network.models.for_domain(domain);
    let xfer = link.transfer_time(cfg.msg_bytes);
    let comm = match mode {
        mpisim::Mode::Eager => xfer,
        mpisim::Mode::Rendezvous => link.ctrl_latency() + link.ctrl_latency() + xfer,
    };
    mpisim::nominal_exec_duration(cfg) + comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use netmodel::{ClusterNetwork, DomainModels, Hockney, Machine, PointToPoint};
    use workload::{Boundary, CommPattern, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    /// Two nodes x two sockets x four cores, strongly heterogeneous link
    /// speeds so boundary crossings are visible, and a large message so
    /// T_comm is not negligible against T_exec.
    fn hier_wave() -> WaveTrace {
        let models = DomainModels {
            socket: PointToPoint::Hockney(Hockney::new(SimDuration::from_nanos(300), 10e9)),
            node: PointToPoint::Hockney(Hockney::new(SimDuration::from_nanos(600), 4e9)),
            network: PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(2), 1e9)),
        };
        let net = ClusterNetwork::new(Machine::new(4, 2, 2), 8, 16, models);
        let mut cfg = mpisim::SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open),
            20,
        );
        cfg.msg_bytes = 2_000_000; // 2 MB: 0.2 / 0.5 / 2 ms per domain
        cfg.protocol = mpisim::Protocol::Eager;
        cfg.exec = workload::ExecModel::Compute { duration: MS };
        cfg.injections = noise_model::InjectionPlan::single(0, 0, MS.times(40));
        WaveTrace::from_config(cfg)
    }

    #[test]
    fn hops_cover_all_domains_with_correct_labels() {
        let wt = hier_wave();
        let th = wt.default_threshold();
        let hops = hop_intervals(&wt, 0, Walk::Up, th);
        assert!(hops.len() >= 13, "wave should cross most of the 16 ranks");
        // Ranks 0-3 socket 0, 4-7 socket 1, 8-15 node 1.
        let find = |to: u32| hops.iter().find(|h| h.to == to).expect("hop");
        assert_eq!(find(2).domain, Domain::Socket);
        assert_eq!(find(4).domain, Domain::Node);
        assert_eq!(find(8).domain, Domain::Network);
    }

    #[test]
    fn wave_slows_down_at_each_boundary() {
        let wt = hier_wave();
        let th = wt.default_threshold();
        let hops = hop_intervals(&wt, 0, Walk::Up, th);
        let by_domain = interval_by_domain(&hops);
        assert_eq!(by_domain.len(), 3, "all three domains crossed");
        let get = |d: Domain| {
            by_domain
                .iter()
                .find(|(dd, _)| *dd == d)
                .map(|(_, s)| s.median)
                .expect("domain present")
        };
        let socket = get(Domain::Socket);
        let node = get(Domain::Node);
        let network = get(Domain::Network);
        assert!(socket < node, "socket {socket} !< node {node}");
        assert!(node < network, "node {node} !< network {network}");
    }

    #[test]
    fn per_domain_intervals_match_eq2() {
        let wt = hier_wave();
        let th = wt.default_threshold();
        let hops = hop_intervals(&wt, 0, Walk::Up, th);
        for domain in [Domain::Socket, Domain::Node, Domain::Network] {
            let predicted = predicted_interval(&wt, domain).as_micros_f64();
            let measured: Vec<f64> = hops
                .iter()
                .filter(|h| h.domain == domain)
                .map(|h| h.interval.as_micros_f64())
                .collect();
            let s = Summary::of(&measured).expect("samples");
            let err = (s.median - predicted).abs() / predicted;
            assert!(
                err < 0.02,
                "{domain:?}: measured {} vs predicted {predicted} ({err:.3})",
                s.median
            );
        }
    }

    #[test]
    fn flat_networks_have_uniform_intervals() {
        let wt = WaveExperiment::flat_chain(12)
            .texec(MS.times(3))
            .steps(14)
            .inject(2, 0, MS.times(12))
            .run();
        let th = wt.default_threshold();
        let hops = hop_intervals(&wt, 2, Walk::Up, th);
        let by_domain = interval_by_domain(&hops);
        assert_eq!(by_domain.len(), 1);
        assert_eq!(by_domain[0].0, Domain::Network);
        let s = by_domain[0].1;
        assert!(
            s.max - s.min < 1.0,
            "intervals should be constant, spread {}",
            s.max - s.min
        );
    }
}
