//! Parallel batch execution of independent simulations.
//!
//! The statistical experiments (Fig. 8's 15 repetitions × 7 noise levels
//! × 3 systems, the elimination averages of Fig. 9) run many fully
//! independent simulations. Each simulation is single-threaded and
//! deterministic, so fanning them out over OS threads scales
//! embarrassingly — and, because every run's seed is part of its config
//! and results are reassembled by input index, the results are identical
//! to sequential execution in any thread count.

use std::sync::mpsc;
use std::sync::Mutex;

use mpisim::SimConfig;

use crate::experiment::WaveTrace;

/// Run every configuration, in parallel over up to `threads` OS threads,
/// returning results in input order.
///
/// Work is distributed through a shared queue, so stragglers do not idle
/// the other workers; each finished trace travels back over a channel
/// tagged with its input index, and the batch is reassembled in input
/// order regardless of completion order.
///
/// # Panics
/// Propagates panics from individual simulations (a poisoned experiment
/// should fail loudly, not produce a hole in the statistics).
pub fn run_batch(configs: Vec<SimConfig>, threads: usize) -> Vec<WaveTrace> {
    assert!(threads >= 1, "need at least one thread");
    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return configs.into_iter().map(WaveTrace::from_config).collect();
    }

    // Shared pull queue: workers grab the next job as they free up.
    let queue: Mutex<Vec<(usize, SimConfig)>> =
        Mutex::new(configs.into_iter().enumerate().rev().collect());
    let (tx, rx) = mpsc::channel::<(usize, WaveTrace)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let job = queue.lock().expect("queue poisoned").pop();
                match job {
                    Some((idx, cfg)) => {
                        let trace = WaveTrace::from_config(cfg);
                        tx.send((idx, trace)).expect("result receiver gone");
                    }
                    None => break,
                }
            });
        }
        drop(tx); // scope's copy; workers hold the remaining senders
    });

    let mut slots: Vec<Option<WaveTrace>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (idx, trace) in rx {
        assert!(slots[idx].replace(trace).is_none(), "job {idx} ran twice");
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Convenience: run the same experiment under each seed, in parallel.
pub fn run_seeds(base: &SimConfig, seeds: &[u64], threads: usize) -> Vec<WaveTrace> {
    let configs = seeds
        .iter()
        .map(|&seed| {
            let mut cfg = base.clone();
            cfg.seed = seed;
            cfg
        })
        .collect();
    run_batch(configs, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use simdes::SimDuration;

    fn base() -> SimConfig {
        WaveExperiment::flat_chain(10)
            .texec(SimDuration::from_millis(1))
            .steps(6)
            .inject(3, 0, SimDuration::from_millis(4))
            .noise_percent(5.0)
            .into_config()
    }

    #[test]
    fn parallel_equals_sequential_in_any_thread_count() {
        let seeds: Vec<u64> = (0..9).collect();
        let seq = run_seeds(&base(), &seeds, 1);
        for threads in [2, 3, 8, 16] {
            let par = run_seeds(&base(), &seeds, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.trace, b.trace, "threads = {threads}");
                assert_eq!(a.cfg.seed, b.cfg.seed);
            }
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let seeds: Vec<u64> = vec![42, 7, 99, 1];
        let out = run_seeds(&base(), &seeds, 4);
        let got: Vec<u64> = out.iter().map(|wt| wt.cfg.seed).collect();
        assert_eq!(got, seeds);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(Vec::new(), 4).is_empty());
    }

    #[test]
    fn single_config_runs() {
        let out = run_batch(vec![base()], 8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].trace.ranks(), 10);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let seeds: Vec<u64> = vec![5, 6];
        let out = run_seeds(&base(), &seeds, 64);
        assert_eq!(out.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_batch(vec![base()], 0);
    }
}
