//! Idle-period decay under noise (paper Sec. V-A, Fig. 8).
//!
//! Under fine-grained noise the trailing edge of an idle wave is eroded:
//! the wave's amplitude (the idle time it causes at each rank it passes)
//! shrinks as it travels. The paper quantifies this with the *average
//! decay rate* β̄ in µs per rank: the mean amplitude loss per hop.
//!
//! Our estimator walks the wave from its source, collects the amplitude at
//! each reached rank, and fits a straight line amplitude-vs-hop; β̄ is the
//! negated slope. Statistics over independent seeds reproduce the
//! median/min/max presentation of Fig. 8.

use simdes::stats::{linear_fit, Summary};
use simdes::SimDuration;

use crate::experiment::{WaveExperiment, WaveTrace};
use crate::wavefront::{arrivals_from, Walk};

/// Decay measurement from a single run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayMeasurement {
    /// Average decay rate β̄ in µs per rank (positive = wave shrinks).
    pub rate_us_per_rank: f64,
    /// Ranks the wave visibly reached before extinction.
    pub survival_ranks: u32,
    /// Amplitude at the first hop, µs (for reporting).
    pub initial_amplitude_us: f64,
    /// Fit quality of the linear amplitude model.
    pub r2: f64,
}

/// Measure the decay of the wave emanating up-chain from `source`.
///
/// Returns `None` when fewer than three arrivals are detected (nothing to
/// fit) — e.g. when the noise is strong enough to absorb the wave almost
/// immediately, or the wave never formed.
pub fn measure_decay(
    wt: &WaveTrace,
    source: u32,
    walk: Walk,
    threshold: SimDuration,
) -> Option<DecayMeasurement> {
    let arrivals = arrivals_from(wt, source, walk, threshold);
    if arrivals.len() < 3 {
        return None;
    }
    let points: Vec<(f64, f64)> = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| ((i + 1) as f64, a.amplitude.as_micros_f64()))
        .collect();
    let fit = linear_fit(&points)?;
    Some(DecayMeasurement {
        rate_us_per_rank: -fit.slope,
        survival_ranks: arrivals.len() as u32,
        initial_amplitude_us: arrivals[0].amplitude.as_micros_f64(),
        r2: fit.r2,
    })
}

/// One row of the Fig. 8 scan: decay-rate statistics at a noise level.
#[derive(Debug, Clone, PartialEq)]
pub struct DecayRow {
    /// Mean relative delay E in percent (x-axis of Fig. 8).
    pub e_percent: f64,
    /// Per-seed decay rates (µs/rank).
    pub rates: Vec<f64>,
    /// Median/min/max summary of the rates.
    pub summary: Summary,
}

/// Run the decay experiment at one noise level over `seeds.len()`
/// independent runs (the paper uses 15) and summarise.
///
/// `base` must contain the injected delay; the noise level is overridden
/// per the scan. Runs whose wave is absorbed before three hops are
/// counted as a decay rate equal to the initial amplitude per hop — the
/// wave died "immediately", the strongest decay observable.
///
/// # Panics
///
/// If `seeds` is empty.
pub fn decay_at_level(base: &WaveExperiment, e_percent: f64, seeds: &[u64]) -> DecayRow {
    assert!(!seeds.is_empty(), "need at least one seed");
    let source = wave_source(base);
    let mut rates = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let wt = base.clone().noise_percent(e_percent).seed(seed).run();
        let threshold = wt.default_threshold();
        match measure_decay(&wt, source, Walk::Up, threshold) {
            Some(m) => rates.push(m.rate_us_per_rank.max(0.0)),
            None => {
                // Wave absorbed within <3 hops: decay ≥ injected/3 per rank.
                let injected = wt.cfg.injections.max_duration().as_micros_f64();
                rates.push(injected / 3.0);
            }
        }
    }
    let summary = Summary::of(&rates).expect("rates are finite and non-empty");
    DecayRow {
        e_percent,
        rates,
        summary,
    }
}

/// The rank carrying the (largest) injected delay of an experiment.
fn wave_source(base: &WaveExperiment) -> u32 {
    base.config()
        .injections
        .injections()
        .iter()
        .max_by_key(|i| i.duration)
        .expect("decay experiments need an injected delay")
        .rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    /// A periodic chain long enough for a wave to decay in.
    fn base(ranks: u32, steps: u32) -> WaveExperiment {
        WaveExperiment::flat_chain(ranks)
            .direction(Direction::Unidirectional)
            .boundary(Boundary::Periodic)
            .texec(MS.times(3))
            .steps(steps)
            .inject(2, 0, MS.times(30))
    }

    #[test]
    fn silent_system_has_no_decay() {
        let wt = base(20, 30).run();
        let m = measure_decay(&wt, 2, Walk::Up, wt.default_threshold()).expect("wave exists");
        // Noise-free: amplitude is constant, slope ~0.
        assert!(
            m.rate_us_per_rank.abs() < 1.0,
            "rate {}",
            m.rate_us_per_rank
        );
        assert!(m.survival_ranks >= 18);
        assert!((m.initial_amplitude_us - 30_000.0).abs() < 1_500.0);
    }

    #[test]
    fn noise_erodes_the_wave() {
        let wt = base(20, 30).noise_percent(8.0).seed(11).run();
        let m = measure_decay(&wt, 2, Walk::Up, wt.default_threshold()).expect("wave exists");
        assert!(
            m.rate_us_per_rank > 50.0,
            "expected visible decay, got {} us/rank",
            m.rate_us_per_rank
        );
    }

    #[test]
    fn decay_rate_increases_with_noise_level() {
        let seeds: Vec<u64> = (0..6).collect();
        let b = base(24, 36);
        let low = decay_at_level(&b, 2.0, &seeds);
        let high = decay_at_level(&b, 10.0, &seeds);
        assert!(
            high.summary.median > low.summary.median,
            "decay must grow with E: low {} high {}",
            low.summary.median,
            high.summary.median
        );
        assert_eq!(low.rates.len(), 6);
    }

    #[test]
    fn quiet_wave_gives_none_without_injection_reach() {
        // No injection at all: nothing to measure.
        let wt = WaveExperiment::flat_chain(10).texec(MS).steps(5).run();
        assert!(measure_decay(&wt, 4, Walk::Up, wt.default_threshold()).is_none());
    }

    #[test]
    #[should_panic(expected = "need an injected delay")]
    fn decay_scan_requires_an_injection() {
        let b = WaveExperiment::flat_chain(10).texec(MS).steps(5);
        decay_at_level(&b, 5.0, &[1]);
    }
}
