//! Wave-front extraction: where and when the idle wave reaches each rank.
//!
//! The front of an idle wave at rank `r` is the first communication phase
//! in which `r` waits substantially longer than the baseline. The moment
//! waiting begins (`exec_end` of that step) is the arrival time used for
//! speed fits; the size of the wait is the local wave amplitude used for
//! decay fits.

use simdes::{SimDuration, SimTime};

use crate::experiment::WaveTrace;

/// Arrival of a wave at one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Rank the wave reached.
    pub rank: u32,
    /// Step in which the rank first idled beyond the threshold.
    pub step: u32,
    /// Moment waiting began.
    pub time: SimTime,
    /// Length of the idle period at the front step — the local wave
    /// amplitude.
    pub amplitude: SimDuration,
}

/// Direction to walk the chain from the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Walk {
    /// Toward higher ranks.
    Up,
    /// Toward lower ranks.
    Down,
}

/// Extract wave arrivals walking from `source` in `walk` direction until
/// the wave is no longer detectable (`threshold`) or the chain ends.
///
/// On a periodic chain the walk wraps around but stops before revisiting
/// the source. The source itself is excluded (it is delayed, not idle).
///
/// # Panics
///
/// If `source` is not a rank of the trace.
pub fn arrivals_from(
    wt: &WaveTrace,
    source: u32,
    walk: Walk,
    threshold: SimDuration,
) -> Vec<Arrival> {
    let nranks = wt.trace.ranks();
    assert!(source < nranks, "source rank out of range");
    let periodic = wt.cfg.pattern.boundary == workload::Boundary::Periodic;
    let mut out = Vec::new();
    let mut misses = 0u32;
    for k in 1..nranks {
        let rank = match walk {
            Walk::Up => {
                let r = i64::from(source) + i64::from(k);
                if periodic {
                    (r.rem_euclid(i64::from(nranks))) as u32
                } else if r < i64::from(nranks) {
                    r as u32
                } else {
                    break;
                }
            }
            Walk::Down => {
                let r = i64::from(source) - i64::from(k);
                if periodic {
                    (r.rem_euclid(i64::from(nranks))) as u32
                } else if r >= 0 {
                    r as u32
                } else {
                    break;
                }
            }
        };
        match wt.first_idle_step(rank, threshold) {
            Some(step) => {
                misses = 0;
                let rec = wt.trace.record(rank, step);
                out.push(Arrival {
                    rank,
                    step,
                    time: rec.exec_end,
                    amplitude: wt.idle(rank, step),
                });
            }
            None => {
                // Allow one quiet rank (statistical dropout under noise)
                // before declaring the wave extinct.
                misses += 1;
                if misses >= 2 {
                    break;
                }
            }
        }
    }
    out
}

/// Number of ranks the wave visibly reached walking in `walk` direction —
/// the survival distance used in decay analyses.
pub fn survival_distance(wt: &WaveTrace, source: u32, walk: Walk, threshold: SimDuration) -> u32 {
    arrivals_from(wt, source, walk, threshold).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use simdes::SimDuration;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn arrivals_walk_up_an_eager_unidirectional_wave() {
        let wt = WaveExperiment::flat_chain(12)
            .texec(MS)
            .steps(10)
            .inject(3, 0, MS.times(4))
            .run();
        let th = wt.default_threshold();
        let ups = arrivals_from(&wt, 3, Walk::Up, th);
        assert_eq!(ups.len(), 8, "wave should reach every rank above 3");
        for (i, a) in ups.iter().enumerate() {
            assert_eq!(a.rank, 4 + i as u32);
            assert_eq!(a.step, i as u32);
            assert!(a.amplitude > MS.times(3));
        }
        // Arrival times are strictly increasing: the wave moves forward.
        for w in ups.windows(2) {
            assert!(w[1].time > w[0].time);
        }
        // Eager unidirectional: nothing travels downwards.
        assert!(arrivals_from(&wt, 3, Walk::Down, th).is_empty());
    }

    #[test]
    fn arrivals_walk_both_ways_for_bidirectional() {
        let wt = WaveExperiment::flat_chain(12)
            .direction(Direction::Bidirectional)
            .texec(MS)
            .steps(10)
            .inject(6, 0, MS.times(4))
            .run();
        let th = wt.default_threshold();
        assert_eq!(survival_distance(&wt, 6, Walk::Up, th), 5);
        assert_eq!(survival_distance(&wt, 6, Walk::Down, th), 6);
    }

    #[test]
    fn periodic_walk_wraps_and_stops_before_source() {
        let wt = WaveExperiment::flat_chain(10)
            .boundary(Boundary::Periodic)
            .texec(MS)
            .steps(14)
            .inject(4, 0, MS.times(4))
            .run();
        let th = wt.default_threshold();
        let ups = arrivals_from(&wt, 4, Walk::Up, th);
        // Wave wraps the whole ring: 9 other ranks, dies at the injector.
        assert_eq!(ups.len(), 9);
        assert_eq!(ups.last().unwrap().rank, 3);
    }

    #[test]
    fn quiet_run_has_no_arrivals() {
        let wt = WaveExperiment::flat_chain(8).texec(MS).steps(5).run();
        let th = wt.default_threshold();
        assert!(arrivals_from(&wt, 3, Walk::Up, th).is_empty());
        assert_eq!(survival_distance(&wt, 3, Walk::Down, th), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let wt = WaveExperiment::flat_chain(4).steps(2).run();
        arrivals_from(&wt, 9, Walk::Up, SimDuration::from_micros(10));
    }
}
