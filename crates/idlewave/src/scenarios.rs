//! Ready-made reproductions of the paper's motivating experiments.
//!
//! * [`stream_scaling_sweep`] — Fig. 1: MPI-parallel STREAM triad strong
//!   scaling, Eq. 1 model vs. simulated "measurement" with bandwidth
//!   contention, send serialisation and system noise;
//! * [`lbm_timeline`] — Fig. 2: the LBM production run's per-rank
//!   timeline snapshots, model regularity vs. emergent desynchronised
//!   structure;
//! * [`noise_histogram`] — Fig. 3: natural system-noise histograms from
//!   the fitted presets.

use lbm_proxy::LbmDecomposition;
use mpisim::{Protocol, SimConfig};
use netmodel::presets::{emmy_models, PAPER_CORES_PER_SOCKET, PAPER_SOCKETS_PER_NODE};
use netmodel::{ClusterNetwork, DomainModels, Hockney, Machine, PointToPoint};
use noise_model::presets::SystemPreset;
use noise_model::{DelayDistribution, Histogram};
use simdes::stats::Summary;
use simdes::{SeedFactory, SimDuration, SimTime};
use stream_kernel::TriadScalingModel;
use workload::{Boundary, CommPattern, Direction, ExecModel};

use crate::experiment::WaveTrace;
use crate::spectrum;

// ---------------------------------------------------------------------
// Fig. 1: STREAM triad strong scaling
// ---------------------------------------------------------------------

/// Configuration of the Fig. 1 reproduction.
#[derive(Debug, Clone)]
pub struct StreamScalingConfig {
    /// The Eq. 1 model (also defines V_mem, V_net, and the network b/w).
    pub model: TriadScalingModel,
    /// Ranks per node: 20 (Fig. 1 a/b) or 1 (Fig. 1 c).
    pub ppn: u32,
    /// Simulator per-core bandwidth cap in bytes/s.
    pub core_bw_bps: f64,
    /// Simulator per-socket bandwidth ceiling in bytes/s.
    pub socket_bw_bps: f64,
    /// Total bulk-synchronous steps to simulate.
    pub steps: u32,
    /// Leading steps excluded from measurement (desynchronisation needs
    /// time to develop, cf. Fig. 2's structure emerging around t = 500).
    pub warmup_steps: u32,
    /// Noise injected into every execution phase.
    pub noise: DelayDistribution,
    /// Effective intra-node message bandwidth in bytes/s. On a socket
    /// whose memory interface is saturated by the application, shared-
    /// memory MPI copies compete for the same bandwidth, so intra-node
    /// messaging is far slower than an idle-system ping-pong would
    /// suggest. This contention is the main reason the paper's measured
    /// total performance falls ~2x below the (intra-node-blind) Eq. 1
    /// model at scale.
    pub intranode_bw_bps: f64,
    /// Master seed.
    pub seed: u64,
}

impl StreamScalingConfig {
    /// The paper's PPN = 20 setup on Emmy-like hardware.
    pub fn paper_ppn20() -> Self {
        StreamScalingConfig {
            model: TriadScalingModel::paper_ppn20(),
            ppn: 2 * PAPER_CORES_PER_SOCKET,
            core_bw_bps: 6.5e9,
            socket_bw_bps: 40e9,
            steps: 300,
            warmup_steps: 100,
            noise: noise_model::presets::emmy_smt_on(),
            intranode_bw_bps: 2e9,
            seed: 0xF161,
        }
    }

    /// The paper's PPN = 1 setup (one core per node).
    pub fn paper_ppn1() -> Self {
        StreamScalingConfig {
            model: TriadScalingModel::paper_ppn1(),
            ppn: 1,
            core_bw_bps: 40e9 / 6.0,
            socket_bw_bps: 40e9,
            steps: 300,
            warmup_steps: 100,
            noise: noise_model::presets::emmy_smt_on(),
            // One rank per node: the socket is unsaturated and intra-node
            // traffic does not occur anyway.
            intranode_bw_bps: 6e9,
            seed: 0x000F_161C,
        }
    }

    /// Build the simulator configuration for `domains` memory domains
    /// (sockets for PPN = 20, nodes for PPN = 1).
    ///
    /// # Panics
    ///
    /// If `domains` is zero, or below two for the PPN = 1 ring.
    pub fn sim_config(&self, domains: u32) -> SimConfig {
        assert!(domains >= 1, "need at least one domain");
        let (ranks, nodes) = if self.ppn == 1 {
            assert!(domains >= 2, "the PPN = 1 ring needs at least two nodes");
            (domains, domains)
        } else {
            let ranks = domains * PAPER_CORES_PER_SOCKET;
            (ranks, domains.div_ceil(PAPER_SOCKETS_PER_NODE))
        };
        // A periodic ring needs more than two ranks for distinct
        // neighbours; the two-rank case (PPN = 1 on two nodes) falls back
        // to an open chain.
        let boundary = if ranks > 2 {
            Boundary::Periodic
        } else {
            Boundary::Open
        };
        let machine = Machine::new(PAPER_CORES_PER_SOCKET, PAPER_SOCKETS_PER_NODE, nodes);
        let models = DomainModels {
            socket: PointToPoint::Hockney(Hockney::new(
                SimDuration::from_nanos(300),
                self.intranode_bw_bps,
            )),
            node: PointToPoint::Hockney(Hockney::new(
                SimDuration::from_nanos(600),
                self.intranode_bw_bps,
            )),
            network: emmy_models().network,
        };
        let network = ClusterNetwork::new(machine, self.ppn, ranks, models);
        let mut cfg = SimConfig::baseline(
            network,
            CommPattern::next_neighbor(Direction::Bidirectional, boundary),
            self.steps,
        );
        cfg.msg_bytes = self.model.vnet_bytes;
        cfg.protocol = Protocol::Auto {
            eager_limit: Protocol::PAPER_EAGER_LIMIT,
        };
        cfg.exec = ExecModel::MemoryBound {
            bytes: self.model.vmem_bytes / u64::from(cfg.ranks()),
            core_bw_bps: self.core_bw_bps,
            socket_bw_bps: self.socket_bw_bps,
        };
        cfg.noise = self.noise.clone();
        cfg.serialize_sends = true;
        cfg.seed = SeedFactory::new(self.seed).derive("stream-scaling", u64::from(domains));
        cfg
    }
}

/// One point of the Fig. 1 scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamScalingPoint {
    /// Memory domains (sockets or nodes).
    pub domains: u32,
    /// Ranks simulated.
    pub ranks: u32,
    /// Eq. 1 total-performance prediction, Gflop/s.
    pub model_total_gflops: f64,
    /// Execution-only model prediction, Gflop/s.
    pub model_exec_gflops: f64,
    /// Simulated total performance, Gflop/s.
    pub measured_total_gflops: f64,
    /// Simulated execution-only performance (median over ranks), Gflop/s.
    pub measured_exec_gflops_median: f64,
    /// Minimum over ranks.
    pub measured_exec_gflops_min: f64,
    /// Maximum over ranks.
    pub measured_exec_gflops_max: f64,
}

/// Simulate one strong-scaling point.
pub fn stream_scaling_point(cfg: &StreamScalingConfig, domains: u32) -> StreamScalingPoint {
    let sim = cfg.sim_config(domains);
    let ranks = sim.ranks();
    let steps = sim.steps;
    let warmup = cfg.warmup_steps.min(steps - 1);
    let wt = WaveTrace::from_config(sim);

    let flop_total = 2.0 * cfg.model.elements() as f64;
    let window_steps = f64::from(steps - warmup);
    // Measurement window: from the end of the warmup step to run end.
    let warmup_end = (0..ranks)
        .map(|r| wt.trace.record(r, warmup.saturating_sub(1)).comm_end)
        .max()
        .unwrap_or(SimTime::ZERO);
    let window = wt.total_runtime().since(warmup_end).as_secs_f64();
    let measured_total = flop_total * window_steps / window / 1e9;

    // Per-rank execution performance over the window.
    let flop_rank = flop_total / f64::from(ranks);
    let per_rank: Vec<f64> = (0..ranks)
        .map(|r| {
            let mean_exec: f64 = (warmup..steps)
                .map(|s| wt.trace.record(r, s).exec_duration().as_secs_f64())
                .sum::<f64>()
                / window_steps;
            flop_rank / mean_exec / 1e9
        })
        .collect();
    let s = Summary::of(&per_rank).expect("per-rank rates are finite");

    StreamScalingPoint {
        domains,
        ranks,
        model_total_gflops: cfg.model.total_perf_flops(domains) / 1e9,
        model_exec_gflops: cfg.model.exec_perf_flops(domains) / 1e9,
        measured_total_gflops: measured_total,
        measured_exec_gflops_median: s.median * f64::from(ranks),
        measured_exec_gflops_min: s.min * f64::from(ranks),
        measured_exec_gflops_max: s.max * f64::from(ranks),
    }
}

/// Sweep several domain counts (the paper scans 1–9 sockets / up to 15
/// nodes).
pub fn stream_scaling_sweep(cfg: &StreamScalingConfig, domains: &[u32]) -> Vec<StreamScalingPoint> {
    domains
        .iter()
        .map(|&n| stream_scaling_point(cfg, n))
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 2: LBM timeline snapshots
// ---------------------------------------------------------------------

/// Configuration of the Fig. 2 reproduction.
#[derive(Debug, Clone)]
pub struct LbmTimelineConfig {
    /// Problem decomposition (paper: 302³ on 100 ranks).
    pub decomp: LbmDecomposition,
    /// Nodes in the allocation (paper: 5).
    pub nodes: u32,
    /// Ranks per node (paper: 20).
    pub ppn: u32,
    /// Per-core bandwidth cap, bytes/s.
    pub core_bw_bps: f64,
    /// Per-socket ceiling, bytes/s.
    pub socket_bw_bps: f64,
    /// Steps to simulate (paper: 10 000).
    pub steps: u32,
    /// Noise injected into execution phases.
    pub noise: DelayDistribution,
    /// Effective intra-node message bandwidth (memory-contended, see
    /// [`StreamScalingConfig::intranode_bw_bps`]).
    pub intranode_bw_bps: f64,
    /// Master seed.
    pub seed: u64,
}

impl LbmTimelineConfig {
    /// The paper's Fig. 2 configuration, scaled by `steps` (use 10 000 for
    /// the full run).
    pub fn paper(steps: u32) -> Self {
        LbmTimelineConfig {
            decomp: LbmDecomposition::paper_fig2(),
            nodes: 5,
            ppn: 20,
            core_bw_bps: 6.5e9,
            socket_bw_bps: 40e9,
            steps,
            noise: noise_model::presets::emmy_smt_on(),
            intranode_bw_bps: 2.5e9,
            seed: 0x01B3,
        }
    }

    /// Build the simulator configuration.
    pub fn sim_config(&self) -> SimConfig {
        let machine = Machine::new(PAPER_CORES_PER_SOCKET, PAPER_SOCKETS_PER_NODE, self.nodes);
        let models = DomainModels {
            socket: PointToPoint::Hockney(Hockney::new(
                SimDuration::from_nanos(300),
                self.intranode_bw_bps,
            )),
            node: PointToPoint::Hockney(Hockney::new(
                SimDuration::from_nanos(600),
                self.intranode_bw_bps,
            )),
            network: emmy_models().network,
        };
        let network = ClusterNetwork::new(machine, self.ppn, self.decomp.ranks, models);
        let mut cfg = SimConfig::baseline(
            network,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            self.steps,
        );
        cfg.msg_bytes = self.decomp.halo_bytes_per_neighbor();
        cfg.exec = ExecModel::MemoryBound {
            bytes: self.decomp.traffic_bytes_per_rank(),
            core_bw_bps: self.core_bw_bps,
            socket_bw_bps: self.socket_bw_bps,
        };
        cfg.noise = self.noise.clone();
        cfg.serialize_sends = true;
        cfg.seed = self.seed;
        cfg
    }

    /// Non-overlapping model time per step (the Eq. 1 analogue for LBM):
    /// contended execution plus serialized halo exchange.
    pub fn model_step_time(&self) -> SimDuration {
        let ranks_per_socket = self.ppn.div_ceil(PAPER_SOCKETS_PER_NODE);
        let rate = self
            .core_bw_bps
            .min(self.socket_bw_bps / f64::from(ranks_per_socket));
        let exec = self.decomp.traffic_bytes_per_rank() as f64 / rate;
        let comm = 2.0 * self.decomp.halo_bytes_per_neighbor() as f64 / 3e9;
        SimDuration::from_secs_f64(exec + comm)
    }
}

/// One timeline snapshot: where each rank stood when it finished `step`.
#[derive(Debug, Clone, PartialEq)]
pub struct LbmSnapshot {
    /// Time step of the snapshot (1-based like the paper's `t`).
    pub step: u32,
    /// Per-rank wall-clock completion of the step.
    pub finish: Vec<SimTime>,
    /// The regular model's prediction for this step.
    pub model: SimTime,
    /// Spread of the snapshot: max − min finish time (the "amplitude" of
    /// the emergent structure, ~0.3 s at t = 500 in the paper).
    pub amplitude: SimDuration,
    /// Wavelength (in ranks) of the dominant spatial mode of the skew
    /// profile — the paper reports a "fundamental wavelength equal to the
    /// size of the system".
    pub dominant_wavelength: f64,
}

/// Result of the Fig. 2 run.
#[derive(Debug, Clone, PartialEq)]
pub struct LbmTimeline {
    /// Snapshots at the requested steps.
    pub snapshots: Vec<LbmSnapshot>,
    /// Total simulated runtime.
    pub total_runtime: SimTime,
    /// Model-predicted total runtime.
    pub model_runtime: SimTime,
    /// Relative runtime deviation, positive when the real run is *faster*
    /// than the model (the paper measures ≈ +2.5 % at t = 10 000).
    pub speedup_vs_model: f64,
}

/// Run the Fig. 2 experiment and collect snapshots at `snapshot_steps`
/// (1-based step indices, e.g. the paper's {1, 20, 60, 100, 500, …}).
pub fn lbm_timeline(cfg: &LbmTimelineConfig, snapshot_steps: &[u32]) -> LbmTimeline {
    let sim = cfg.sim_config();
    let wt = WaveTrace::from_config(sim);
    let model_step = cfg.model_step_time();
    let snapshots = snapshot_steps
        .iter()
        .filter(|&&t| t >= 1 && t <= cfg.steps)
        .map(|&t| {
            let finish = wt.trace.step_front(t - 1);
            let min = finish.iter().min().copied().expect("ranks > 0");
            let max = finish.iter().max().copied().expect("ranks > 0");
            let skew = spectrum::step_skew_signal(&finish);
            let dominant_wavelength = spectrum::dominant_wavelength(&skew);
            LbmSnapshot {
                step: t,
                finish,
                model: SimTime::ZERO + model_step.times(u64::from(t)),
                amplitude: max.since(min),
                dominant_wavelength,
            }
        })
        .collect();
    let total = wt.total_runtime();
    let model_total = SimTime::ZERO + model_step.times(u64::from(cfg.steps));
    let speedup = (model_total.as_secs_f64() - total.as_secs_f64()) / model_total.as_secs_f64();
    LbmTimeline {
        snapshots,
        total_runtime: total,
        model_runtime: model_total,
        speedup_vs_model: speedup,
    }
}

// ---------------------------------------------------------------------
// Fig. 3: system-noise histograms
// ---------------------------------------------------------------------

/// Sample `samples` per-phase delays from a system-noise preset into a
/// histogram with `bins` bins of `bin_width` (the paper uses 3.3 × 10⁵
/// samples, 640 ns bins with SMT and 7.2 µs bins without).
pub fn noise_histogram(
    preset: SystemPreset,
    samples: u32,
    bin_width: SimDuration,
    bins: usize,
    seed: u64,
) -> Histogram {
    let dist = preset.distribution();
    let mut rng = SeedFactory::new(seed).stream("noise-histogram", preset as u64);
    let mut h = Histogram::new(bin_width, bins);
    for _ in 0..samples {
        h.record(dist.sample(&mut rng));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_point_shapes_hold_at_small_scale() {
        // Shrunken Fig. 1: fewer steps for test speed.
        let mut cfg = StreamScalingConfig::paper_ppn20();
        cfg.steps = 60;
        cfg.warmup_steps = 20;
        let p = stream_scaling_point(&cfg, 2);
        assert_eq!(p.ranks, 20);
        // Totals are in the right ballpark of the model (same order).
        assert!(p.measured_total_gflops > 0.2 * p.model_total_gflops);
        assert!(p.measured_total_gflops < 3.0 * p.model_total_gflops);
        // Execution-only measurement must not be SLOWER than the fully
        // contended model by more than a whisker (it can only gain from
        // desync overlap).
        assert!(
            p.measured_exec_gflops_median > 0.95 * p.model_exec_gflops,
            "exec median {} vs model {}",
            p.measured_exec_gflops_median,
            p.model_exec_gflops
        );
        assert!(p.measured_exec_gflops_min <= p.measured_exec_gflops_median);
        assert!(p.measured_exec_gflops_max >= p.measured_exec_gflops_median);
    }

    #[test]
    fn stream_sweep_total_grows_with_domains() {
        let mut cfg = StreamScalingConfig::paper_ppn20();
        cfg.steps = 40;
        cfg.warmup_steps = 10;
        let pts = stream_scaling_sweep(&cfg, &[1, 2, 4]);
        assert_eq!(pts.len(), 3);
        assert!(pts[2].measured_total_gflops > pts[0].measured_total_gflops);
        assert!(pts[2].model_total_gflops > pts[0].model_total_gflops);
    }

    #[test]
    fn ppn1_matches_model_closely() {
        // Fig. 1(c): with one rank per node there is no bandwidth
        // contention; the model should be accurate.
        let mut cfg = StreamScalingConfig::paper_ppn1();
        cfg.steps = 40;
        cfg.warmup_steps = 10;
        let p = stream_scaling_point(&cfg, 4);
        let ratio = p.measured_total_gflops / p.model_total_gflops;
        assert!(
            (0.85..=1.1).contains(&ratio),
            "PPN=1 measured/model ratio {ratio}"
        );
    }

    #[test]
    fn lbm_timeline_produces_snapshots_and_structure() {
        // Shrunken Fig. 2: 16³ box on 8 ranks over 2 nodes.
        let cfg = LbmTimelineConfig {
            decomp: LbmDecomposition {
                nx: 64,
                ny: 64,
                nz: 64,
                ranks: 8,
            },
            nodes: 2,
            ppn: 4,
            core_bw_bps: 6.5e9,
            socket_bw_bps: 13e9,
            steps: 200,
            noise: noise_model::presets::emmy_smt_on(),
            intranode_bw_bps: 2e9,
            seed: 42,
        };
        let tl = lbm_timeline(&cfg, &[1, 50, 200, 9999]);
        assert_eq!(
            tl.snapshots.len(),
            3,
            "out-of-range snapshot must be dropped"
        );
        assert_eq!(tl.snapshots[0].step, 1);
        assert_eq!(tl.snapshots[0].finish.len(), 8);
        // Later snapshots happen later.
        assert!(tl.snapshots[1].finish[0] > tl.snapshots[0].finish[0]);
        // Model prediction is monotone too.
        assert!(tl.snapshots[2].model > tl.snapshots[1].model);
        // The run should not be wildly slower than the model.
        assert!(
            tl.speedup_vs_model > -0.5,
            "speedup {}",
            tl.speedup_vs_model
        );
    }

    #[test]
    fn noise_histograms_match_preset_statistics() {
        let h = noise_histogram(
            SystemPreset::EmmySmtOn,
            100_000,
            SimDuration::from_nanos(640),
            64,
            1,
        );
        assert_eq!(h.total(), 100_000);
        let mean_us = h.mean().as_micros_f64();
        assert!((2.2..2.6).contains(&mean_us), "mean {mean_us}");
        assert!(h.max() <= SimDuration::from_micros(30));

        // The Omni-Path no-SMT preset shows its 660 us spike.
        let h2 = noise_histogram(
            SystemPreset::MeggieSmtOff,
            100_000,
            SimDuration::from_micros_f64(7.2),
            120,
            2,
        );
        let spike_bin = h2.peak_bin_from(40).expect("second mode exists");
        let spike_us = h2.bin_start(spike_bin).as_micros_f64();
        assert!((610.0..710.0).contains(&spike_us), "spike at {spike_us}");
    }
}
