//! Idle-period elimination by noise (paper Sec. V-B, Fig. 9).
//!
//! The paper's final experiment: a core-bound program with an injected
//! idle wave runs under increasing exponential noise. The wave-induced
//! *excess runtime* — total runtime with the wave minus total runtime of
//! the same noisy system without the wave — shrinks with the noise level
//! and vanishes around E ≈ 25 %: the wave is completely absorbed, making
//! the injected delay effectively free.

use simdes::{SimDuration, SimTime};

use crate::experiment::WaveExperiment;

/// Outcome of one elimination measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EliminationResult {
    /// Noise level E in percent.
    pub e_percent: f64,
    /// Total runtime with the injected wave.
    pub with_wave: SimTime,
    /// Total runtime of the identical noisy run without the wave.
    pub without_wave: SimTime,
    /// Wave-induced excess runtime (saturating at zero).
    pub excess: SimDuration,
    /// Excess as a fraction of the injected delay (1 = the full delay is
    /// visible in the runtime, 0 = completely absorbed).
    pub absorption_ratio: f64,
}

/// Run `base` (which must contain an injected delay) at noise level
/// `e_percent`, with and without the injection, and report the excess.
///
/// # Panics
///
/// If `base` has no injected delay.
pub fn measure_elimination(base: &WaveExperiment, e_percent: f64) -> EliminationResult {
    let injected = base.config().injections.max_duration();
    assert!(
        !injected.is_zero(),
        "elimination experiments need an injected delay"
    );
    let with = base.clone().noise_percent(e_percent).run();
    let mut quiet_cfg = base.clone().noise_percent(e_percent).into_config();
    quiet_cfg.injections = noise_model::InjectionPlan::none();
    let without = crate::experiment::WaveTrace::from_config(quiet_cfg);

    let t_with = with.total_runtime();
    let t_without = without.total_runtime();
    let excess = t_with.saturating_since(t_without);
    EliminationResult {
        e_percent,
        with_wave: t_with,
        without_wave: t_without,
        excess,
        absorption_ratio: excess.as_secs_f64() / injected.as_secs_f64(),
    }
}

/// Scan several noise levels (the Fig. 9 panels are E = 0, 20, 25 %).
pub fn elimination_scan(base: &WaveExperiment, levels: &[f64]) -> Vec<EliminationResult> {
    levels
        .iter()
        .map(|&e| measure_elimination(base, e))
        .collect()
}

/// Like [`measure_elimination`] but averaged over independent seeds: the
/// single-run excess is a difference of two noisy runtimes and carries
/// run-to-run variance of the order of the noise itself.
///
/// # Panics
///
/// If `seeds` is empty or `base` has no injected delay.
pub fn average_elimination(
    base: &WaveExperiment,
    e_percent: f64,
    seeds: &[u64],
) -> EliminationResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let injected = base.config().injections.max_duration();
    let results: Vec<EliminationResult> = seeds
        .iter()
        .map(|&s| measure_elimination(&base.clone().seed(s), e_percent))
        .collect();
    let n = results.len() as u64;
    let mean_with = results.iter().map(|r| r.with_wave.nanos()).sum::<u64>() / n;
    let mean_without = results.iter().map(|r| r.without_wave.nanos()).sum::<u64>() / n;
    let excess = SimDuration(mean_with.saturating_sub(mean_without));
    EliminationResult {
        e_percent,
        with_wave: SimTime(mean_with),
        without_wave: SimTime(mean_without),
        excess,
        absorption_ratio: excess.as_secs_f64() / injected.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Boundary, Direction};

    const MS: SimDuration = SimDuration::from_millis(1);

    /// A shrunken Fig. 9: bidirectional periodic ring, wave of four
    /// execution periods injected at rank 1, step 1.
    fn fig9_base(ranks: u32, steps: u32) -> WaveExperiment {
        WaveExperiment::flat_chain(ranks)
            .direction(Direction::Bidirectional)
            .boundary(Boundary::Periodic)
            .texec(MS.mul_f64(1.5))
            .steps(steps)
            .inject(1, 1, MS.times(6))
            .seed(3)
    }

    #[test]
    fn silent_system_shows_the_full_delay() {
        let r = measure_elimination(&fig9_base(36, 30), 0.0);
        // Excess runtime ~ the injected 6 ms (paper Fig. 9a).
        let excess_ms = r.excess.as_millis_f64();
        assert!(
            (5.4..=6.6).contains(&excess_ms),
            "noise-free excess should be ~6 ms, got {excess_ms}"
        );
        assert!(r.absorption_ratio > 0.9);
    }

    #[test]
    fn noise_increases_total_runtime_but_absorbs_the_wave() {
        let base = fig9_base(36, 30);
        let seeds: Vec<u64> = (10..16).collect();
        let quiet = average_elimination(&base, 0.0, &seeds);
        let noisy = average_elimination(&base, 25.0, &seeds);
        // Noise makes everything slower...
        assert!(noisy.without_wave > quiet.without_wave);
        // ...but eats the wave-induced excess (paper Fig. 9c: no excess).
        assert!(
            noisy.excess < quiet.excess,
            "excess must shrink: quiet {} noisy {}",
            quiet.excess,
            noisy.excess
        );
        assert!(
            noisy.absorption_ratio < 0.6,
            "at E=25% most of the wave should be absorbed, ratio {}",
            noisy.absorption_ratio
        );
        assert!(quiet.absorption_ratio > 0.9);
    }

    #[test]
    fn scan_is_monotone_in_the_shrunken_setup() {
        let base = fig9_base(24, 24);
        let rows = elimination_scan(&base, &[0.0, 20.0, 25.0]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].excess >= rows[2].excess);
        // Runtimes with noise exceed the noise-free runtime (Fig. 9's
        // t_total ordering: 51.1 < 82.7 ~ 84.6 ms).
        assert!(rows[1].with_wave > rows[0].with_wave);
    }

    #[test]
    #[should_panic(expected = "need an injected delay")]
    fn elimination_requires_injection() {
        let base = WaveExperiment::flat_chain(8).texec(MS).steps(4);
        measure_elimination(&base, 10.0);
    }
}
