//! Leading- vs. trailing-edge behaviour of idle waves under noise.
//!
//! Paper Sec. IV-C: "even in a noisy system the propagation speed along
//! the 'forward', i.e., the leading slope of an idle wave is hardly
//! changed from v_silent, while the trailing slope is strongly
//! influenced by it" — noise and accumulated past delays interact with
//! the trailing edge (the idle period acts as a buffer), while the
//! leading edge's exposure to noise is bounded by one chain traversal.
//!
//! The leading edge at a rank is the moment waiting begins; the trailing
//! edge is the moment waiting ends (the rank resumes execution). On a
//! silent system both move at `v_silent`; under noise the trailing edge
//! moves faster (the wave shrinks), and we quantify both.

use simdes::stats::linear_fit;
use simdes::SimDuration;

use crate::experiment::WaveTrace;
use crate::wavefront::{arrivals_from, Walk};

/// Fitted speeds of both wave edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeSpeeds {
    /// Leading-edge (waiting begins) speed, ranks/s.
    pub leading: f64,
    /// Trailing-edge (waiting ends) speed, ranks/s.
    pub trailing: f64,
    /// Fit quality of the leading edge.
    pub leading_r2: f64,
    /// Fit quality of the trailing edge.
    pub trailing_r2: f64,
    /// Hops used.
    pub hops: usize,
}

/// Fit both edge speeds walking `walk`-ward from `source`. Returns
/// `None` with fewer than three detectable arrivals.
pub fn edge_speeds(
    wt: &WaveTrace,
    source: u32,
    walk: Walk,
    threshold: SimDuration,
) -> Option<EdgeSpeeds> {
    let arrivals = arrivals_from(wt, source, walk, threshold);
    if arrivals.len() < 3 {
        return None;
    }
    let leading_pts: Vec<(f64, f64)> = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| (a.time.as_secs_f64(), (i + 1) as f64))
        .collect();
    let trailing_pts: Vec<(f64, f64)> = arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let rec = wt.trace.record(a.rank, a.step);
            (rec.comm_end.as_secs_f64(), (i + 1) as f64)
        })
        .collect();
    let lead = linear_fit(&leading_pts)?;
    let trail = linear_fit(&trailing_pts)?;
    Some(EdgeSpeeds {
        leading: lead.slope,
        trailing: trail.slope,
        leading_r2: lead.r2,
        trailing_r2: trail.r2,
        hops: arrivals.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WaveExperiment;
    use crate::model::predicted_speed;
    use workload::Boundary;

    const MS: SimDuration = SimDuration::from_millis(1);

    fn run(e_percent: f64, seed: u64) -> WaveTrace {
        WaveExperiment::flat_chain(40)
            .boundary(Boundary::Periodic)
            .texec(MS.times(3))
            .steps(50)
            .inject(2, 0, MS.times(45))
            .noise_percent(e_percent)
            .seed(seed)
            .run()
    }

    #[test]
    fn silent_system_edges_coincide() {
        let wt = run(0.0, 1);
        let th = wt.default_threshold();
        let e = edge_speeds(&wt, 2, Walk::Up, th).expect("wave present");
        let v = predicted_speed(&wt.cfg);
        assert!(
            (e.leading / v - 1.0).abs() < 0.02,
            "leading {} vs {v}",
            e.leading
        );
        assert!(
            (e.trailing / v - 1.0).abs() < 0.02,
            "trailing {} vs {v}",
            e.trailing
        );
        assert!(e.leading_r2 > 0.999 && e.trailing_r2 > 0.999);
    }

    #[test]
    fn noise_leaves_leading_edge_but_accelerates_trailing_edge() {
        // The leading edge of a wave in a noisy system rides on the
        // *noisy* collective pace (every undisturbed rank is equally
        // slowed), so the reference speed is one rank per measured noisy
        // step, not the silent v_silent. Average over seeds: single-run
        // edge fits are noisy.
        let mut lead_ratio = 0.0;
        let mut trail_ratio = 0.0;
        let n = 6;
        for seed in 0..n {
            let wt = run(8.0, seed);
            let th = wt.default_threshold();
            let e = edge_speeds(&wt, 2, Walk::Up, th).expect("wave survives a while");

            // Noisy baseline pace from the same system without the wave.
            let mut quiet_cfg = wt.cfg.clone();
            quiet_cfg.injections = noise_model::InjectionPlan::none();
            let quiet = WaveTrace::from_config(quiet_cfg);
            let steps = f64::from(quiet.trace.steps());
            let noisy_step = quiet.total_runtime().as_secs_f64() / steps;
            let v_noisy = 1.0 / noisy_step;

            lead_ratio += e.leading / v_noisy;
            trail_ratio += e.trailing / v_noisy;
        }
        lead_ratio /= n as f64;
        trail_ratio /= n as f64;
        // Paper: leading edge hardly changed (relative to the system's
        // own pace).
        assert!(
            (lead_ratio - 1.0).abs() < 0.06,
            "leading edge drifted: ratio {lead_ratio}"
        );
        // Trailing edge visibly faster: the wave is being eaten from
        // behind.
        assert!(
            trail_ratio > lead_ratio + 0.01,
            "trailing ({trail_ratio}) should outrun leading ({lead_ratio})"
        );
    }

    #[test]
    fn too_short_wave_yields_none() {
        let wt = WaveExperiment::flat_chain(6).texec(MS).steps(3).run(); // no injection at all
        let th = wt.default_threshold();
        assert!(edge_speeds(&wt, 2, Walk::Up, th).is_none());
    }
}
