//! Result-returning run paths.
//!
//! The original engine panicked on every failure mode (invalid config,
//! deadlock). That is fine for the paper-figure binaries but wrong for
//! library callers — in particular the supervised sweep runner, which
//! must distinguish "this scenario's fault plan starves the run" from
//! "the harness itself is broken". [`SimError`] carries those outcomes as
//! values; the panicking entry points remain as thin wrappers.

use std::error::Error;
use std::fmt;

use simdes::SimTime;

use crate::diag::{render_report, Diagnostic};

/// Why a simulation run failed to produce a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration was rejected before the first event.
    InvalidConfig(
        /// The rejecting diagnostics (at least one error).
        Vec<Diagnostic>,
    ),
    /// The event queue drained with unfinished ranks: a configuration
    /// deadlock, a fail-stop crash, or a lost transfer starved the run.
    Stalled {
        /// Ranks that reached their final step.
        done: u32,
        /// Total ranks in the job.
        ranks: u32,
        /// Human-readable wait-for analysis from the engine.
        report: String,
    },
    /// A [`RunLimits`] budget was exceeded: the scenario is live but ran
    /// past the caller's sim-time or event allowance.
    Watchdog {
        /// Sim time when the budget tripped.
        at: SimTime,
        /// Events processed so far.
        events: u64,
        /// Which budget tripped, e.g. `"sim time budget 12ms exceeded"`.
        why: String,
    },
    /// A checkpoint snapshot was rejected at decode or restore time:
    /// unsupported version (`RT003`), torn/corrupt payload (`RT004`), or a
    /// snapshot taken under a different configuration (`RT005`).
    Snapshot(
        /// The rejecting diagnostic, carrying the RT code and detail.
        Diagnostic,
    ),
}

impl SimError {
    /// This failure as `RT0xx` runtime diagnostics, one per line of
    /// detail, for uniform rendering next to `simcheck`'s static `SC0xx`
    /// codes.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        match self {
            SimError::InvalidConfig(diags) => diags,
            SimError::Stalled {
                done,
                ranks,
                report,
            } => vec![Diagnostic::error(
                "RT001",
                "run",
                format!("{done}/{ranks} ranks finished"),
                report,
            )],
            SimError::Watchdog { at, events, why } => vec![Diagnostic::error(
                "RT002",
                "run",
                format!("t = {at}, {events} events"),
                why,
            )],
            SimError::Snapshot(diag) => vec![diag],
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(diags) => {
                write!(f, "invalid SimConfig:\n{}", render_report(diags))
            }
            SimError::Stalled {
                done,
                ranks,
                report,
            } => write!(
                f,
                "simulation stalled with {done}/{ranks} ranks finished:\n{report}"
            ),
            SimError::Watchdog { at, events, why } => {
                write!(
                    f,
                    "watchdog tripped at t = {at} after {events} events: {why}"
                )
            }
            SimError::Snapshot(diag) => write!(f, "snapshot rejected: {diag}"),
        }
    }
}

impl Error for SimError {}

/// Optional budgets for a supervised run. The defaults impose no limits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunLimits {
    /// Abort with [`SimError::Watchdog`] when the next event lies past
    /// this sim time.
    pub max_sim_time: Option<SimTime>,
    /// Abort with [`SimError::Watchdog`] after this many events.
    pub max_events: Option<u64>,
}

impl RunLimits {
    /// No budgets: the run is bounded only by its own event supply.
    pub fn none() -> Self {
        RunLimits::default()
    }

    /// Budget only sim time.
    pub fn sim_time(t: SimTime) -> Self {
        RunLimits {
            max_sim_time: Some(t),
            max_events: None,
        }
    }

    /// Budget only event count.
    pub fn events(n: u64) -> Self {
        RunLimits {
            max_sim_time: None,
            max_events: Some(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use simdes::SimDuration;

    use super::*;

    #[test]
    fn display_and_diagnostics_carry_the_detail() {
        let e = SimError::Stalled {
            done: 3,
            ranks: 8,
            report: "rank 4 crashed (fail-stop)".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("3/8 ranks finished"), "{text}");
        assert!(text.contains("fail-stop"), "{text}");
        let diags = e.into_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RT001");
        assert!(diags[0].is_error());

        let w = SimError::Watchdog {
            at: SimTime(5_000),
            events: 12,
            why: format!("sim time budget {} exceeded", SimDuration::from_micros(5)),
        };
        assert_eq!(w.clone().into_diagnostics()[0].code, "RT002");
        assert!(w.to_string().contains("after 12 events"), "{w}");
    }

    #[test]
    fn limits_constructors() {
        assert_eq!(RunLimits::none(), RunLimits::default());
        assert_eq!(
            RunLimits::sim_time(SimTime(9)).max_sim_time,
            Some(SimTime(9))
        );
        assert_eq!(RunLimits::events(7).max_events, Some(7));
    }
}
