//! Deterministic fault injection.
//!
//! The paper injects exactly one kind of fault — a one-off compute delay —
//! and studies its propagation. A [`FaultPlan`] generalizes the injection
//! machinery to the fault classes a production message-passing system
//! actually sees, while keeping the simulation bit-reproducible:
//!
//! * **Message faults** ([`MessageFaults`]): every payload, RTS, and CTS
//!   transfer is dropped or corrupted with a seeded per-directed-link
//!   probability. A failed copy triggers a sender-side retransmission
//!   after a timeout with capped exponential backoff; when the retry
//!   budget is exhausted the transfer is *lost* and the run ends in a
//!   [`crate::SimError::Stalled`] report instead of a trace.
//! * **Link degradation** ([`LinkDegradation`]): over a sim-time window, a
//!   directed link (or all links) has its latency stretched and its
//!   bandwidth divided by constant factors (see
//!   `netmodel::PointToPoint::degraded`).
//! * **Rank faults** ([`RankFault`]): a rank stalls for a fixed duration
//!   at the start of a step's execution phase, or crashes there — either
//!   recovering after a configurable outage (the outage time is accounted
//!   like an injected delay) or fail-stop, never finishing the run.
//!
//! Everything flows through the existing event queue with RNG streams
//! derived from the master seed (`"fault-link"` per directed link), so a
//! fault-injected trace is bit-identical across re-runs and thread counts
//! for a fixed seed. Retransmission delays are computed *at send time*:
//! the engine draws the fate of every copy up front and schedules the
//! final successful copy's arrival directly, which keeps the event count
//! per transfer at one.
//!
//! Semantics, diagnostics (SC013–SC016), and worked examples are
//! documented in `docs/FAULTS.md`.

use simdes::{SimDuration, SimRng, SimTime};
use tracefmt::json::{self, field_or_default, FromJson, Json, ToJson};

use crate::diag::Diagnostic;

/// Per-transfer drop/corrupt faults with timeout + retransmission.
///
/// Each copy of a transfer is dropped with probability `drop_prob`; a
/// delivered copy is corrupted (delivered but rejected by the receiver's
/// checksum) with probability `corrupt_prob`. Either failure makes the
/// sender wait one retransmission timeout and send a fresh copy; the
/// timeout starts at `rto` and multiplies by `backoff` per failure, capped
/// at `max_rto`. After `max_retries` retransmissions the transfer is lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageFaults {
    /// Probability that one copy never arrives.
    pub drop_prob: f64,
    /// Probability that an arriving copy is rejected as corrupt.
    pub corrupt_prob: f64,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Multiplicative backoff factor per failed copy (≥ 1).
    pub backoff: f64,
    /// Upper bound on the backed-off timeout.
    pub max_rto: SimDuration,
    /// Retransmissions allowed per transfer before it counts as lost.
    pub max_retries: u32,
}

impl Default for MessageFaults {
    /// Lossless defaults with TCP-flavoured retransmission parameters:
    /// 100 µs initial timeout, doubling per failure, capped at 10 ms,
    /// 16 retries.
    fn default() -> Self {
        MessageFaults {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            rto: SimDuration::from_micros(100),
            backoff: 2.0,
            max_rto: SimDuration::from_millis(10),
            max_retries: 16,
        }
    }
}

/// The sampled fate of one transfer under [`MessageFaults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// A copy eventually arrived intact.
    Delivered {
        /// Copies sent in total (1 = no failures).
        attempts: u32,
        /// Copies that were dropped in flight.
        dropped: u32,
        /// Copies that arrived corrupt.
        corrupted: u32,
        /// Total backoff delay accumulated before the successful copy
        /// departed.
        extra_delay: SimDuration,
    },
    /// Every copy failed; the transfer is lost for good.
    Lost {
        /// Copies sent in total.
        attempts: u32,
        /// Copies that were dropped in flight.
        dropped: u32,
        /// Copies that arrived corrupt.
        corrupted: u32,
    },
}

impl MessageFaults {
    /// Do these parameters ever fail a transfer?
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.corrupt_prob > 0.0
    }

    /// Sample the complete fate of one transfer from `rng`: how many
    /// copies fail (and how), and the total backoff delay before the
    /// successful copy departs. Deterministic given the RNG state; the
    /// engine owns one stream per directed link.
    pub fn sample_delivery(&self, rng: &mut SimRng) -> Delivery {
        let mut extra = SimDuration::ZERO;
        let mut rto = self.rto.min(self.max_rto);
        let mut dropped = 0u32;
        let mut corrupted = 0u32;
        for attempt in 0..=self.max_retries {
            let is_dropped = self.drop_prob > 0.0 && rng.chance(self.drop_prob);
            let is_corrupted =
                !is_dropped && self.corrupt_prob > 0.0 && rng.chance(self.corrupt_prob);
            if !is_dropped && !is_corrupted {
                return Delivery::Delivered {
                    attempts: attempt + 1,
                    dropped,
                    corrupted,
                    extra_delay: extra,
                };
            }
            if is_dropped {
                dropped += 1;
            } else {
                corrupted += 1;
            }
            extra += rto;
            rto = rto.mul_f64(self.backoff).min(self.max_rto);
        }
        Delivery::Lost {
            attempts: self.max_retries + 1,
            dropped,
            corrupted,
        }
    }

    /// Worst-case extra delay a delivered transfer can accumulate: the sum
    /// of all `max_retries` backed-off timeouts.
    pub fn max_extra_delay(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut rto = self.rto.min(self.max_rto);
        for _ in 0..self.max_retries {
            total += rto;
            rto = rto.mul_f64(self.backoff).min(self.max_rto);
        }
        total
    }
}

/// A latency/bandwidth degradation of a link over a sim-time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Directed `(src, dst)` pair the degradation applies to; `None`
    /// degrades every link.
    pub link: Option<(u32, u32)>,
    /// Latency terms are multiplied by this (≥ 1 slows the link down).
    pub latency_factor: f64,
    /// Effective bandwidth is divided by this (≥ 1 slows the link down).
    pub bandwidth_factor: f64,
}

impl LinkDegradation {
    /// Does this window degrade a transfer departing `src -> dst` at
    /// `now`?
    pub fn applies_to(&self, src: u32, dst: u32, now: SimTime) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        match self.link {
            None => true,
            Some((a, b)) => a == src && b == dst,
        }
    }
}

/// What happens to a crashed rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashOutcome {
    /// The rank is down for the outage, then resumes the step where it
    /// crashed. The outage is accounted like an injected delay.
    Recovers(SimDuration),
    /// Fail-stop: the rank never comes back, so the run cannot complete
    /// and ends in a [`crate::SimError::Stalled`] report.
    FailStop,
}

/// The kind of a per-rank fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankFaultKind {
    /// The rank stalls (busy, not crashed) for `duration` at the start of
    /// the step's execution phase.
    Stall {
        /// How long the rank stalls.
        duration: SimDuration,
    },
    /// The rank crashes at the start of the step's execution phase.
    Crash {
        /// `Some(outage)` = down for `outage` then recovered; `None` =
        /// fail-stop.
        outage: Option<SimDuration>,
    },
}

/// One per-rank fault, pinned to a `(rank, step)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFault {
    /// The faulty rank.
    pub rank: u32,
    /// Zero-based step at whose execution phase the fault strikes.
    pub step: u32,
    /// What happens.
    pub kind: RankFaultKind,
}

/// A complete deterministic fault plan, attached to
/// [`crate::SimConfig::faults`]. The default plan is empty (no faults).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-transfer drop/corrupt faults, `None` for lossless links.
    pub messages: Option<MessageFaults>,
    /// Link degradation windows (all applicable windows compose
    /// multiplicatively).
    pub degradations: Vec<LinkDegradation>,
    /// Rank stalls and crashes.
    pub rank_faults: Vec<RankFault>,
}

impl FaultPlan {
    /// The empty plan: a fault-free run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Does this plan inject anything at all?
    pub fn is_empty(&self) -> bool {
        !self.messages.is_some_and(|m| m.is_active())
            && self.degradations.is_empty()
            && self.rank_faults.is_empty()
    }

    /// Attach message drop/corrupt faults.
    pub fn with_messages(mut self, m: MessageFaults) -> Self {
        self.messages = Some(m);
        self
    }

    /// Convenience: drop each transfer copy with probability `drop_prob`,
    /// retransmitting after `rto` (exponential backoff, library
    /// defaults for the rest).
    pub fn with_drops(self, drop_prob: f64, rto: SimDuration) -> Self {
        self.with_messages(MessageFaults {
            drop_prob,
            rto,
            ..MessageFaults::default()
        })
    }

    /// Add a link degradation window.
    pub fn with_degradation(mut self, d: LinkDegradation) -> Self {
        self.degradations.push(d);
        self
    }

    /// Add a stall of `duration` at `(rank, step)`.
    pub fn with_stall(mut self, rank: u32, step: u32, duration: SimDuration) -> Self {
        self.rank_faults.push(RankFault {
            rank,
            step,
            kind: RankFaultKind::Stall { duration },
        });
        self
    }

    /// Add a crash at `(rank, step)`; `outage` as in
    /// [`RankFaultKind::Crash`].
    pub fn with_crash(mut self, rank: u32, step: u32, outage: Option<SimDuration>) -> Self {
        self.rank_faults.push(RankFault {
            rank,
            step,
            kind: RankFaultKind::Crash { outage },
        });
        self
    }

    /// Total stall time injected at `(rank, step)` (stalls accumulate).
    pub fn stall_for(&self, rank: u32, step: u32) -> SimDuration {
        self.rank_faults
            .iter()
            .filter(|f| f.rank == rank && f.step == step)
            .filter_map(|f| match f.kind {
                RankFaultKind::Stall { duration } => Some(duration),
                RankFaultKind::Crash { .. } => None,
            })
            .sum()
    }

    /// The crash outcome at `(rank, step)`, if any. A fail-stop crash
    /// dominates any recovering crash at the same spot; multiple
    /// recovering crashes accumulate their outages.
    pub fn crash_for(&self, rank: u32, step: u32) -> Option<CrashOutcome> {
        let mut outage = SimDuration::ZERO;
        let mut any = false;
        for f in self
            .rank_faults
            .iter()
            .filter(|f| f.rank == rank && f.step == step)
        {
            match f.kind {
                RankFaultKind::Crash { outage: None } => return Some(CrashOutcome::FailStop),
                RankFaultKind::Crash { outage: Some(d) } => {
                    outage += d;
                    any = true;
                }
                RankFaultKind::Stall { .. } => {}
            }
        }
        any.then_some(CrashOutcome::Recovers(outage))
    }

    /// Composite `(latency_factor, bandwidth_factor)` for a transfer
    /// departing `src -> dst` at `now`, or `None` when no window applies.
    pub fn degradation_at(&self, src: u32, dst: u32, now: SimTime) -> Option<(f64, f64)> {
        let mut lf = 1.0;
        let mut bf = 1.0;
        let mut any = false;
        for d in &self.degradations {
            if d.applies_to(src, dst, now) {
                lf *= d.latency_factor;
                bf *= d.bandwidth_factor;
                any = true;
            }
        }
        any.then_some((lf, bf))
    }

    /// Total extra execution time this plan injects through rank faults
    /// (stalls plus recoverable outages) — the sweep runner's sim-time
    /// watchdog budgets for this.
    pub fn total_rank_fault_delay(&self) -> SimDuration {
        self.rank_faults
            .iter()
            .map(|f| match f.kind {
                RankFaultKind::Stall { duration } => duration,
                RankFaultKind::Crash { outage } => outage.unwrap_or(SimDuration::ZERO),
            })
            .sum()
    }

    /// Field-level validity of the plan against a job of `ranks` ranks and
    /// `steps` steps, reported as `SC013` diagnostics. Deeper feasibility
    /// analysis (retransmission timing, guaranteed loss, dead windows) is
    /// `simcheck`'s job (SC014–SC016).
    pub fn check(&self, ranks: u32, steps: u32) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if let Some(m) = &self.messages {
            for (field, p) in [
                ("faults.messages.drop_prob", m.drop_prob),
                ("faults.messages.corrupt_prob", m.corrupt_prob),
            ] {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    out.push(Diagnostic::error(
                        "SC013",
                        field,
                        p,
                        "probabilities must lie in [0, 1]",
                    ));
                }
            }
            if !m.backoff.is_finite() || m.backoff < 1.0 {
                out.push(Diagnostic::error(
                    "SC013",
                    "faults.messages.backoff",
                    m.backoff,
                    "backoff factor must be finite and >= 1",
                ));
            }
            if m.is_active() && m.rto.is_zero() {
                out.push(Diagnostic::error(
                    "SC013",
                    "faults.messages.rto",
                    m.rto,
                    "active message faults need a nonzero retransmission timeout",
                ));
            }
            if m.max_rto < m.rto {
                out.push(Diagnostic::error(
                    "SC013",
                    "faults.messages.max_rto",
                    m.max_rto,
                    format!("backoff cap below the initial timeout {}", m.rto),
                ));
            }
        }
        for (i, d) in self.degradations.iter().enumerate() {
            if d.from >= d.until {
                out.push(Diagnostic::error(
                    "SC013",
                    format!("faults.degradations[{i}]"),
                    format!("[{}, {})", d.from, d.until),
                    "degradation window is empty or inverted",
                ));
            }
            for (part, f) in [
                (
                    format!("faults.degradations[{i}].latency_factor"),
                    d.latency_factor,
                ),
                (
                    format!("faults.degradations[{i}].bandwidth_factor"),
                    d.bandwidth_factor,
                ),
            ] {
                if !f.is_finite() || f <= 0.0 {
                    out.push(Diagnostic::error(
                        "SC013",
                        part,
                        f,
                        "degradation factors must be positive and finite",
                    ));
                } else if f < 1.0 {
                    out.push(Diagnostic::note(
                        "SC013",
                        part,
                        f,
                        "factor below 1 speeds the link up (not a degradation)",
                    ));
                }
            }
            if let Some((a, b)) = d.link {
                for (part, r) in [("src", a), ("dst", b)] {
                    if r >= ranks {
                        out.push(Diagnostic::error(
                            "SC013",
                            format!("faults.degradations[{i}].link.{part}"),
                            r,
                            format!("rank {r} outside the {ranks}-rank job"),
                        ));
                    }
                }
            }
        }
        for (i, f) in self.rank_faults.iter().enumerate() {
            if f.rank >= ranks {
                out.push(Diagnostic::error(
                    "SC013",
                    format!("faults.rank_faults[{i}].rank"),
                    f.rank,
                    format!("fault at rank {} but job has {ranks} ranks", f.rank),
                ));
            }
            if f.step >= steps {
                out.push(Diagnostic::error(
                    "SC013",
                    format!("faults.rank_faults[{i}].step"),
                    f.step,
                    format!("fault at step {} but run has {steps} steps", f.step),
                ));
            }
            if let RankFaultKind::Stall { duration } = f.kind {
                if duration.is_zero() {
                    out.push(Diagnostic::note(
                        "SC013",
                        format!("faults.rank_faults[{i}].duration"),
                        duration,
                        "zero-duration stall has no effect",
                    ));
                }
            }
        }
        out
    }
}

impl ToJson for MessageFaults {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("drop_prob", self.drop_prob.to_json()),
            ("corrupt_prob", self.corrupt_prob.to_json()),
            ("rto", self.rto.to_json()),
            ("backoff", self.backoff.to_json()),
            ("max_rto", self.max_rto.to_json()),
            ("max_retries", self.max_retries.to_json()),
        ])
    }
}

impl FromJson for MessageFaults {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(MessageFaults {
            drop_prob: f64::from_json(v.field("drop_prob")?)?,
            corrupt_prob: f64::from_json(v.field("corrupt_prob")?)?,
            rto: SimDuration::from_json(v.field("rto")?)?,
            backoff: f64::from_json(v.field("backoff")?)?,
            max_rto: SimDuration::from_json(v.field("max_rto")?)?,
            max_retries: u32::from_json(v.field("max_retries")?)?,
        })
    }
}

impl ToJson for LinkDegradation {
    fn to_json(&self) -> Json {
        let link = match self.link {
            Some((a, b)) => Json::Array(vec![a.to_json(), b.to_json()]),
            None => Json::Null,
        };
        Json::obj(vec![
            ("from", self.from.to_json()),
            ("until", self.until.to_json()),
            ("link", link),
            ("latency_factor", self.latency_factor.to_json()),
            ("bandwidth_factor", self.bandwidth_factor.to_json()),
        ])
    }
}

impl FromJson for LinkDegradation {
    fn from_json(v: &Json) -> json::Result<Self> {
        let link = match v.field("link")? {
            Json::Null => None,
            other => {
                let pair = other.expect_array()?;
                if pair.len() != 2 {
                    return Err(json::JsonError(format!(
                        "link must be [src, dst], got {} elements",
                        pair.len()
                    )));
                }
                Some((u32::from_json(&pair[0])?, u32::from_json(&pair[1])?))
            }
        };
        Ok(LinkDegradation {
            from: SimTime::from_json(v.field("from")?)?,
            until: SimTime::from_json(v.field("until")?)?,
            link,
            latency_factor: f64::from_json(v.field("latency_factor")?)?,
            bandwidth_factor: f64::from_json(v.field("bandwidth_factor")?)?,
        })
    }
}

impl ToJson for RankFaultKind {
    fn to_json(&self) -> Json {
        match *self {
            RankFaultKind::Stall { duration } => Json::obj(vec![(
                "Stall",
                Json::obj(vec![("duration", duration.to_json())]),
            )]),
            RankFaultKind::Crash { outage } => Json::obj(vec![(
                "Crash",
                Json::obj(vec![("outage", outage.to_json())]),
            )]),
        }
    }
}

impl FromJson for RankFaultKind {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (variant, p) = v.expect_variant()?;
        match variant {
            "Stall" => Ok(RankFaultKind::Stall {
                duration: SimDuration::from_json(p.field("duration")?)?,
            }),
            "Crash" => Ok(RankFaultKind::Crash {
                outage: Option::<SimDuration>::from_json(p.field("outage")?)?,
            }),
            other => Err(json::JsonError(format!(
                "unknown RankFaultKind variant '{other}'"
            ))),
        }
    }
}

impl ToJson for RankFault {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", self.rank.to_json()),
            ("step", self.step.to_json()),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for RankFault {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(RankFault {
            rank: u32::from_json(v.field("rank")?)?,
            step: u32::from_json(v.field("step")?)?,
            kind: RankFaultKind::from_json(v.field("kind")?)?,
        })
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("messages", self.messages.to_json()),
            ("degradations", self.degradations.to_json()),
            ("rank_faults", self.rank_faults.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(FaultPlan {
            messages: field_or_default(v, "messages")?,
            degradations: field_or_default(v, "degradations")?,
            rank_faults: field_or_default(v, "rank_faults")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdes::SeedFactory;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.stall_for(0, 0), SimDuration::ZERO);
        assert_eq!(p.crash_for(0, 0), None);
        assert_eq!(p.degradation_at(0, 1, SimTime::ZERO), None);
        assert!(p.check(8, 10).is_empty());
        // Inactive message faults (zero probabilities) keep the plan empty.
        assert!(FaultPlan::none()
            .with_messages(MessageFaults::default())
            .is_empty());
    }

    #[test]
    fn sample_delivery_is_clean_without_probabilities() {
        let m = MessageFaults::default();
        let mut rng = SeedFactory::new(1).stream("fault-link", 0);
        assert_eq!(
            m.sample_delivery(&mut rng),
            Delivery::Delivered {
                attempts: 1,
                dropped: 0,
                corrupted: 0,
                extra_delay: SimDuration::ZERO,
            }
        );
    }

    #[test]
    fn certain_drop_exhausts_retries_with_backoff() {
        let m = MessageFaults {
            drop_prob: 1.0,
            rto: MS,
            backoff: 2.0,
            max_rto: MS.times(4),
            max_retries: 3,
            ..MessageFaults::default()
        };
        let mut rng = SeedFactory::new(1).stream("fault-link", 0);
        assert_eq!(
            m.sample_delivery(&mut rng),
            Delivery::Lost {
                attempts: 4,
                dropped: 4,
                corrupted: 0,
            }
        );
        // Backoff sum: 1 + 2 + 4 (capped) = 7 ms.
        assert_eq!(m.max_extra_delay(), MS.times(7));
    }

    #[test]
    fn certain_corruption_counts_separately_from_drops() {
        let m = MessageFaults {
            corrupt_prob: 1.0,
            rto: MS,
            max_retries: 2,
            ..MessageFaults::default()
        };
        let mut rng = SeedFactory::new(1).stream("fault-link", 0);
        let Delivery::Lost {
            dropped, corrupted, ..
        } = m.sample_delivery(&mut rng)
        else {
            panic!("certain corruption must lose the transfer");
        };
        assert_eq!((dropped, corrupted), (0, 3));
    }

    #[test]
    fn sample_delivery_is_deterministic_per_stream() {
        let m = MessageFaults {
            drop_prob: 0.5,
            rto: MS,
            ..MessageFaults::default()
        };
        let seeds = SeedFactory::new(42);
        let mut a = seeds.stream("fault-link", 3);
        let mut b = seeds.stream("fault-link", 3);
        for _ in 0..64 {
            assert_eq!(m.sample_delivery(&mut a), m.sample_delivery(&mut b));
        }
    }

    #[test]
    fn stall_and_crash_lookups() {
        let p = FaultPlan::none()
            .with_stall(2, 1, MS.times(3))
            .with_stall(2, 1, MS)
            .with_crash(4, 0, Some(MS.times(5)))
            .with_crash(5, 2, None);
        assert_eq!(p.stall_for(2, 1), MS.times(4));
        assert_eq!(p.stall_for(2, 0), SimDuration::ZERO);
        assert_eq!(p.crash_for(4, 0), Some(CrashOutcome::Recovers(MS.times(5))));
        assert_eq!(p.crash_for(5, 2), Some(CrashOutcome::FailStop));
        assert_eq!(p.crash_for(0, 0), None);
        assert_eq!(p.total_rank_fault_delay(), MS.times(9));
    }

    #[test]
    fn fail_stop_dominates_recovering_crashes() {
        let p = FaultPlan::none()
            .with_crash(1, 0, Some(MS))
            .with_crash(1, 0, None);
        assert_eq!(p.crash_for(1, 0), Some(CrashOutcome::FailStop));
    }

    #[test]
    fn degradation_windows_compose_multiplicatively() {
        let p = FaultPlan::none()
            .with_degradation(LinkDegradation {
                from: SimTime(100),
                until: SimTime(200),
                link: None,
                latency_factor: 2.0,
                bandwidth_factor: 3.0,
            })
            .with_degradation(LinkDegradation {
                from: SimTime(150),
                until: SimTime(300),
                link: Some((0, 1)),
                latency_factor: 5.0,
                bandwidth_factor: 1.0,
            });
        assert_eq!(p.degradation_at(0, 1, SimTime(99)), None);
        assert_eq!(p.degradation_at(0, 1, SimTime(100)), Some((2.0, 3.0)));
        assert_eq!(p.degradation_at(0, 1, SimTime(150)), Some((10.0, 3.0)));
        // Directed: the reverse link only sees the global window.
        assert_eq!(p.degradation_at(1, 0, SimTime(150)), Some((2.0, 3.0)));
        // Window ends are exclusive.
        assert_eq!(p.degradation_at(0, 1, SimTime(200)), Some((5.0, 1.0)));
        assert_eq!(p.degradation_at(0, 1, SimTime(300)), None);
    }

    #[test]
    fn check_flags_bad_fields_with_sc013() {
        let p = FaultPlan {
            messages: Some(MessageFaults {
                drop_prob: 1.5,
                corrupt_prob: -0.1,
                rto: SimDuration::ZERO,
                backoff: 0.5,
                max_rto: SimDuration::ZERO,
                max_retries: 1,
            }),
            degradations: vec![LinkDegradation {
                from: SimTime(100),
                until: SimTime(100),
                link: Some((9, 0)),
                latency_factor: 0.0,
                bandwidth_factor: 0.5,
            }],
            rank_faults: vec![RankFault {
                rank: 9,
                step: 99,
                kind: RankFaultKind::Stall {
                    duration: SimDuration::ZERO,
                },
            }],
        };
        let diags = p.check(8, 10);
        assert!(diags.iter().all(|d| d.code == "SC013"), "{diags:?}");
        let errors = diags.iter().filter(|d| d.is_error()).count();
        // drop_prob, corrupt_prob, backoff, rto, window, latency_factor,
        // link.src, rank, step (max_rto >= rto holds: both zero).
        assert_eq!(errors, 9, "{diags:?}");
        // Speed-up factor and zero-duration stall are notes.
        assert!(diags.iter().any(|d| !d.is_error()), "{diags:?}");
    }

    #[test]
    fn check_accepts_a_sound_plan() {
        let p = FaultPlan::none()
            .with_drops(0.05, SimDuration::from_micros(50))
            .with_degradation(LinkDegradation {
                from: SimTime::ZERO,
                until: SimTime(1_000_000),
                link: Some((0, 1)),
                latency_factor: 4.0,
                bandwidth_factor: 4.0,
            })
            .with_stall(1, 0, MS)
            .with_crash(2, 1, Some(MS));
        assert!(p.check(8, 10).is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let p = FaultPlan::none()
            .with_messages(MessageFaults {
                drop_prob: 0.125,
                corrupt_prob: 0.0625,
                rto: SimDuration::from_micros(70),
                backoff: 1.5,
                max_rto: MS,
                max_retries: 9,
            })
            .with_degradation(LinkDegradation {
                from: SimTime(5),
                until: SimTime(50),
                link: None,
                latency_factor: 2.0,
                bandwidth_factor: 8.0,
            })
            .with_degradation(LinkDegradation {
                from: SimTime(7),
                until: SimTime(9),
                link: Some((3, 4)),
                latency_factor: 1.0,
                bandwidth_factor: 2.0,
            })
            .with_stall(1, 2, MS)
            .with_crash(3, 4, Some(MS.times(2)))
            .with_crash(5, 6, None);
        let text = json::to_string(&p);
        let back: FaultPlan = json::from_str(&text).expect("round trip");
        assert_eq!(p, back);
    }

    #[test]
    fn json_defaults_fill_missing_fields() {
        // A plan written before any of the three parts existed.
        let back: FaultPlan = json::from_str("{}").expect("empty object parses");
        assert_eq!(back, FaultPlan::none());
    }
}
