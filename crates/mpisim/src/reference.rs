//! Independent reference implementation: the max-plus recurrence.
//!
//! For compute-bound workloads the bulk-synchronous dynamics have a
//! closed form. Let `E(r, k)` be the end of rank `r`'s execution phase in
//! step `k` and `W(r, k)` the end of its Waitall. With all requests
//! posted at `E(r, k)`:
//!
//! **Eager** (unbounded buffers): sends complete at post; a receive from
//! `s` completes at `max(E(r,k), E(s,k) + T(s,r))`, so
//!
//! ```text
//! W(r,k) = max( E(r,k), max_{s ∈ senders(r)} E(s,k) + T(s,r) )
//! ```
//!
//! **Rendezvous** with the head-of-line CTS gating rule (see the engine
//! docs): receiver `r` grants all its CTS at
//! `cts(r,k) = max(E(r,k), max_{s ∈ senders(r)} E(s,k) + α(s,r))`
//! (every receive must be matched first), the payload `s→r` then takes
//! `α(r,s)` (CTS travel) plus `T(s,r)`, and both endpoints' requests
//! complete at that moment:
//!
//! ```text
//! done(s→r, k) = cts(r,k) + α(r,s) + T(s,r)
//! W(r,k) = max( E(r,k),
//!               max_{s ∈ senders(r)}   done(s→r, k),
//!               max_{d ∈ receivers(r)} done(r→d, k) )
//! ```
//!
//! In both modes `E(r, k+1) = W(r,k) + T_exec·imbalance(r) + delay(r,k+1)
//! + noise(r,k+1)`.
//!
//! This module evaluates that recurrence directly — no event queue, no
//! message objects — drawing the identical noise streams as the engine.
//! The property suite asserts the two implementations agree **exactly**
//! on their shared domain, which is the strongest internal-consistency
//! evidence the reproduction has: the wave speeds, interactions and decay
//! statistics do not depend on the event-driven machinery.
//!
//! Domain restrictions (asserted): compute-bound execution, pure eager or
//! pure rendezvous mode, regular patterns (no custom schedule), unbounded
//! eager buffers, no send serialisation, noise on execution phases only.

use simdes::{SeedFactory, SimDuration, SimRng, SimTime};
use tracefmt::{PhaseRecord, Trace};
use workload::ExecModel;

use crate::config::{Mode, NoisePlacement, SimConfig};

/// Whether `cfg` falls inside the recurrence's closed-form domain, so
/// callers (the fused-vs-reference property suite) can gate oracle
/// comparisons on it instead of discovering the domain through
/// [`reference_trace`]'s panics.
///
/// Mirrors the assertions in [`reference_trace`], plus the fault plan:
/// the recurrence does not model faults at all, so any active fault
/// silently diverges rather than panicking.
pub fn supports(cfg: &SimConfig) -> bool {
    matches!(cfg.exec, ExecModel::Compute { .. })
        && cfg.schedule.is_none()
        && cfg.eager_buffer_bytes.is_none()
        && !cfg.serialize_sends
        && cfg.noise_placement == NoisePlacement::ExecOnly
        && cfg.faults.is_empty()
}

/// Evaluate the max-plus recurrence for `cfg` and return the trace.
///
/// # Panics
/// Panics if the config is outside the closed-form domain (see module
/// docs).
pub fn reference_trace(cfg: &SimConfig) -> Trace {
    cfg.validate();
    let texec = match cfg.exec {
        ExecModel::Compute { duration } => duration,
        ExecModel::MemoryBound { .. } => {
            panic!("reference recurrence covers compute-bound workloads only")
        }
    };
    assert!(
        cfg.schedule.is_none(),
        "reference recurrence needs a regular pattern"
    );
    assert!(
        cfg.eager_buffer_bytes.is_none(),
        "reference recurrence assumes unbounded eager buffers"
    );
    assert!(
        !cfg.serialize_sends,
        "reference recurrence assumes overlapping sends"
    );
    assert_eq!(
        cfg.noise_placement,
        NoisePlacement::ExecOnly,
        "reference recurrence models execution noise only"
    );
    let mode = cfg.protocol.mode_for(cfg.msg_bytes);

    let n = cfg.ranks();
    let steps = cfg.steps;
    let seeds = SeedFactory::new(cfg.seed);
    let mut rngs: Vec<SimRng> = (0..n)
        .map(|r| seeds.stream("exec-noise", u64::from(r)))
        .collect();

    // Partner tables.
    let senders: Vec<Vec<u32>> = (0..n).map(|r| cfg.pattern.recv_partners(r, n)).collect();
    let receivers: Vec<Vec<u32>> = (0..n).map(|r| cfg.pattern.send_partners(r, n)).collect();

    let xfer = |a: u32, b: u32| cfg.network.transfer_time(a, b, cfg.msg_bytes);
    let ctrl = |a: u32, b: u32| cfg.network.ctrl_latency(a, b);

    let mut start: Vec<SimTime> = vec![SimTime::ZERO; n as usize];
    let mut records = Vec::with_capacity(n as usize * steps as usize);

    for k in 0..steps {
        // Execution ends.
        let mut exec_end = vec![SimTime::ZERO; n as usize];
        let mut injected = vec![SimDuration::ZERO; n as usize];
        let mut noise = vec![SimDuration::ZERO; n as usize];
        for r in 0..n {
            let factor = cfg.imbalance.get(r as usize).copied().unwrap_or(1.0);
            injected[r as usize] = cfg.injections.delay_for(r, k);
            noise[r as usize] = cfg.noise.sample(&mut rngs[r as usize]);
            exec_end[r as usize] = start[r as usize]
                + injected[r as usize]
                + texec.mul_f64(factor)
                + noise[r as usize];
        }

        // Waitall ends.
        let mut wait_end = vec![SimTime::ZERO; n as usize];
        match mode {
            Mode::Eager => {
                for r in 0..n {
                    let mut w = exec_end[r as usize];
                    for &s in &senders[r as usize] {
                        w = w.max(exec_end[s as usize] + xfer(s, r));
                    }
                    wait_end[r as usize] = w;
                }
            }
            Mode::Rendezvous => {
                // CTS grant time per receiver.
                let cts: Vec<SimTime> = (0..n)
                    .map(|r| {
                        let mut c = exec_end[r as usize];
                        for &s in &senders[r as usize] {
                            c = c.max(exec_end[s as usize] + ctrl(s, r));
                        }
                        c
                    })
                    .collect();
                let done = |s: u32, r: u32| cts[r as usize] + ctrl(r, s) + xfer(s, r);
                for r in 0..n {
                    let mut w = exec_end[r as usize];
                    for &s in &senders[r as usize] {
                        w = w.max(done(s, r));
                    }
                    for &d in &receivers[r as usize] {
                        w = w.max(done(r, d));
                    }
                    wait_end[r as usize] = w;
                }
            }
        }

        for r in 0..n {
            records.push(PhaseRecord {
                rank: r,
                step: k,
                exec_start: start[r as usize],
                exec_end: exec_end[r as usize],
                comm_end: wait_end[r as usize],
                injected: injected[r as usize],
                noise: noise[r as usize],
            });
            start[r as usize] = wait_end[r as usize];
        }
    }

    Trace::from_records(n, steps, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::engine::run;
    use netmodel::{ClusterNetwork, Hockney, PointToPoint};
    use noise_model::{DelayDistribution, InjectionPlan};
    use workload::{Boundary, CommPattern, Direction};

    fn base(ranks: u32, dir: Direction, boundary: Boundary, protocol: Protocol) -> SimConfig {
        let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 3e9));
        let mut cfg = SimConfig::baseline(
            ClusterNetwork::flat(ranks, link),
            CommPattern::next_neighbor(dir, boundary),
            8,
        );
        cfg.protocol = protocol;
        cfg.exec = ExecModel::Compute {
            duration: SimDuration::from_millis(1),
        };
        cfg
    }

    #[test]
    fn matches_engine_on_the_fig4_scenario() {
        let mut cfg = base(
            12,
            Direction::Unidirectional,
            Boundary::Open,
            Protocol::Eager,
        );
        cfg.injections = InjectionPlan::single(4, 0, SimDuration::from_millis(5));
        assert_eq!(run(&cfg), reference_trace(&cfg));
    }

    #[test]
    fn matches_engine_for_bidirectional_rendezvous_sigma2() {
        let mut cfg = base(
            14,
            Direction::Bidirectional,
            Boundary::Open,
            Protocol::Rendezvous,
        );
        cfg.injections = InjectionPlan::single(6, 0, SimDuration::from_millis(7));
        assert_eq!(run(&cfg), reference_trace(&cfg));
    }

    #[test]
    fn matches_engine_under_noise_and_imbalance() {
        let mut cfg = base(
            10,
            Direction::Bidirectional,
            Boundary::Periodic,
            Protocol::Rendezvous,
        );
        cfg.noise = DelayDistribution::Exponential {
            mean: SimDuration::from_micros(200),
        };
        cfg.imbalance = (0..10).map(|r| 1.0 + 0.02 * f64::from(r)).collect();
        cfg.injections = InjectionPlan::single(3, 2, SimDuration::from_millis(4));
        assert_eq!(run(&cfg), reference_trace(&cfg));
    }

    #[test]
    #[should_panic(expected = "compute-bound")]
    fn memory_bound_is_outside_the_domain() {
        let mut cfg = base(
            4,
            Direction::Unidirectional,
            Boundary::Open,
            Protocol::Eager,
        );
        cfg.exec = ExecModel::MemoryBound {
            bytes: 1,
            core_bw_bps: 1.0,
            socket_bw_bps: 1.0,
        };
        reference_trace(&cfg);
    }

    #[test]
    #[should_panic(expected = "unbounded eager buffers")]
    fn finite_buffers_are_outside_the_domain() {
        let mut cfg = base(
            4,
            Direction::Unidirectional,
            Boundary::Open,
            Protocol::Eager,
        );
        cfg.eager_buffer_bytes = Some(1);
        reference_trace(&cfg);
    }
}
