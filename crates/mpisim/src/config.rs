//! Simulation configuration.
//!
//! A [`SimConfig`] fully describes one bulk-synchronous run: the placed
//! job ([`ClusterNetwork`]), the communication pattern and protocol, the
//! execution model, the number of steps, the one-off delay injections, the
//! fine-grained noise, and the master seed. Identical configs produce
//! identical traces.

use netmodel::ClusterNetwork;
use noise_model::{DelayDistribution, InjectionPlan};
use simdes::SimDuration;
use tracefmt::json::{self, field_or_default, FromJson, Json, ToJson};
use workload::{CommPattern, CommSchedule, ExecModel};

use crate::diag::{self, Diagnostic};
use crate::faults::FaultPlan;

/// Message-passing protocol selection (paper Sec. II-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Force the eager protocol for every message: sends complete
    /// immediately (internal buffering), no handshake.
    Eager,
    /// Force the rendezvous protocol: RTS/CTS handshake, the sender's
    /// request completes only after the matched transfer.
    Rendezvous,
    /// Choose per message size, like a real MPI: eager up to and including
    /// the limit, rendezvous above it.
    Auto {
        /// Eager limit in bytes. The paper's Intel MPI configuration used
        /// 16384 doubles = 131072 B.
        eager_limit: u64,
    },
}

/// The concrete mode chosen for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Buffered send, no handshake.
    Eager,
    /// Handshake, synchronising send.
    Rendezvous,
}

impl Protocol {
    /// The paper's eager limit: 16384 doubles.
    pub const PAPER_EAGER_LIMIT: u64 = 131_072;

    /// Decide the mode for a message of `bytes`.
    pub fn mode_for(&self, bytes: u64) -> Mode {
        match *self {
            Protocol::Eager => Mode::Eager,
            Protocol::Rendezvous => Mode::Rendezvous,
            Protocol::Auto { eager_limit } => {
                if bytes <= eager_limit {
                    Mode::Eager
                } else {
                    Mode::Rendezvous
                }
            }
        }
    }
}

/// Where sampled noise is applied — an ablation knob (DESIGN.md §5.2). The
/// paper injects noise into execution phases only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoisePlacement {
    /// Lengthen execution phases only (the paper's method, Eq. 3).
    #[default]
    ExecOnly,
    /// Lengthen execution phases and also every message transfer.
    ExecAndComm,
}

/// Full description of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The placed job: machine shape, rank count, link models.
    pub network: ClusterNetwork,
    /// Who exchanges with whom after each execution phase.
    pub pattern: CommPattern,
    /// Optional explicit per-step communication schedule. When set, it
    /// *overrides* `pattern` for partner lookup (the pattern is still used
    /// by analyses that need σ/d/boundary semantics — those are undefined
    /// for arbitrary graphs and should not be consulted). This is the
    /// paper's future-work hook: collectives decompose into per-round
    /// graphs (see `workload::CommSchedule`).
    pub schedule: Option<CommSchedule>,
    /// Message payload size in bytes (identical for all pairs, as in all
    /// of the paper's experiments).
    pub msg_bytes: u64,
    /// Protocol selection.
    pub protocol: Protocol,
    /// Execution-phase cost model.
    pub exec: ExecModel,
    /// Number of bulk-synchronous steps.
    pub steps: u32,
    /// One-off injected delays.
    pub injections: InjectionPlan,
    /// Fine-grained per-phase noise distribution.
    pub noise: DelayDistribution,
    /// Where the noise applies.
    pub noise_placement: NoisePlacement,
    /// Capacity of the per-destination eager buffer in bytes; `None` means
    /// unbounded (the default). When the outstanding unconsumed eager
    /// bytes towards one destination would exceed this, further sends fall
    /// back to rendezvous — the footnote-1 behaviour in the paper.
    pub eager_buffer_bytes: Option<u64>,
    /// When `true`, outgoing payload transfers from one rank serialize (a
    /// single injection port per process, as on a real NIC): a rank
    /// sending to two neighbours pays both transfer times back to back.
    /// Off by default — the controlled wave experiments have negligible
    /// communication volume — but essential for the bandwidth-heavy
    /// Fig. 1/2 reproductions, where the optimistic Eq. 1 model ignores
    /// exactly this serialisation.
    pub serialize_sends: bool,
    /// Per-rank multiplicative load imbalance: the work part of rank
    /// `r`'s execution phase is scaled by `imbalance[r]` (1.0 = balanced;
    /// the paper classifies manifest per-phase load imbalance as an
    /// application-induced delay, Sec. II-A). Empty = perfectly balanced.
    pub imbalance: Vec<f64>,
    /// Deterministic fault plan: message drop/corrupt with retransmission,
    /// link degradation windows, rank stalls and crashes. Empty by default
    /// (see [`crate::faults`]).
    pub faults: FaultPlan,
    /// Master seed for all random streams.
    pub seed: u64,
}

impl SimConfig {
    /// A minimal valid config for the given network and pattern: 3 ms
    /// compute phases (the paper's standard), 8192-byte messages (ditto),
    /// protocol chosen by size, no injections, no noise.
    pub fn baseline(network: ClusterNetwork, pattern: CommPattern, steps: u32) -> Self {
        SimConfig {
            network,
            pattern,
            schedule: None,
            msg_bytes: 8192,
            protocol: Protocol::Auto {
                eager_limit: Protocol::PAPER_EAGER_LIMIT,
            },
            exec: ExecModel::Compute {
                duration: SimDuration::from_millis(3),
            },
            steps,
            injections: InjectionPlan::none(),
            noise: DelayDistribution::None,
            noise_placement: NoisePlacement::ExecOnly,
            eager_buffer_bytes: None,
            serialize_sends: false,
            imbalance: Vec::new(),
            faults: FaultPlan::none(),
            seed: 0x1D1E_4A7E, // "idle wave"
        }
    }

    /// Ranks in the job.
    pub fn ranks(&self) -> u32 {
        self.network.ranks
    }

    /// Field-level validity checks, reported as [`Diagnostic`]s instead of
    /// panics. Covers everything the engine needs to be true before it can
    /// run: scalar sanity (steps, message size, durations, bandwidths),
    /// pattern/schedule feasibility, imbalance and injection ranges, and
    /// noise-distribution parameters. The `simcheck` crate layers graph,
    /// protocol, and speed-model analyses on top of this list.
    pub fn check(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.steps == 0 {
            out.push(Diagnostic::error(
                "SC004",
                "steps",
                self.steps,
                "need at least one step",
            ));
        }
        if self.msg_bytes == 0 {
            out.push(Diagnostic::error(
                "SC004",
                "msg_bytes",
                self.msg_bytes,
                "zero-byte messages carry no dependency",
            ));
        }
        match self.exec {
            ExecModel::Compute { duration } => {
                if duration.is_zero() {
                    out.push(Diagnostic::warning(
                        "SC004",
                        "exec.duration",
                        duration,
                        "zero-length execution phases make the Eq. 2 speed model degenerate",
                    ));
                }
            }
            ExecModel::MemoryBound {
                bytes,
                core_bw_bps,
                socket_bw_bps,
            } => {
                if bytes == 0 {
                    out.push(Diagnostic::error(
                        "SC004",
                        "exec.bytes",
                        bytes,
                        "memory-bound phases need nonzero traffic",
                    ));
                }
                for (field, bw) in [
                    ("exec.core_bw_bps", core_bw_bps),
                    ("exec.socket_bw_bps", socket_bw_bps),
                ] {
                    if !bw.is_finite() || bw <= 0.0 {
                        out.push(Diagnostic::error(
                            "SC004",
                            field,
                            bw,
                            "bandwidths must be positive and finite",
                        ));
                    }
                }
            }
        }
        match &self.schedule {
            Some(sched) => {
                if sched.ranks() != self.ranks() {
                    out.push(Diagnostic::error(
                        "SC005",
                        "schedule",
                        sched.ranks(),
                        format!(
                            "schedule rank count does not match the job ({} vs {})",
                            sched.ranks(),
                            self.ranks()
                        ),
                    ));
                }
            }
            None => {
                if self.pattern.distance == 0 {
                    out.push(Diagnostic::error(
                        "SC002",
                        "pattern.distance",
                        self.pattern.distance,
                        "distance must be >= 1",
                    ));
                } else {
                    let feasible = match self.pattern.boundary {
                        workload::Boundary::Periodic => self.ranks() > 2 * self.pattern.distance,
                        workload::Boundary::Open => self.ranks() > self.pattern.distance,
                    };
                    if !feasible {
                        out.push(Diagnostic::error(
                            "SC002",
                            "network.ranks",
                            self.ranks(),
                            format!(
                                "{} ranks too few for distance {} with {:?} boundary",
                                self.ranks(),
                                self.pattern.distance,
                                self.pattern.boundary
                            ),
                        ));
                    }
                }
            }
        }
        if !self.imbalance.is_empty() {
            if self.imbalance.len() != self.ranks() as usize {
                out.push(Diagnostic::error(
                    "SC012",
                    "imbalance",
                    self.imbalance.len(),
                    format!(
                        "imbalance vector must have one factor per rank ({} factors, {} ranks)",
                        self.imbalance.len(),
                        self.ranks()
                    ),
                ));
            }
            for (i, &f) in self.imbalance.iter().enumerate() {
                if !f.is_finite() || f <= 0.0 {
                    out.push(Diagnostic::error(
                        "SC012",
                        format!("imbalance[{i}]"),
                        f,
                        "imbalance factors must be positive and finite",
                    ));
                }
            }
        }
        if let Err(why) = self.noise.check() {
            out.push(Diagnostic::error(
                "SC009",
                "noise",
                format!("{:?}", self.noise),
                why,
            ));
        }
        for (i, inj) in self.injections.injections().iter().enumerate() {
            if inj.rank >= self.ranks() {
                out.push(Diagnostic::error(
                    "SC011",
                    format!("injections[{i}].rank"),
                    inj.rank,
                    format!(
                        "injection at rank {} but job has {} ranks",
                        inj.rank,
                        self.ranks()
                    ),
                ));
            }
            if inj.step >= self.steps {
                out.push(Diagnostic::error(
                    "SC011",
                    format!("injections[{i}].step"),
                    inj.step,
                    format!(
                        "injection at step {} but run has {} steps",
                        inj.step, self.steps
                    ),
                ));
            }
            if inj.duration.is_zero() {
                out.push(Diagnostic::note(
                    "SC011",
                    format!("injections[{i}].duration"),
                    inj.duration,
                    "zero-duration injection has no effect",
                ));
            }
        }
        out.extend(self.faults.check(self.ranks(), self.steps));
        out
    }

    /// Validate cross-field invariants, panicking with the rendered
    /// [`Diagnostic`] report when any [`diag::Severity::Error`]-level
    /// finding exists. Called by the engine before running; warnings and notes are
    /// not fatal (query [`SimConfig::check`] to see them).
    ///
    /// # Panics
    /// Panics when [`SimConfig::check`] reports at least one error.
    pub fn validate(&self) {
        let errors: Vec<Diagnostic> = self
            .check()
            .into_iter()
            .filter(Diagnostic::is_error)
            .collect();
        if !errors.is_empty() {
            panic!("invalid SimConfig:\n{}", diag::render_report(&errors));
        }
    }
}

impl ToJson for Protocol {
    fn to_json(&self) -> Json {
        match *self {
            Protocol::Eager => Json::Str("Eager".into()),
            Protocol::Rendezvous => Json::Str("Rendezvous".into()),
            Protocol::Auto { eager_limit } => Json::obj(vec![(
                "Auto",
                Json::obj(vec![("eager_limit", eager_limit.to_json())]),
            )]),
        }
    }
}

impl FromJson for Protocol {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (variant, p) = v.expect_variant()?;
        match variant {
            "Eager" => Ok(Protocol::Eager),
            "Rendezvous" => Ok(Protocol::Rendezvous),
            "Auto" => Ok(Protocol::Auto {
                eager_limit: u64::from_json(p.field("eager_limit")?)?,
            }),
            other => Err(json::JsonError(format!(
                "unknown Protocol variant '{other}'"
            ))),
        }
    }
}

impl ToJson for Mode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Mode::Eager => "Eager",
                Mode::Rendezvous => "Rendezvous",
            }
            .into(),
        )
    }
}

impl FromJson for Mode {
    fn from_json(v: &Json) -> json::Result<Self> {
        match v.expect_variant()?.0 {
            "Eager" => Ok(Mode::Eager),
            "Rendezvous" => Ok(Mode::Rendezvous),
            other => Err(json::JsonError(format!("unknown Mode variant '{other}'"))),
        }
    }
}

impl ToJson for NoisePlacement {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                NoisePlacement::ExecOnly => "ExecOnly",
                NoisePlacement::ExecAndComm => "ExecAndComm",
            }
            .into(),
        )
    }
}

impl FromJson for NoisePlacement {
    fn from_json(v: &Json) -> json::Result<Self> {
        match v.expect_variant()?.0 {
            "ExecOnly" => Ok(NoisePlacement::ExecOnly),
            "ExecAndComm" => Ok(NoisePlacement::ExecAndComm),
            other => Err(json::JsonError(format!(
                "unknown NoisePlacement variant '{other}'"
            ))),
        }
    }
}

impl ToJson for SimConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("network", self.network.to_json()),
            ("pattern", self.pattern.to_json()),
            ("schedule", self.schedule.to_json()),
            ("msg_bytes", self.msg_bytes.to_json()),
            ("protocol", self.protocol.to_json()),
            ("exec", self.exec.to_json()),
            ("steps", self.steps.to_json()),
            ("injections", self.injections.to_json()),
            ("noise", self.noise.to_json()),
            ("noise_placement", self.noise_placement.to_json()),
            ("eager_buffer_bytes", self.eager_buffer_bytes.to_json()),
            ("serialize_sends", self.serialize_sends.to_json()),
            ("imbalance", self.imbalance.to_json()),
            ("faults", self.faults.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for SimConfig {
    fn from_json(v: &Json) -> json::Result<Self> {
        // `schedule`, `serialize_sends`, and `imbalance` were late additions
        // to the format: configs written before them still parse, with the
        // neutral default filled in.
        Ok(SimConfig {
            network: ClusterNetwork::from_json(v.field("network")?)?,
            pattern: CommPattern::from_json(v.field("pattern")?)?,
            schedule: field_or_default(v, "schedule")?,
            msg_bytes: u64::from_json(v.field("msg_bytes")?)?,
            protocol: Protocol::from_json(v.field("protocol")?)?,
            exec: ExecModel::from_json(v.field("exec")?)?,
            steps: u32::from_json(v.field("steps")?)?,
            injections: InjectionPlan::from_json(v.field("injections")?)?,
            noise: DelayDistribution::from_json(v.field("noise")?)?,
            noise_placement: field_or_default(v, "noise_placement")?,
            eager_buffer_bytes: field_or_default(v, "eager_buffer_bytes")?,
            serialize_sends: field_or_default(v, "serialize_sends")?,
            imbalance: field_or_default(v, "imbalance")?,
            faults: field_or_default(v, "faults")?,
            seed: u64::from_json(v.field("seed")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::presets;

    fn cfg() -> SimConfig {
        let net = presets::loggopsim_like(8);
        SimConfig::baseline(
            net,
            CommPattern::next_neighbor(
                workload::Direction::Unidirectional,
                workload::Boundary::Open,
            ),
            5,
        )
    }

    #[test]
    fn protocol_auto_switches_at_limit() {
        let p = Protocol::Auto {
            eager_limit: 131_072,
        };
        assert_eq!(p.mode_for(8_192), Mode::Eager);
        assert_eq!(p.mode_for(131_072), Mode::Eager);
        assert_eq!(p.mode_for(131_073), Mode::Rendezvous);
        // The paper's Fig. 5 sizes: 16384 B is eager, 31080 B *doubles*
        // (248640 B) is rendezvous.
        assert_eq!(p.mode_for(16_384), Mode::Eager);
        assert_eq!(p.mode_for(248_640), Mode::Rendezvous);
    }

    #[test]
    fn forced_protocols_ignore_size() {
        assert_eq!(Protocol::Eager.mode_for(u64::MAX), Mode::Eager);
        assert_eq!(Protocol::Rendezvous.mode_for(1), Mode::Rendezvous);
    }

    #[test]
    fn baseline_is_valid() {
        cfg().validate();
    }

    #[test]
    #[should_panic(expected = "injection at rank")]
    fn injection_out_of_ranks_fails_validation() {
        let mut c = cfg();
        c.injections = InjectionPlan::single(99, 0, SimDuration::from_millis(1));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "injection at step")]
    fn injection_out_of_steps_fails_validation() {
        let mut c = cfg();
        c.injections = InjectionPlan::single(1, 99, SimDuration::from_millis(1));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_fails_validation() {
        let mut c = cfg();
        c.steps = 0;
        c.validate();
    }

    #[test]
    fn check_is_empty_for_the_baseline() {
        assert!(cfg().check().is_empty());
    }

    #[test]
    fn check_reports_field_and_value_context() {
        let mut c = cfg();
        c.injections = InjectionPlan::single(99, 0, SimDuration::from_millis(1));
        let diags = c.check();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SC011");
        assert_eq!(diags[0].field, "injections[0].rank");
        assert_eq!(diags[0].value, "99");
        assert!(diags[0].is_error());
        assert!(diags[0].to_string().contains("injections[0].rank = 99"));
    }

    #[test]
    fn check_collects_multiple_findings() {
        let mut c = cfg();
        c.steps = 0;
        c.msg_bytes = 0;
        c.imbalance = vec![1.0, -2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let diags = c.check();
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"SC004"));
        assert!(codes.contains(&"SC012"));
        assert!(diags.iter().any(|d| d.field == "imbalance[1]"));
        assert!(diags.len() >= 3);
    }

    #[test]
    fn check_flags_infeasible_patterns_without_panicking() {
        let mut c = cfg();
        c.pattern.distance = 20; // 8 ranks, open boundary: infeasible
        let diags = c.check();
        assert!(diags.iter().any(|d| d.code == "SC002" && d.is_error()));
        let mut z = cfg();
        z.pattern.distance = 0;
        assert!(z.check().iter().any(|d| d.code == "SC002"));
    }

    #[test]
    fn check_flags_bad_noise_and_bandwidths() {
        let mut c = cfg();
        c.noise = DelayDistribution::Pareto {
            scale: SimDuration::from_micros(1),
            alpha: 0.5,
            max: SimDuration::from_millis(1),
        };
        c.exec = workload::ExecModel::MemoryBound {
            bytes: 1024,
            core_bw_bps: f64::NAN,
            socket_bw_bps: -1.0,
        };
        let diags = c.check();
        assert!(diags.iter().any(|d| d.code == "SC009"));
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == "SC004" && d.field.contains("bw_bps"))
                .count(),
            2
        );
    }

    #[test]
    fn zero_duration_injection_is_a_note_not_an_error() {
        let mut c = cfg();
        c.injections = InjectionPlan::single(1, 0, SimDuration::ZERO);
        let diags = c.check();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, crate::diag::Severity::Note);
        c.validate(); // notes are not fatal
    }

    #[test]
    fn fault_plan_findings_flow_through_check() {
        let mut c = cfg();
        c.faults = FaultPlan::none().with_stall(99, 0, SimDuration::from_millis(1));
        let diags = c.check();
        assert!(diags.iter().any(|d| d.code == "SC013" && d.is_error()));
    }

    #[test]
    fn json_round_trip() {
        let c = cfg();
        let json = tracefmt::json::to_string(&c);
        let back: SimConfig = tracefmt::json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn json_defaults_fill_missing_optional_fields() {
        // A config written before `schedule` / `serialize_sends` /
        // `imbalance` / `noise_placement` existed must still parse.
        let c = cfg();
        let full = c.to_json();
        let trimmed = Json::Object(
            full.expect_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| {
                    !matches!(
                        k.as_str(),
                        "schedule"
                            | "serialize_sends"
                            | "imbalance"
                            | "noise_placement"
                            | "eager_buffer_bytes"
                            | "faults"
                    )
                })
                .cloned()
                .collect(),
        );
        let back = SimConfig::from_json(&trimmed).unwrap();
        assert_eq!(c, back);
    }
}
