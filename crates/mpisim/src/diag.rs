//! Configuration diagnostics.
//!
//! A [`Diagnostic`] is one finding about a [`crate::SimConfig`]: a severity,
//! a stable code (`SC001`…), a human-readable message, and span-like
//! context naming the config field and offending value. The basic
//! field-level checks live here (produced by [`crate::SimConfig::check`]);
//! the `simcheck` crate layers graph, protocol, and speed-model analyses on
//! top and re-exports these types.
//!
//! Diagnostic codes are documented in `docs/ANALYZER.md` at the workspace
//! root.

use std::fmt;

use tracefmt::json::{Json, ToJson};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: expected behaviour worth knowing about.
    Note,
    /// Suspicious but runnable: the simulation completes, results may not
    /// mean what you think.
    Warning,
    /// The configuration is invalid; the engine refuses to run it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding about a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable code, e.g. `"SC001"` (see docs/ANALYZER.md).
    pub code: &'static str,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The config field the finding anchors to, e.g. `"injections[0].rank"`.
    pub field: String,
    /// Rendering of the offending value, e.g. `"99"`.
    pub value: String,
}

impl Diagnostic {
    /// Build a finding with full field/value context.
    pub fn new(
        severity: Severity,
        code: &'static str,
        field: impl Into<String>,
        value: impl fmt::Display,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            message: message.into(),
            field: field.into(),
            value: value.to_string(),
        }
    }

    /// An [`Severity::Error`] finding.
    pub fn error(
        code: &'static str,
        field: impl Into<String>,
        value: impl fmt::Display,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic::new(Severity::Error, code, field, value, message)
    }

    /// A [`Severity::Warning`] finding.
    pub fn warning(
        code: &'static str,
        field: impl Into<String>,
        value: impl fmt::Display,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic::new(Severity::Warning, code, field, value, message)
    }

    /// A [`Severity::Note`] finding.
    pub fn note(
        code: &'static str,
        field: impl Into<String>,
        value: impl fmt::Display,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic::new(Severity::Note, code, field, value, message)
    }

    /// `true` for [`Severity::Error`] findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} [{} = {}]",
            self.severity, self.code, self.message, self.field, self.value
        )
    }
}

impl ToJson for Severity {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("severity", self.severity.to_json()),
            ("code", Json::Str(self.code.to_string())),
            ("message", Json::Str(self.message.clone())),
            ("field", Json::Str(self.field.clone())),
            ("value", Json::Str(self.value.clone())),
        ])
    }
}

/// `true` when any finding is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Render findings as one line each, errors first (stable within a
/// severity class). Empty input renders to an empty string.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
    let lines: Vec<String> = sorted.iter().map(|d| d.to_string()).collect();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_field_and_value() {
        let d = Diagnostic::error("SC004", "steps", 0, "need at least one step");
        assert_eq!(
            d.to_string(),
            "error[SC004]: need at least one step [steps = 0]"
        );
        assert!(d.is_error());
    }

    #[test]
    fn severities_order_by_badness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn report_sorts_errors_first_and_is_stable() {
        let diags = vec![
            Diagnostic::note("SC003", "pattern.boundary", "Open", "first note"),
            Diagnostic::error("SC004", "steps", 0, "first error"),
            Diagnostic::warning("SC006", "protocol", "Eager", "a warning"),
            Diagnostic::error("SC005", "schedule", 4, "second error"),
        ];
        let report = render_report(&diags);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("first error"));
        assert!(lines[1].contains("second error"));
        assert!(lines[2].contains("SC006"));
        assert!(lines[3].contains("SC003"));
        assert!(has_errors(&diags));
        assert!(!has_errors(&diags[2..3]));
    }

    #[test]
    fn empty_report_is_empty() {
        assert_eq!(render_report(&[]), "");
    }

    #[test]
    fn diagnostics_serialize_to_json_objects() {
        let d = Diagnostic::warning("SC006", "protocol", "Eager", "odd choice");
        let text = tracefmt::json::to_string(&d);
        assert!(text.contains("\"severity\":\"warning\""), "{text}");
        assert!(text.contains("\"code\":\"SC006\""), "{text}");
        assert!(text.contains("\"field\":\"protocol\""), "{text}");
    }
}
