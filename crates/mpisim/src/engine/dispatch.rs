//! Protocol- and trace-mode-monomorphized event dispatch.
//!
//! The general event loop re-decides three things for every event it
//! delivers: which protocol a message obeys (eager vs rendezvous, plus
//! the finite-buffer fallback), and whether completed steps are retained
//! as records or folded into a summary. All three are fixed for the
//! whole run the moment the config is validated. [`Spec`] lifts them to
//! compile-time constants: `run_loop` picks the matching specialization
//! once, and inside each monomorphized copy the per-event branch tree,
//! the early-set probes for messages the protocol can never produce, the
//! CTS gate check, and the trace-mode branch in `finish_step` all fold
//! away.
//!
//! This module is the one place that may `match` on [`Mode`] to steer
//! dispatch; the `mode-match-in-inline-handler` simlint rule keeps new
//! runtime mode branches from creeping back into the hot handlers.

use super::{Engine, Mode, TraceMode};

/// Compile-time facts about a run that the specialized handlers fold
/// branches with. Selected once per run by [`pump_plain`].
pub(crate) trait Spec {
    /// Every message of the run is eager and the buffer is unbounded: no
    /// RTS/CTS/XferDone traffic, no early-RTS probes, no
    /// `outstanding_eager` accounting, no CTS gate.
    const PURE_EAGER: bool;
    /// Every message of the run is rendezvous: no eager payloads, no
    /// early-eager probes.
    const PURE_RDVZ: bool;
    /// Trace mode when known at selection time. `None` only for
    /// [`General`], whose callers serve both modes from one instantiation.
    const TRACE: Option<TraceMode>;
}

/// Fallback spec with nothing pinned: behaves exactly like the
/// unspecialized handlers. The budgeted/checkpointed loop uses it
/// unconditionally — checkpoint replay must not depend on which
/// specialization the original run had.
pub(crate) struct General;

impl Spec for General {
    const PURE_EAGER: bool = false;
    const PURE_RDVZ: bool = false;
    const TRACE: Option<TraceMode> = None;
}

macro_rules! spec {
    ($(#[$doc:meta])* $name:ident, $eager:literal, $rdvz:literal, $trace:ident) => {
        $(#[$doc])*
        pub(crate) struct $name;

        impl Spec for $name {
            const PURE_EAGER: bool = $eager;
            const PURE_RDVZ: bool = $rdvz;
            const TRACE: Option<TraceMode> = Some(TraceMode::$trace);
        }
    };
}

spec!(
    /// Unbounded-buffer eager run retaining a full trace.
    EagerFull, true, false, Full
);
spec!(
    /// Unbounded-buffer eager run folding a summary.
    EagerSummary, true, false, Summary
);
spec!(
    /// Pure rendezvous run retaining a full trace.
    RdvzFull, false, true, Full
);
spec!(
    /// Pure rendezvous run folding a summary.
    RdvzSummary, false, true, Summary
);
spec!(
    /// Eager with a finite buffer: the fallback keeps both protocols in
    /// play, so only the trace mode is pinned.
    MixedFull, false, false, Full
);
spec!(
    /// Finite-buffer eager run folding a summary.
    MixedSummary, false, false, Summary
);

/// Drain the queue with the handlers monomorphized for `S`.
fn pump<S: Spec>(e: &mut Engine) {
    while let Some((now, ev)) = e.q.pop() {
        e.stats.peak_queue = e.stats.peak_queue.max(e.q.len() + 1);
        e.dispatch_ev::<S>(now, ev);
    }
}

/// The budget- and checkpoint-free loop: pick the specialization that
/// matches the run's protocol and trace mode, then drain the queue with
/// it. A finite eager buffer (`track_eager`) keeps the rendezvous
/// fallback reachable, so those runs pin only the trace mode.
pub(crate) fn pump_plain(e: &mut Engine) {
    let summary = e.mode == TraceMode::Summary;
    match (e.base_mode, e.track_eager, summary) {
        (Mode::Eager, false, false) => pump::<EagerFull>(e),
        (Mode::Eager, false, true) => pump::<EagerSummary>(e),
        (Mode::Eager, true, false) => pump::<MixedFull>(e),
        (Mode::Eager, true, true) => pump::<MixedSummary>(e),
        (Mode::Rendezvous, _, false) => pump::<RdvzFull>(e),
        (Mode::Rendezvous, _, true) => pump::<RdvzSummary>(e),
    }
}
