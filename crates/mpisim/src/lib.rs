//! # mpisim — message-passing simulation on a discrete-event engine
//!
//! Simulates MPI-parallel bulk-synchronous programs at the level of
//! abstraction the paper's delay-propagation study needs: ranks alternate
//! execution phases and nonblocking `Isend`/`Irecv`/`Waitall` communication
//! phases; messages travel through eager or rendezvous protocols over a
//! hierarchical cluster network; one-off delays and fine-grained noise
//! perturb the execution phases.
//!
//! Entry point: build a [`SimConfig`], call [`run`], analyse the returned
//! [`tracefmt::Trace`] (typically through the `idlewave` crate).
//!
//! See the `engine` module docs for the protocol semantics, including the
//! head-of-line CTS gating rule that reproduces the paper's σ = 2
//! propagation-speed doubling for bidirectional rendezvous communication.

#![warn(missing_docs)]

mod config;
pub mod diag;
mod engine;
mod error;
pub mod faults;
mod nominal;
pub mod reference;
mod snapshot;

pub use config::{Mode, NoisePlacement, Protocol, SimConfig};
pub use diag::{Diagnostic, Severity};
pub use engine::{
    fused_path_eligible, run, try_run, try_run_checkpointed_pooled, try_run_summary_pooled,
    try_run_with_limits, try_run_with_stats_pooled, Engine, EnginePools, PoolBudget, RunStats,
    RunSummary, TraceMode,
};
pub use error::{RunLimits, SimError};
pub use faults::{
    CrashOutcome, Delivery, FaultPlan, LinkDegradation, MessageFaults, RankFault, RankFaultKind,
};
pub use nominal::{
    nominal_comm_duration, nominal_exec_duration, nominal_message_time, nominal_step_duration,
};
pub use reference::reference_trace;
pub use snapshot::{config_fingerprint, CheckpointPolicy, Snapshot, SNAPSHOT_VERSION};
