//! Analytic per-step baselines for a configuration.
//!
//! The idle-wave analysis needs to know what a communication phase costs
//! *without* any waiting: everything beyond that baseline is idle time.
//! These helpers compute the baseline from the same models the engine uses,
//! so the baseline is exact on a noise-free, delay-free run.

use simdes::SimDuration;

use crate::config::{Mode, SimConfig};

/// Worst-case (over ranks and partners) cost of one message in the
/// configured mode:
///
/// * eager: one payload transfer time (the payload is launched at post
///   time and the matching receive completes on arrival);
/// * rendezvous: RTS latency + CTS latency + payload transfer time.
///
/// With send serialisation the baseline sums a rank's transfer times but
/// not the LogGOPS injection gap `g`; on gap-dominated links the engine's
/// measured comm phase can therefore exceed this baseline (the excess is
/// injection-rate pacing, not waiting on partners).
pub fn nominal_message_time(cfg: &SimConfig) -> SimDuration {
    let nranks = cfg.ranks();
    let mode = cfg.protocol.mode_for(cfg.msg_bytes);
    let mut worst = SimDuration::ZERO;
    // With an explicit schedule, consider every round of one cycle.
    let rounds: u32 = cfg.schedule.as_ref().map_or(1, |s| s.rounds_per_cycle());
    for round in 0..rounds {
        for r in 0..nranks {
            let partners: Vec<u32> = match &cfg.schedule {
                Some(sched) => sched.graph_for(round).send_partners(r).to_vec(),
                None => cfg.pattern.send_partners(r, nranks),
            };
            // With send serialisation the last payload leaving a rank
            // departs after all earlier ones; a fully synchronised step
            // therefore costs the *sum* of the rank's transfer times
            // (exact for the symmetric patterns under study, where some
            // receiver always depends on the last departure).
            let serial_total: SimDuration = if cfg.serialize_sends {
                partners
                    .iter()
                    .map(|&p| cfg.network.transfer_time(r, p, cfg.msg_bytes))
                    .sum()
            } else {
                SimDuration::ZERO
            };
            for &p in &partners {
                let xfer = if cfg.serialize_sends {
                    serial_total
                } else {
                    cfg.network.transfer_time(r, p, cfg.msg_bytes)
                };
                let total = match mode {
                    Mode::Eager => xfer,
                    Mode::Rendezvous => {
                        cfg.network.ctrl_latency(r, p) + cfg.network.ctrl_latency(p, r) + xfer
                    }
                };
                worst = worst.max(total);
            }
        }
    }
    worst
}

/// Baseline communication-phase duration on a fully synchronised run: all
/// per-partner transfers overlap, so the phase costs one worst-case
/// message time.
pub fn nominal_comm_duration(cfg: &SimConfig) -> SimDuration {
    nominal_message_time(cfg)
}

/// Baseline execution-phase duration: the work time with every rank of the
/// most heavily loaded socket computing concurrently (the fully
/// synchronised steady state), without noise or injections.
pub fn nominal_exec_duration(cfg: &SimConfig) -> SimDuration {
    let nranks = cfg.ranks();
    let sockets = cfg.network.machine.total_sockets();
    let mut counts = vec![0u32; sockets as usize];
    for r in 0..nranks {
        counts[cfg.network.socket_of(r) as usize] += 1;
    }
    let max_per_socket = counts.into_iter().max().unwrap_or(1).max(1);
    cfg.exec.static_duration(max_per_socket)
}

/// Baseline duration of one full step: `T_exec + T_comm` (the denominator
/// of the paper's Eq. 2).
pub fn nominal_step_duration(cfg: &SimConfig) -> SimDuration {
    nominal_exec_duration(cfg) + nominal_comm_duration(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use netmodel::{ClusterNetwork, Hockney, PointToPoint};
    use workload::{Boundary, CommPattern, Direction, ExecModel};

    fn flat_cfg(protocol: Protocol) -> SimConfig {
        let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 1e9));
        let net = ClusterNetwork::flat(8, link);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open),
            3,
        );
        cfg.protocol = protocol;
        cfg.msg_bytes = 8192;
        cfg
    }

    #[test]
    fn eager_baseline_is_one_transfer() {
        let cfg = flat_cfg(Protocol::Eager);
        // 1 us latency + 8192 ns payload at 1 GB/s.
        assert_eq!(nominal_comm_duration(&cfg), SimDuration::from_nanos(9_192));
    }

    #[test]
    fn rendezvous_baseline_adds_handshake() {
        let cfg = flat_cfg(Protocol::Rendezvous);
        // 2 x 1 us control + 9.192 us payload.
        assert_eq!(nominal_comm_duration(&cfg), SimDuration::from_nanos(11_192));
    }

    #[test]
    fn step_duration_sums_exec_and_comm() {
        let cfg = flat_cfg(Protocol::Eager);
        assert_eq!(
            nominal_step_duration(&cfg),
            SimDuration::from_millis(3) + SimDuration::from_nanos(9_192)
        );
    }

    #[test]
    fn memory_bound_exec_baseline_uses_full_socket() {
        let net = netmodel::presets::emmy_like(1, 20, 20);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            3,
        );
        cfg.exec = ExecModel::MemoryBound {
            bytes: 40_000_000,
            core_bw_bps: 10e9,
            socket_bw_bps: 40e9,
        };
        // 10 ranks/socket at 40 GB/s socket => 4 GB/s each => 10 ms.
        assert_eq!(nominal_exec_duration(&cfg), SimDuration::from_millis(10));
    }
}
