//! Deterministic checkpoint/restart.
//!
//! A [`Snapshot`] is a complete, versioned copy of a paused [`Engine`]:
//! the event queue (clock, sequence counters, every pending event), each
//! rank's state machine including its xoshiro256++ stream positions, the
//! protocol bookkeeping sets, fault-stream positions, partial trace
//! records, and the configuration the run was built from. Because the
//! engine is deterministic — integer timestamps, FIFO tie-breaking,
//! per-entity RNG streams — restoring a snapshot and running to completion
//! produces a trace **bit-identical** to the uninterrupted run, for any
//! cut point. `tests/checkpoint.rs` holds that contract as a `for_all`
//! property over seeds, fault plans, and cut points.
//!
//! ## On-disk format
//!
//! [`Snapshot::encode`] produces exactly two lines:
//!
//! ```text
//! {"version":1,"config":{...},"queue":{...},...}
//! {"snapshot_digest":1234567890}
//! ```
//!
//! The first line is the body; the second is an integrity footer carrying
//! the FNV-1a digest of the body's raw bytes ([`tracefmt::fnv1a_64`], the
//! same machinery as `Trace::fingerprint`). A torn write — truncated body,
//! missing footer, partial final line — fails the digest check and decodes
//! to an error instead of silently resuming wrong state.
//!
//! ## Rejection diagnostics
//!
//! Decode and restore failures are [`SimError::Snapshot`] values carrying
//! one of three RT-series codes, so callers (and their tests) can tell the
//! failure modes apart:
//!
//! * `RT003` — the body is intact but its `version` is not
//!   [`SNAPSHOT_VERSION`]: written by an incompatible build.
//! * `RT004` — the file is torn or corrupt: missing/bad footer, digest
//!   mismatch, unparseable body, or internally inconsistent state (queue
//!   events before the clock, wrong rank counts, degenerate RNG states).
//! * `RT005` — the snapshot is intact but was taken under a *different*
//!   configuration than the caller is restoring into.

use simdes::{EventQueue, SimDuration, SimRng, SimTime};
use tracefmt::json;
use tracefmt::{fnv1a_64, FromJson, Json, PhaseRecord, ToJson};

use crate::config::{Mode, SimConfig};
use crate::diag::Diagnostic;
use crate::engine::{
    EarlySet, Engine, Ev, Phase, RankState, Ranks, ReqState, Request, RunStats, TraceMode,
};
use crate::error::SimError;

/// Format version written into every snapshot body. Bump on any change to
/// the body schema; old files then decode to `RT003` instead of garbage.
pub const SNAPSHOT_VERSION: u32 = 1;

/// FNV-1a digest of a configuration's canonical JSON form. The sweep
/// runner records this in its JSONL header and per-scenario records so a
/// `--resume` against a different configuration is detected (satellite of
/// the same robustness contract the snapshot footer serves).
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    fnv1a_64(json::to_string(cfg).as_bytes())
}

/// When to cut checkpoints during [`Engine::try_run_checkpointed`]. Both
/// cadences may be active at once; either coming due triggers a snapshot.
/// The default is inert (no checkpoints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot when sim time advances this far past the previous cut.
    pub every_sim_time: Option<SimDuration>,
    /// Snapshot every this many delivered events.
    pub every_events: Option<u64>,
}

impl CheckpointPolicy {
    /// No checkpoints: [`Engine::try_run_checkpointed`] degenerates to
    /// [`Engine::try_run_with_stats`].
    pub fn none() -> Self {
        CheckpointPolicy::default()
    }

    /// `true` when at least one cadence is set.
    pub fn is_active(&self) -> bool {
        self.every_sim_time.is_some() || self.every_events.is_some()
    }
}

/// A complete copy of a paused [`Engine`], cut between event deliveries.
/// Capture with [`Engine::checkpoint`], persist with [`Snapshot::encode`],
/// load with [`Snapshot::decode`], and resume with [`Engine::restore`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) config: SimConfig,
    pub(crate) started: bool,
    pub(crate) now: SimTime,
    pub(crate) next_seq: u64,
    pub(crate) delivered: u64,
    pub(crate) events: Vec<(SimTime, u64, Ev)>,
    pub(crate) ranks: Vec<RankState>,
    pub(crate) early_rts: Vec<(u32, u32, u32)>,
    pub(crate) early_eager: Vec<(u32, u32, u32)>,
    pub(crate) outstanding_eager: Vec<(u32, u32, u64)>,
    pub(crate) socket_members: Vec<Vec<u32>>,
    pub(crate) records: Vec<PhaseRecord>,
    pub(crate) done_count: u32,
    pub(crate) nic_free: Vec<SimTime>,
    pub(crate) stats: RunStats,
    pub(crate) fault_rngs: Vec<(u32, u32, [u64; 4])>,
    pub(crate) crashed: Vec<u32>,
    pub(crate) lost: Vec<String>,
}

fn rt004(value: impl std::fmt::Display, message: impl Into<String>) -> SimError {
    SimError::Snapshot(Diagnostic::error("RT004", "snapshot", value, message))
}

impl Snapshot {
    /// Copy the full state of a paused engine. All hash containers are
    /// sorted into canonical order here so encoding is deterministic: the
    /// same engine state always produces byte-identical snapshot files.
    pub fn capture(engine: &Engine) -> Self {
        let early_rts = engine.early_rts.entries_sorted();
        let early_eager = engine.early_eager.entries_sorted();
        let mut outstanding_eager: Vec<_> = engine
            .outstanding_eager
            .iter()
            .map(|(&(s, d), &b)| (s, d, b))
            .collect();
        outstanding_eager.sort_unstable();
        let mut fault_rngs: Vec<_> = engine
            .fault_rngs
            .iter()
            .map(|(&(s, d), rng)| (s, d, rng.state()))
            .collect();
        fault_rngs.sort_unstable();
        Snapshot {
            config: engine.cfg.clone(),
            started: engine.started,
            now: engine.q.now(),
            next_seq: engine.q.next_seq(),
            delivered: engine.q.delivered(),
            events: engine
                .q
                .pending()
                .into_iter()
                .map(|(t, seq, ev)| (t, seq, *ev))
                .collect(),
            ranks: (0..engine.ranks.len())
                .map(|r| engine.ranks.state_of(r))
                .collect(),
            early_rts,
            early_eager,
            outstanding_eager,
            socket_members: engine
                .socket_members
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
            records: engine.records.clone(),
            done_count: engine.done_count,
            nic_free: engine.nic_free.clone(),
            stats: engine.stats,
            fault_rngs,
            crashed: engine.crashed.clone(),
            lost: engine.lost.clone(),
        }
    }

    /// The configuration the snapshot was taken under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulation clock at the cut point.
    pub fn sim_time(&self) -> SimTime {
        self.now
    }

    /// Events delivered before the cut point.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Trace records already completed at the cut point.
    pub fn records_done(&self) -> usize {
        self.records.len()
    }

    /// Serialize to the two-line body + integrity-footer format described
    /// in the module docs. The output ends with a newline.
    pub fn encode(&self) -> String {
        let body = json::to_string(&self.body_json());
        let footer = json::to_string(&Json::obj(vec![(
            "snapshot_digest",
            fnv1a_64(body.as_bytes()).to_json(),
        )]));
        format!("{body}\n{footer}\n")
    }

    /// Parse and verify an encoded snapshot. Works on raw bytes so torn
    /// files that are not even valid UTF-8 are still reported as `RT004`
    /// rather than panicking or erroring opaquely.
    pub fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        let Some(split) = bytes.iter().position(|&b| b == b'\n') else {
            return Err(rt004(
                format!("{} bytes", bytes.len()),
                "missing integrity footer (no newline): the snapshot write was torn",
            ));
        };
        let body_bytes = &bytes[..split];
        let footer_bytes = &bytes[split + 1..];
        let footer_text = std::str::from_utf8(footer_bytes)
            .map_err(|e| rt004(e, "integrity footer is not UTF-8"))?;
        let footer: Json = json::from_str(footer_text.trim_end())
            .map_err(|e| rt004(e, "integrity footer is not a JSON object"))?;
        let want = footer
            .field("snapshot_digest")
            .and_then(Json::expect_u64)
            .map_err(|e| rt004(e, "integrity footer lacks a snapshot_digest"))?;
        let got = fnv1a_64(body_bytes);
        if got != want {
            return Err(rt004(
                format!("expected {want:#018x}, found {got:#018x}"),
                "integrity digest mismatch: the snapshot file is torn or corrupt",
            ));
        }
        let body_text =
            std::str::from_utf8(body_bytes).map_err(|e| rt004(e, "snapshot body is not UTF-8"))?;
        let body = Json::parse(body_text).map_err(|e| {
            rt004(
                e,
                "snapshot body is not valid JSON despite a matching digest",
            )
        })?;
        // Version gates the schema: check it before decoding any other
        // field so future formats fail with RT003, not a confusing RT004.
        let version = body
            .field("version")
            .and_then(Json::expect_u64)
            .map_err(|e| rt004(e, "snapshot body lacks a version field"))?;
        if version != u64::from(SNAPSHOT_VERSION) {
            return Err(SimError::Snapshot(Diagnostic::error(
                "RT003",
                "snapshot",
                version,
                format!(
                    "unsupported snapshot version (this build reads version {SNAPSHOT_VERSION})"
                ),
            )));
        }
        let snap = Snapshot::from_body(&body)
            .map_err(|e| rt004(e, "snapshot body does not decode to a v1 snapshot"))?;
        snap.validate()?;
        Ok(snap)
    }

    /// Internal-consistency checks on decoded state, so a file that passes
    /// the digest but encodes impossible state (hand-edited, or produced
    /// by a buggy writer) is rejected as `RT004` instead of tripping
    /// asserts deep inside `EventQueue::restore` or `SimRng::from_state`.
    fn validate(&self) -> Result<(), SimError> {
        let nranks = self.config.ranks() as usize;
        if self.ranks.len() != nranks {
            return Err(rt004(
                self.ranks.len(),
                format!("snapshot holds state for the wrong rank count (config has {nranks})"),
            ));
        }
        if self.nic_free.len() != nranks {
            return Err(rt004(self.nic_free.len(), "nic_free length != rank count"));
        }
        let sockets = self.config.network.machine.total_sockets() as usize;
        if self.socket_members.len() != sockets {
            return Err(rt004(
                self.socket_members.len(),
                format!("socket_members length != machine socket count {sockets}"),
            ));
        }
        if self.delivered > self.next_seq {
            return Err(rt004(
                format!("delivered {} > next_seq {}", self.delivered, self.next_seq),
                "queue counters are inconsistent",
            ));
        }
        for &(t, seq, _) in &self.events {
            if t < self.now {
                return Err(rt004(
                    format!("event at t = {t} vs clock {}", self.now),
                    "a pending event lies before the snapshot clock",
                ));
            }
            if seq >= self.next_seq {
                return Err(rt004(
                    format!("seq {seq} vs next_seq {}", self.next_seq),
                    "a pending event's sequence number was never issued",
                ));
            }
        }
        for (i, r) in self.ranks.iter().enumerate() {
            if r.rng.state() == [0; 4] || r.comm_rng.state() == [0; 4] {
                return Err(rt004(i, "a rank RNG is in the degenerate all-zero state"));
            }
        }
        for &(s, d, st) in &self.fault_rngs {
            if st == [0; 4] {
                return Err(rt004(
                    format!("link {s} -> {d}"),
                    "a fault RNG is in the degenerate all-zero state",
                ));
            }
        }
        let done = self.ranks.iter().filter(|r| r.phase == Phase::Done).count() as u32;
        if done != self.done_count {
            return Err(rt004(
                format!("done_count {} vs {done} Done ranks", self.done_count),
                "completion counter disagrees with rank phases",
            ));
        }
        Ok(())
    }

    fn body_json(&self) -> Json {
        Json::obj(vec![
            ("version", SNAPSHOT_VERSION.to_json()),
            ("config", self.config.to_json()),
            ("started", self.started.to_json()),
            (
                "queue",
                Json::obj(vec![
                    ("now", self.now.to_json()),
                    ("next_seq", self.next_seq.to_json()),
                    ("delivered", self.delivered.to_json()),
                    (
                        "events",
                        Json::Array(
                            self.events
                                .iter()
                                .map(|&(t, seq, ev)| {
                                    Json::Array(vec![t.to_json(), seq.to_json(), ev.to_json()])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "ranks",
                Json::Array(self.ranks.iter().map(rank_to_json).collect()),
            ),
            ("early_rts", triples_to_json(&self.early_rts)),
            ("early_eager", triples_to_json(&self.early_eager)),
            (
                "outstanding_eager",
                Json::Array(
                    self.outstanding_eager
                        .iter()
                        .map(|&(s, d, b)| Json::Array(vec![s.to_json(), d.to_json(), b.to_json()]))
                        .collect(),
                ),
            ),
            ("socket_members", self.socket_members.to_json()),
            ("records", self.records.to_json()),
            ("done_count", self.done_count.to_json()),
            ("nic_free", self.nic_free.to_json()),
            ("stats", stats_to_json(&self.stats)),
            (
                "fault_rngs",
                Json::Array(
                    self.fault_rngs
                        .iter()
                        .map(|&(s, d, st)| {
                            Json::Array(vec![s.to_json(), d.to_json(), rng_words_to_json(st)])
                        })
                        .collect(),
                ),
            ),
            ("crashed", self.crashed.to_json()),
            ("lost", self.lost.to_json()),
        ])
    }

    fn from_body(v: &Json) -> json::Result<Self> {
        let q = v.field("queue")?;
        let events = q
            .field("events")?
            .expect_array()?
            .iter()
            .map(|e| {
                let parts = e.expect_array()?;
                if parts.len() != 3 {
                    return Err(json::JsonError(format!(
                        "queue event needs [time, seq, ev], got {} elements",
                        parts.len()
                    )));
                }
                Ok((
                    SimTime::from_json(&parts[0])?,
                    u64::from_json(&parts[1])?,
                    Ev::from_json(&parts[2])?,
                ))
            })
            .collect::<json::Result<Vec<_>>>()?;
        Ok(Snapshot {
            config: SimConfig::from_json(v.field("config")?)?,
            started: bool::from_json(v.field("started")?)?,
            now: SimTime::from_json(q.field("now")?)?,
            next_seq: u64::from_json(q.field("next_seq")?)?,
            delivered: u64::from_json(q.field("delivered")?)?,
            events,
            ranks: v
                .field("ranks")?
                .expect_array()?
                .iter()
                .map(rank_from_json)
                .collect::<json::Result<Vec<_>>>()?,
            early_rts: triples_from_json(v.field("early_rts")?)?,
            early_eager: triples_from_json(v.field("early_eager")?)?,
            outstanding_eager: v
                .field("outstanding_eager")?
                .expect_array()?
                .iter()
                .map(|e| {
                    let parts = e.expect_array()?;
                    Ok((
                        u32::from_json(&parts[0])?,
                        u32::from_json(&parts[1])?,
                        u64::from_json(&parts[2])?,
                    ))
                })
                .collect::<json::Result<Vec<_>>>()?,
            socket_members: Vec::<Vec<u32>>::from_json(v.field("socket_members")?)?,
            records: Vec::<PhaseRecord>::from_json(v.field("records")?)?,
            done_count: u32::from_json(v.field("done_count")?)?,
            nic_free: Vec::<SimTime>::from_json(v.field("nic_free")?)?,
            stats: stats_from_json(v.field("stats")?)?,
            fault_rngs: v
                .field("fault_rngs")?
                .expect_array()?
                .iter()
                .map(|e| {
                    let parts = e.expect_array()?;
                    Ok((
                        u32::from_json(&parts[0])?,
                        u32::from_json(&parts[1])?,
                        rng_words_from_json(&parts[2])?,
                    ))
                })
                .collect::<json::Result<Vec<_>>>()?,
            crashed: Vec::<u32>::from_json(v.field("crashed")?)?,
            lost: Vec::<String>::from_json(v.field("lost")?)?,
        })
    }
}

impl Engine {
    /// Capture a [`Snapshot`] of the engine's full state. Meaningful at
    /// any point between event deliveries; [`Engine::try_run_checkpointed`]
    /// calls this on the [`CheckpointPolicy`] cadence.
    ///
    /// # Panics
    /// Panics on a [`TraceMode::Summary`] engine: summary mode discards
    /// the completed records a resumable snapshot must carry.
    pub fn checkpoint(&self) -> Snapshot {
        assert!(
            self.mode == TraceMode::Full,
            "cannot checkpoint a summary-mode run: completed records are not retained"
        );
        Snapshot::capture(self)
    }

    /// Rebuild a runnable engine from a snapshot. `cfg` must equal the
    /// configuration the snapshot was taken under (`RT005` otherwise) —
    /// pass `snap.config().clone()` to resume under the embedded one.
    /// Returns `RT004` for snapshots whose state is internally
    /// inconsistent with the configuration.
    ///
    /// Running the restored engine to completion yields a trace
    /// bit-identical to the uninterrupted original run.
    pub fn restore(cfg: SimConfig, snap: &Snapshot) -> Result<Engine, SimError> {
        let diags = cfg.check();
        if crate::diag::has_errors(&diags) {
            let errors = diags.into_iter().filter(|d| d.is_error()).collect();
            return Err(SimError::InvalidConfig(errors));
        }
        if cfg != snap.config {
            return Err(SimError::Snapshot(Diagnostic::error(
                "RT005",
                "snapshot",
                format!(
                    "snapshot config fingerprint {:#018x}, caller's {:#018x}",
                    config_fingerprint(&snap.config),
                    config_fingerprint(&cfg)
                ),
                "snapshot was taken under a different configuration; \
                 refusing to resume into mismatched state",
            )));
        }
        // Re-run the structural checks: a Snapshot built in-process is
        // always valid, but `restore` is also the last line of defence for
        // snapshots assembled by future decoders.
        snap.validate()?;
        // Scaffold rebuilds every derived cache (partner CSR, link costs,
        // base execution times) from the — already equality-checked —
        // config, then the snapshot's dynamic state overwrites the fresh
        // defaults.
        let mut e = Engine::scaffold(cfg, None);
        let n = snap.ranks.len();
        e.q = EventQueue::restore(snap.now, snap.next_seq, snap.delivered, snap.events.clone());
        e.ranks = Ranks::from_states(&snap.ranks);
        e.early_rts = EarlySet::from_entries(n, &snap.early_rts);
        e.early_eager = EarlySet::from_entries(n, &snap.early_eager);
        e.outstanding_eager = snap
            .outstanding_eager
            .iter()
            .map(|&(s, d, b)| ((s, d), b))
            .collect();
        e.socket_members = snap
            .socket_members
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        e.records = snap.records.clone();
        e.done_count = snap.done_count;
        e.nic_free = snap.nic_free.clone();
        e.stats = snap.stats;
        e.fault_rngs = snap
            .fault_rngs
            .iter()
            .map(|&(s, d, st)| ((s, d), SimRng::from_state(st)))
            .collect();
        e.crashed = snap.crashed.clone();
        e.lost = snap.lost.clone();
        e.started = snap.started;
        e.recount_requests();
        Ok(e)
    }
}

// ---- field-level serialization helpers ----------------------------------

fn triples_to_json(v: &[(u32, u32, u32)]) -> Json {
    Json::Array(
        v.iter()
            .map(|&(a, b, c)| Json::Array(vec![a.to_json(), b.to_json(), c.to_json()]))
            .collect(),
    )
}

fn triples_from_json(v: &Json) -> json::Result<Vec<(u32, u32, u32)>> {
    v.expect_array()?
        .iter()
        .map(|e| {
            let parts = e.expect_array()?;
            if parts.len() != 3 {
                return Err(json::JsonError(format!(
                    "expected [a, b, c] triple, got {} elements",
                    parts.len()
                )));
            }
            Ok((
                u32::from_json(&parts[0])?,
                u32::from_json(&parts[1])?,
                u32::from_json(&parts[2])?,
            ))
        })
        .collect()
}

fn rng_words_to_json(s: [u64; 4]) -> Json {
    Json::Array(s.iter().map(|w| w.to_json()).collect())
}

fn rng_words_from_json(v: &Json) -> json::Result<[u64; 4]> {
    let parts = v.expect_array()?;
    if parts.len() != 4 {
        return Err(json::JsonError(format!(
            "xoshiro state needs 4 words, got {}",
            parts.len()
        )));
    }
    Ok([
        u64::from_json(&parts[0])?,
        u64::from_json(&parts[1])?,
        u64::from_json(&parts[2])?,
        u64::from_json(&parts[3])?,
    ])
}

fn stats_to_json(s: &RunStats) -> Json {
    Json::obj(vec![
        ("events", s.events.to_json()),
        ("peak_queue", (s.peak_queue as u64).to_json()),
        ("messages", s.messages.to_json()),
        ("eager_fallbacks", s.eager_fallbacks.to_json()),
        ("retransmissions", s.retransmissions.to_json()),
        ("dropped_transfers", s.dropped_transfers.to_json()),
        ("corrupted_transfers", s.corrupted_transfers.to_json()),
        ("lost_transfers", s.lost_transfers.to_json()),
    ])
}

fn stats_from_json(v: &Json) -> json::Result<RunStats> {
    Ok(RunStats {
        events: u64::from_json(v.field("events")?)?,
        peak_queue: u64::from_json(v.field("peak_queue")?)? as usize,
        messages: u64::from_json(v.field("messages")?)?,
        eager_fallbacks: u64::from_json(v.field("eager_fallbacks")?)?,
        retransmissions: u64::from_json(v.field("retransmissions")?)?,
        dropped_transfers: u64::from_json(v.field("dropped_transfers")?)?,
        corrupted_transfers: u64::from_json(v.field("corrupted_transfers")?)?,
        lost_transfers: u64::from_json(v.field("lost_transfers")?)?,
    })
}

fn rank_to_json(r: &RankState) -> Json {
    Json::obj(vec![
        ("phase", r.phase.to_json()),
        ("step", r.step.to_json()),
        (
            "reqs",
            Json::Array(r.reqs.iter().map(req_to_json).collect()),
        ),
        ("exec_start", r.exec_start.to_json()),
        ("exec_end", r.exec_end.to_json()),
        ("injected", r.injected.to_json()),
        ("noise", r.noise_amt.to_json()),
        ("epoch", r.epoch.to_json()),
        // f64 stored as raw IEEE-754 bits: JSON decimal round-tripping is
        // not allowed anywhere near a bit-identical-resume contract.
        (
            "remaining_bytes_bits",
            r.remaining_bytes.to_bits().to_json(),
        ),
        ("last_update", r.last_update.to_json()),
        ("rng", rng_words_to_json(r.rng.state())),
        ("comm_rng", rng_words_to_json(r.comm_rng.state())),
    ])
}

fn rank_from_json(v: &Json) -> json::Result<RankState> {
    let rng_words = rng_words_from_json(v.field("rng")?)?;
    let comm_words = rng_words_from_json(v.field("comm_rng")?)?;
    if rng_words == [0; 4] || comm_words == [0; 4] {
        return Err(json::JsonError(
            "all-zero xoshiro state in rank snapshot".to_string(),
        ));
    }
    Ok(RankState {
        phase: Phase::from_json(v.field("phase")?)?,
        step: u32::from_json(v.field("step")?)?,
        reqs: v
            .field("reqs")?
            .expect_array()?
            .iter()
            .map(req_from_json)
            .collect::<json::Result<Vec<_>>>()?,
        exec_start: SimTime::from_json(v.field("exec_start")?)?,
        exec_end: SimTime::from_json(v.field("exec_end")?)?,
        injected: SimDuration::from_json(v.field("injected")?)?,
        noise_amt: SimDuration::from_json(v.field("noise")?)?,
        epoch: u64::from_json(v.field("epoch")?)?,
        remaining_bytes: f64::from_bits(u64::from_json(v.field("remaining_bytes_bits")?)?),
        last_update: SimTime::from_json(v.field("last_update")?)?,
        rng: SimRng::from_state(rng_words),
        comm_rng: SimRng::from_state(comm_words),
    })
}

fn req_to_json(r: &Request) -> Json {
    Json::obj(vec![
        ("peer", r.peer.to_json()),
        ("is_send", r.is_send.to_json()),
        ("mode", r.mode.to_json()),
        ("state", r.state.to_json()),
    ])
}

fn req_from_json(v: &Json) -> json::Result<Request> {
    Ok(Request {
        peer: u32::from_json(v.field("peer")?)?,
        is_send: bool::from_json(v.field("is_send")?)?,
        mode: Mode::from_json(v.field("mode")?)?,
        state: ReqState::from_json(v.field("state")?)?,
    })
}

impl ToJson for Phase {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Phase::Computing => "Computing",
                Phase::Waiting => "Waiting",
                Phase::Done => "Done",
                Phase::Crashed => "Crashed",
            }
            .to_string(),
        )
    }
}

impl FromJson for Phase {
    fn from_json(v: &Json) -> json::Result<Self> {
        match v.expect_str()? {
            "Computing" => Ok(Phase::Computing),
            "Waiting" => Ok(Phase::Waiting),
            "Done" => Ok(Phase::Done),
            "Crashed" => Ok(Phase::Crashed),
            other => Err(json::JsonError(format!("unknown Phase variant '{other}'"))),
        }
    }
}

impl ToJson for ReqState {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ReqState::Unmatched => "Unmatched",
                ReqState::MatchedNoCts => "MatchedNoCts",
                ReqState::InFlight => "InFlight",
                ReqState::Complete => "Complete",
            }
            .to_string(),
        )
    }
}

impl FromJson for ReqState {
    fn from_json(v: &Json) -> json::Result<Self> {
        match v.expect_str()? {
            "Unmatched" => Ok(ReqState::Unmatched),
            "MatchedNoCts" => Ok(ReqState::MatchedNoCts),
            "InFlight" => Ok(ReqState::InFlight),
            "Complete" => Ok(ReqState::Complete),
            other => Err(json::JsonError(format!(
                "unknown ReqState variant '{other}'"
            ))),
        }
    }
}

impl ToJson for Ev {
    fn to_json(&self) -> Json {
        let variant =
            |name: &str, fields: Vec<(&str, Json)>| Json::obj(vec![(name, Json::obj(fields))]);
        match *self {
            Ev::ExecEnd { rank, epoch } => variant(
                "ExecEnd",
                vec![("rank", rank.to_json()), ("epoch", epoch.to_json())],
            ),
            Ev::WorkStart { rank } => variant("WorkStart", vec![("rank", rank.to_json())]),
            Ev::WorkEnd { rank, epoch } => variant(
                "WorkEnd",
                vec![("rank", rank.to_json()), ("epoch", epoch.to_json())],
            ),
            Ev::RtsArrive { src, dst, step } => variant(
                "RtsArrive",
                vec![
                    ("src", src.to_json()),
                    ("dst", dst.to_json()),
                    ("step", step.to_json()),
                ],
            ),
            Ev::CtsArrive {
                sender,
                receiver,
                step,
            } => variant(
                "CtsArrive",
                vec![
                    ("sender", sender.to_json()),
                    ("receiver", receiver.to_json()),
                    ("step", step.to_json()),
                ],
            ),
            Ev::EagerArrive { src, dst, step } => variant(
                "EagerArrive",
                vec![
                    ("src", src.to_json()),
                    ("dst", dst.to_json()),
                    ("step", step.to_json()),
                ],
            ),
            Ev::XferDone {
                sender,
                receiver,
                step,
            } => variant(
                "XferDone",
                vec![
                    ("sender", sender.to_json()),
                    ("receiver", receiver.to_json()),
                    ("step", step.to_json()),
                ],
            ),
        }
    }
}

impl FromJson for Ev {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (name, body) = v.expect_variant()?;
        match name {
            "ExecEnd" => Ok(Ev::ExecEnd {
                rank: u32::from_json(body.field("rank")?)?,
                epoch: u64::from_json(body.field("epoch")?)?,
            }),
            "WorkStart" => Ok(Ev::WorkStart {
                rank: u32::from_json(body.field("rank")?)?,
            }),
            "WorkEnd" => Ok(Ev::WorkEnd {
                rank: u32::from_json(body.field("rank")?)?,
                epoch: u64::from_json(body.field("epoch")?)?,
            }),
            "RtsArrive" => Ok(Ev::RtsArrive {
                src: u32::from_json(body.field("src")?)?,
                dst: u32::from_json(body.field("dst")?)?,
                step: u32::from_json(body.field("step")?)?,
            }),
            "CtsArrive" => Ok(Ev::CtsArrive {
                sender: u32::from_json(body.field("sender")?)?,
                receiver: u32::from_json(body.field("receiver")?)?,
                step: u32::from_json(body.field("step")?)?,
            }),
            "EagerArrive" => Ok(Ev::EagerArrive {
                src: u32::from_json(body.field("src")?)?,
                dst: u32::from_json(body.field("dst")?)?,
                step: u32::from_json(body.field("step")?)?,
            }),
            "XferDone" => Ok(Ev::XferDone {
                sender: u32::from_json(body.field("sender")?)?,
                receiver: u32::from_json(body.field("receiver")?)?,
                step: u32::from_json(body.field("step")?)?,
            }),
            other => Err(json::JsonError(format!("unknown Ev variant '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use netmodel::presets;
    use workload::{Boundary, CommPattern, Direction};

    use super::*;
    use crate::config::Protocol;
    use crate::error::RunLimits;
    use crate::faults::FaultPlan;

    fn cfg(ranks: u32, steps: u32) -> SimConfig {
        let net = presets::loggopsim_like(ranks);
        let mut c = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            steps,
        );
        c.protocol = Protocol::Rendezvous;
        c
    }

    /// Capture a snapshot after `cut` events and also the uninterrupted
    /// trace, from identical engines.
    fn snapshot_at(c: &SimConfig, cut: u64) -> (Snapshot, tracefmt::Trace) {
        let mut first: Option<Snapshot> = None;
        let policy = CheckpointPolicy {
            every_sim_time: None,
            every_events: Some(cut),
        };
        let (trace, _) = Engine::try_new(c.clone())
            .expect("valid config")
            .try_run_checkpointed(&RunLimits::none(), &policy, |s| {
                if first.is_none() {
                    first = Some(s.clone());
                }
            })
            .expect("run completes");
        (first.expect("run has at least `cut` events"), trace)
    }

    #[test]
    fn restore_resumes_bit_identically() {
        let c = cfg(6, 4);
        let (snap, full_trace) = snapshot_at(&c, 9);
        assert!(snap.events_delivered() >= 9);
        let resumed = Engine::restore(c, &snap)
            .expect("valid snapshot restores")
            .run();
        assert_eq!(resumed.fingerprint(), full_trace.fingerprint());
        assert_eq!(resumed, full_trace);
    }

    #[test]
    fn encode_decode_round_trips_and_is_deterministic() {
        let mut c = cfg(5, 3);
        c.faults = FaultPlan::none().with_drops(0.2, SimDuration::from_micros(150));
        let (snap, full_trace) = snapshot_at(&c, 14);
        let text = snap.encode();
        assert_eq!(text, snap.encode(), "encoding must be deterministic");
        let decoded = Snapshot::decode(text.as_bytes()).expect("own encoding decodes");
        assert_eq!(decoded.encode(), text, "decode/encode round trip");
        let resumed = Engine::restore(decoded.config().clone(), &decoded)
            .expect("decoded snapshot restores")
            .run();
        assert_eq!(resumed.fingerprint(), full_trace.fingerprint());
    }

    #[test]
    fn fresh_engine_snapshot_restores_the_whole_run() {
        // `started: false` round trip: checkpointing before the first event
        // must yield a snapshot that reproduces the entire run.
        let c = cfg(4, 3);
        let baseline = Engine::new(c.clone()).run();
        let snap = Engine::try_new(c.clone()).expect("valid").checkpoint();
        assert!(!snap.started);
        let resumed = Engine::restore(c, &snap).expect("restores").run();
        assert_eq!(resumed.fingerprint(), baseline.fingerprint());
    }

    #[test]
    fn config_mismatch_is_rt005() {
        let c = cfg(5, 3);
        let (snap, _) = snapshot_at(&c, 5);
        let mut other = c;
        other.seed = other.seed.wrapping_add(1);
        let err = Engine::restore(other, &snap).err().expect("seed differs");
        let SimError::Snapshot(d) = err else {
            panic!("expected snapshot rejection, got {err:?}");
        };
        assert_eq!(d.code, "RT005");
    }

    #[test]
    fn torn_and_corrupt_files_are_rt004() {
        let (snap, _) = snapshot_at(&cfg(4, 3), 6);
        let text = snap.encode();
        // Truncated mid-body: no footer newline survives in the prefix.
        let torn = &text.as_bytes()[..text.len() / 3];
        let err = Snapshot::decode(torn).expect_err("torn file");
        assert_eq!(err.clone().into_diagnostics()[0].code, "RT004");
        // One flipped byte in the body fails the digest.
        let mut flipped = text.clone().into_bytes();
        flipped[10] ^= 0x01;
        let err = Snapshot::decode(&flipped).expect_err("flipped byte");
        assert_eq!(err.into_diagnostics()[0].code, "RT004");
        // Binary garbage is rejected, not a panic.
        let err = Snapshot::decode(&[0xff, 0xfe, b'\n', 0x00]).expect_err("garbage");
        assert_eq!(err.into_diagnostics()[0].code, "RT004");
    }

    #[test]
    fn wrong_version_is_rt003() {
        let (snap, _) = snapshot_at(&cfg(4, 3), 6);
        let text = snap.encode();
        let (body, _) = text.split_once('\n').expect("two lines");
        let tampered_body = body.replacen("\"version\":1", "\"version\":99", 1);
        assert_ne!(body, tampered_body, "version field must be present");
        let tampered = format!(
            "{tampered_body}\n{}\n",
            json::to_string(&Json::obj(vec![(
                "snapshot_digest",
                fnv1a_64(tampered_body.as_bytes()).to_json(),
            )]))
        );
        let err = Snapshot::decode(tampered.as_bytes()).expect_err("future version");
        assert_eq!(err.into_diagnostics()[0].code, "RT003");
    }

    #[test]
    fn config_fingerprint_tracks_config_identity() {
        let a = cfg(5, 3);
        let mut b = a.clone();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        b.seed ^= 0xdead_beef;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }
}
