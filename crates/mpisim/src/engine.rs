//! The discrete-event message-passing engine.
//!
//! Each rank is a small state machine cycling through `Computing →
//! Waiting → Computing → … → Done`:
//!
//! 1. **Computing**: the execution phase. Its length is the execution
//!    model's work time plus any injected one-off delay plus sampled noise.
//!    For the memory-bound model the work time is dynamic: ranks working
//!    concurrently on one socket share its memory bandwidth
//!    (processor-sharing fluid model; rates re-integrate at every
//!    join/leave).
//! 2. **Waiting**: at the end of the execution phase the rank posts all
//!    nonblocking receives and sends for the step (`MPI_Isend`/`MPI_Irecv`)
//!    and enters `MPI_Waitall`. The step completes when every request
//!    completes.
//!
//! ## Protocol semantics
//!
//! * **Eager**: a send completes immediately at post (internal buffering);
//!   the payload arrives at the receiver one transfer time later and the
//!   matching receive completes at `max(arrival, post)`. With a finite
//!   eager-buffer capacity, a send that would overflow the outstanding
//!   unconsumed bytes towards its destination falls back to rendezvous
//!   (paper, footnote 1).
//! * **Rendezvous**: the sender posts an RTS control message. The receiver
//!   answers with a CTS, *but only once none of its posted receives is
//!   still unmatched* — the head-of-line CTS gating rule. On CTS the
//!   payload transfer starts; both requests complete when it ends.
//!
//! The CTS gating rule is the one modelling choice that is not literal MPI
//! standard text, and it is load-bearing: it abstracts the weak-progress /
//! serialized request servicing of real MPI libraries inside a blocked
//! `MPI_Waitall`, and it is what reproduces the **2× idle-wave propagation
//! speed for bidirectional rendezvous communication** that the paper
//! measures on real hardware (Fig. 5 g/h, Fig. 7, Eq. 2's σ = 2). With
//! per-request autonomous progress instead, simulation gives σ = 1 in all
//! modes, contradicting the measurements. See DESIGN.md §5.
//!
//! Everything is deterministic: integer-nanosecond timestamps, FIFO tie
//! breaking, per-rank RNG streams derived from the master seed.
//!
//! ## Hot-path layout (see docs/PERF.md)
//!
//! Per-rank dynamic state lives in [`Ranks`], a structure-of-arrays: the
//! event loop touches one or two fields of many ranks, so parallel `Vec`s
//! keep those accesses dense where an array-of-structs would drag the
//! whole 150-byte record through the cache per touch. Derived lookups that
//! never change during a run — communication partners ([`PartnerCsr`]),
//! per-domain link costs ([`LinkCache`]), per-rank execution times — are
//! precomputed at construction so the per-event work is a handful of array
//! index operations. Everything per-step that needs heap space (request
//! lists, partner scratch, CTS scratch) is reused across steps and, via
//! [`EnginePools`], across whole runs.

// The hash containers below are membership maps that are never iterated,
// so their nondeterministic order cannot leak into traces.
use std::collections::{BTreeSet, HashMap, VecDeque}; // simlint: allow(hash-collections)

use netmodel::{Domain, PointToPoint};
use simdes::{EventQueue, SeedFactory, SimDuration, SimRng, SimTime};
use tracefmt::{PhaseRecord, Trace};
use workload::{CommPattern, ExecModel};

use crate::config::{Mode, NoisePlacement, SimConfig};
use crate::diag;
use crate::error::{RunLimits, SimError};
use crate::faults::{CrashOutcome, Delivery};
use crate::snapshot::{CheckpointPolicy, Snapshot};

mod dispatch;

/// Events of the message-passing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    /// A rank's execution phase ends (work + injected delay + noise done).
    ExecEnd { rank: u32, epoch: u64 },
    /// A memory-bound rank's injected delay ended; it starts contending
    /// for socket bandwidth.
    WorkStart { rank: u32 },
    /// A memory-bound rank's shared-bandwidth work finished.
    WorkEnd { rank: u32, epoch: u64 },
    /// A rendezvous ready-to-send control message reaches the receiver.
    RtsArrive { src: u32, dst: u32, step: u32 },
    /// A clear-to-send control message reaches the data sender.
    CtsArrive {
        sender: u32,
        receiver: u32,
        step: u32,
    },
    /// An eager payload reaches the receiver.
    EagerArrive { src: u32, dst: u32, step: u32 },
    /// A rendezvous payload transfer completes (both endpoints).
    XferDone {
        sender: u32,
        receiver: u32,
        step: u32,
    },
}

/// Lifecycle of one posted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqState {
    /// Rendezvous recv without RTS, eager recv without data, rendezvous
    /// send without CTS: waiting on an external event.
    Unmatched,
    /// Rendezvous recv whose RTS arrived but whose CTS is withheld by the
    /// head-of-line gating rule.
    MatchedNoCts,
    /// A transfer with a known completion time is under way.
    InFlight,
    /// Done.
    Complete,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    pub(crate) peer: u32,
    pub(crate) is_send: bool,
    pub(crate) mode: Mode,
    pub(crate) state: ReqState,
}

/// Number of [`Request`] slots stored inline in [`ReqSlots`]. Next-neighbor
/// patterns post at most two receives and two sends per step, so four slots
/// cover every stencil config without touching the heap.
const REQ_INLINE: usize = 4;

/// A rank's posted requests for the current step. The inline array keeps
/// the whole list (plus its length) on the rank's own cache line — the
/// request-matching scans in the message handlers are the hottest reads in
/// the engine, and a per-rank `Vec` would put them behind a second
/// dependent pointer chase. Wider communication graphs (schedules, dense
/// stencils) spill to a heap vector that keeps its capacity across steps.
#[derive(Debug, Clone)]
pub(crate) struct ReqSlots {
    len: u32,
    inline: [Request; REQ_INLINE],
    spill: Vec<Request>,
}

impl Default for ReqSlots {
    fn default() -> Self {
        const EMPTY: Request = Request {
            peer: 0,
            is_send: false,
            mode: Mode::Eager,
            state: ReqState::Complete,
        };
        ReqSlots {
            len: 0,
            inline: [EMPTY; REQ_INLINE],
            spill: Vec::new(),
        }
    }
}

impl ReqSlots {
    pub(crate) fn from_slice(reqs: &[Request]) -> Self {
        let mut s = ReqSlots::default();
        for &r in reqs {
            s.push(r);
        }
        s
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    pub(crate) fn reserve(&mut self, n: usize) {
        if n > REQ_INLINE {
            self.spill.reserve(n.saturating_sub(self.spill.len()));
        }
    }

    /// Heap capacity only; the inline slots are part of the struct.
    fn spill_capacity(&self) -> usize {
        self.spill.capacity()
    }

    pub(crate) fn push(&mut self, r: Request) {
        let n = self.len as usize;
        if n < REQ_INLINE {
            self.inline[n] = r;
        } else {
            if n == REQ_INLINE {
                // First spill: migrate the inline slots so the whole list
                // lives in one place and `as_slice` stays contiguous.
                self.spill.clear();
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(r);
        }
        self.len += 1;
    }

    pub(crate) fn as_slice(&self) -> &[Request] {
        if self.len as usize <= REQ_INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [Request] {
        if self.len as usize <= REQ_INLINE {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }

    pub(crate) fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.as_slice().iter()
    }

    pub(crate) fn iter_mut(&mut self) -> std::slice::IterMut<'_, Request> {
        self.as_mut_slice().iter_mut()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Computing,
    Waiting,
    Done,
    /// Fail-stop crash (see [`crate::faults::RankFaultKind::Crash`]): the
    /// rank never progresses again and its peers starve.
    Crashed,
}

/// One rank's dynamic state as a single record — the snapshot interchange
/// form. The engine itself stores this state as structure-of-arrays
/// ([`Ranks`]); `RankState` survives as the unit the checkpoint format
/// serializes, keeping the on-disk schema independent of the in-memory
/// layout.
#[derive(Debug, Clone)]
pub(crate) struct RankState {
    pub(crate) phase: Phase,
    pub(crate) step: u32,
    pub(crate) reqs: Vec<Request>,
    pub(crate) exec_start: SimTime,
    pub(crate) exec_end: SimTime,
    pub(crate) injected: SimDuration,
    pub(crate) noise_amt: SimDuration,
    pub(crate) epoch: u64,
    /// Memory-bound: bytes of phase traffic still to move.
    pub(crate) remaining_bytes: f64,
    /// Memory-bound: last time `remaining_bytes` was integrated.
    pub(crate) last_update: SimTime,
    pub(crate) rng: SimRng,
    pub(crate) comm_rng: SimRng,
}

/// Per-rank dynamic state, structure-of-arrays. Index `r` across every
/// vector is rank `r`'s state; [`Ranks::state_of`]/[`Ranks::from_states`]
/// convert to and from the [`RankState`] snapshot interchange form.
#[derive(Debug)]
pub(crate) struct Ranks {
    pub(crate) phase: Vec<Phase>,
    pub(crate) step: Vec<u32>,
    pub(crate) reqs: Vec<ReqSlots>,
    pub(crate) exec_start: Vec<SimTime>,
    pub(crate) exec_end: Vec<SimTime>,
    pub(crate) injected: Vec<SimDuration>,
    pub(crate) noise_amt: Vec<SimDuration>,
    pub(crate) epoch: Vec<u64>,
    pub(crate) remaining_bytes: Vec<f64>,
    pub(crate) last_update: Vec<SimTime>,
    pub(crate) rng: Vec<SimRng>,
    pub(crate) comm_rng: Vec<SimRng>,
}

impl Ranks {
    fn new(nranks: u32, seeds: &SeedFactory, reqs: Vec<ReqSlots>) -> Self {
        let n = nranks as usize;
        let mut reqs = reqs;
        reqs.iter_mut().for_each(ReqSlots::clear);
        reqs.resize_with(n, ReqSlots::default);
        reqs.truncate(n);
        Ranks {
            phase: vec![Phase::Computing; n],
            step: vec![0; n],
            reqs,
            exec_start: vec![SimTime::ZERO; n],
            exec_end: vec![SimTime::ZERO; n],
            injected: vec![SimDuration::ZERO; n],
            noise_amt: vec![SimDuration::ZERO; n],
            epoch: vec![0; n],
            remaining_bytes: vec![0.0; n],
            last_update: vec![SimTime::ZERO; n],
            rng: (0..nranks)
                .map(|r| seeds.stream("exec-noise", u64::from(r)))
                .collect(),
            comm_rng: (0..nranks)
                .map(|r| seeds.stream("comm-noise", u64::from(r)))
                .collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.phase.len()
    }

    /// Rank `r`'s state gathered into the snapshot interchange record.
    pub(crate) fn state_of(&self, r: usize) -> RankState {
        RankState {
            phase: self.phase[r],
            step: self.step[r],
            reqs: self.reqs[r].as_slice().to_vec(),
            exec_start: self.exec_start[r],
            exec_end: self.exec_end[r],
            injected: self.injected[r],
            noise_amt: self.noise_amt[r],
            epoch: self.epoch[r],
            remaining_bytes: self.remaining_bytes[r],
            last_update: self.last_update[r],
            rng: self.rng[r].clone(),
            comm_rng: self.comm_rng[r].clone(),
        }
    }

    /// Scatter snapshot records back into the SoA layout.
    pub(crate) fn from_states(states: &[RankState]) -> Self {
        Ranks {
            phase: states.iter().map(|s| s.phase).collect(),
            step: states.iter().map(|s| s.step).collect(),
            reqs: states
                .iter()
                .map(|s| ReqSlots::from_slice(&s.reqs))
                .collect(),
            exec_start: states.iter().map(|s| s.exec_start).collect(),
            exec_end: states.iter().map(|s| s.exec_end).collect(),
            injected: states.iter().map(|s| s.injected).collect(),
            noise_amt: states.iter().map(|s| s.noise_amt).collect(),
            epoch: states.iter().map(|s| s.epoch).collect(),
            remaining_bytes: states.iter().map(|s| s.remaining_bytes).collect(),
            last_update: states.iter().map(|s| s.last_update).collect(),
            rng: states.iter().map(|s| s.rng.clone()).collect(),
            comm_rng: states.iter().map(|s| s.comm_rng.clone()).collect(),
        }
    }
}

/// Early-arrival set (RTS or eager payloads that beat the matching recv
/// post), stored per destination rank. The per-`dst` lists are almost
/// always empty and never hold more than a rank's in-degree, so a linear
/// scan beats hashing the `(src, dst, step)` triple — membership updates
/// sit on the per-message hot path.
#[derive(Debug)]
pub(crate) struct EarlySet {
    per_dst: Vec<Vec<(u32, u32)>>,
}

impl EarlySet {
    fn new(nranks: usize) -> Self {
        EarlySet {
            per_dst: vec![Vec::new(); nranks],
        }
    }

    fn insert(&mut self, src: u32, dst: u32, step: u32) {
        let v = &mut self.per_dst[dst as usize];
        // Set semantics: a duplicate arrival is recorded once.
        if !v.contains(&(src, step)) {
            v.push((src, step));
        }
    }

    fn remove(&mut self, src: u32, dst: u32, step: u32) -> bool {
        let v = &mut self.per_dst[dst as usize];
        match v.iter().position(|&e| e == (src, step)) {
            Some(i) => {
                v.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// All entries as `(src, dst, step)` triples in canonical sorted
    /// order — the form the snapshot schema stores.
    pub(crate) fn entries_sorted(&self) -> Vec<(u32, u32, u32)> {
        let mut out: Vec<(u32, u32, u32)> = self
            .per_dst
            .iter()
            .enumerate()
            .flat_map(|(dst, v)| v.iter().map(move |&(src, step)| (src, dst as u32, step)))
            .collect();
        out.sort_unstable();
        out
    }

    pub(crate) fn from_entries(nranks: usize, entries: &[(u32, u32, u32)]) -> Self {
        let mut set = EarlySet::new(nranks);
        for &(src, dst, step) in entries {
            set.insert(src, dst, step);
        }
        set
    }
}

/// Per-rank communication partners in compressed sparse row form, built
/// once at construction for pattern-driven runs (a [`CommPattern`]'s
/// partner queries allocate a fresh `Vec` per call — off the hot path).
/// Schedule-driven runs read the schedule's own per-step graphs instead.
#[derive(Debug)]
struct PartnerCsr {
    recv_off: Vec<u32>,
    recv: Vec<u32>,
    send_off: Vec<u32>,
    send: Vec<u32>,
}

impl PartnerCsr {
    fn build(pattern: &CommPattern, nranks: u32) -> Self {
        let mut recv_off = Vec::with_capacity(nranks as usize + 1);
        let mut send_off = Vec::with_capacity(nranks as usize + 1);
        let mut recv = Vec::new();
        let mut send = Vec::new();
        recv_off.push(0);
        send_off.push(0);
        for r in 0..nranks {
            recv.extend(pattern.recv_partners(r, nranks));
            send.extend(pattern.send_partners(r, nranks));
            recv_off.push(recv.len() as u32);
            send_off.push(send.len() as u32);
        }
        PartnerCsr {
            recv_off,
            recv,
            send_off,
            send,
        }
    }

    #[inline]
    fn recv_of(&self, r: u32) -> &[u32] {
        &self.recv[self.recv_off[r as usize] as usize..self.recv_off[r as usize + 1] as usize]
    }

    #[inline]
    fn send_of(&self, r: u32) -> &[u32] {
        &self.send[self.send_off[r as usize] as usize..self.send_off[r as usize + 1] as usize]
    }
}

/// Whether `cfg` can take the engine's fused fast path (`run_fused`).
///
/// The fused path collapses each (rank, step) cell's compute → post →
/// match → complete event chain into one macro-step, which is only sound
/// when every decision along that chain is statically determined:
///
/// * static partner lists (a `schedule` interposes a per-step graph),
/// * a `Compute` execution model (memory-bound work times depend on who
///   else occupies the socket at the time),
/// * pure eager protocol with an unbounded buffer (rendezvous and the
///   finite-buffer fallback gate progress on the receiver),
/// * unserialized sends (the NIC port serializes across steps),
/// * noise on the execution phase only (comm noise draws from a
///   per-transfer RNG stream whose draw order the fused cascade does not
///   preserve),
/// * and no fault plan of any kind (faults reroute steps dynamically).
///
/// Eligibility is necessary but not sufficient: the engine additionally
/// requires the pattern's send/recv lists to be duals of each other
/// ([`FusedPlan::build`]), and budgeted, checkpointed, and restored runs
/// always take the general event loop regardless — see `run_loop`.
pub fn fused_path_eligible(cfg: &SimConfig) -> bool {
    cfg.schedule.is_none()
        && matches!(cfg.exec, ExecModel::Compute { .. })
        && cfg.protocol.mode_for(cfg.msg_bytes) == Mode::Eager
        && cfg.eager_buffer_bytes.is_none()
        && !cfg.serialize_sends
        && matches!(cfg.noise_placement, NoisePlacement::ExecOnly)
        && cfg.faults.is_empty()
}

/// Precomputed plan for the fused fast path: for every send slot of the
/// [`PartnerCsr`], the receiver-side recv slot ("edge") its payload lands
/// in and the static transfer cost of the link. Built once at
/// construction iff the config is [`fused_path_eligible`] and the
/// pattern's send/recv lists are duals.
struct FusedPlan {
    /// Edge id (index into `PartnerCsr::recv`) per `PartnerCsr::send` slot.
    send_edge: Vec<u32>,
    /// Static payload transfer duration per `PartnerCsr::send` slot.
    send_cost: Vec<SimDuration>,
}

impl FusedPlan {
    /// Pair every send slot with the recv slot it feeds. Returns `None`
    /// when the pattern is not a send/recv duality (some recv is never
    /// fed, some send has no home, or a rank messages itself) — the fused
    /// path's per-edge arrival FIFOs only line up under that bijection,
    /// so such patterns take the general event loop.
    fn build(
        csr: &PartnerCsr,
        nranks: u32,
        links: &LinkCache,
        rank_node: &[u32],
        rank_socket: &[u32],
    ) -> Option<FusedPlan> {
        let mut claimed = vec![false; csr.recv.len()];
        let mut send_edge = Vec::with_capacity(csr.send.len());
        let mut send_cost = Vec::with_capacity(csr.send.len());
        for src in 0..nranks {
            for &dst in csr.send_of(src) {
                if src == dst {
                    return None;
                }
                let base = csr.recv_off[dst as usize] as usize;
                // Duplicate same-peer recvs each claim their own slot, in
                // posting order — the same order the event path's request
                // matching consumes them.
                let slot = csr
                    .recv_of(dst)
                    .iter()
                    .enumerate()
                    .position(|(i, &peer)| peer == src && !claimed[base + i])?;
                claimed[base + slot] = true;
                send_edge.push((base + slot) as u32);
                // Same domain classification as `Engine::domain_idx`,
                // which does not exist yet while the plan is being built.
                let dom = if rank_node[src as usize] != rank_node[dst as usize] {
                    2
                } else if rank_socket[src as usize] != rank_socket[dst as usize] {
                    1
                } else {
                    0
                };
                send_cost.push(links.xfer[dom]);
            }
        }
        claimed.iter().all(|&c| c).then_some(FusedPlan {
            send_edge,
            send_cost,
        })
    }
}

/// Working state of one fused cascade, bundled so the begin/advance
/// helpers stay within a sane argument count.
struct FusedCursor {
    /// One FIFO of pending arrival times per recv slot: an undelayed
    /// sender can run several steps ahead of a delayed receiver, one
    /// entry per step of lead. Arrival times on one edge are monotone
    /// (the sender's exec_end only grows), so FIFO pop order is step
    /// order — mirroring the event path's per-step tag matching.
    arrivals: Vec<VecDeque<SimTime>>,
    /// Stack of ranks whose pending arrivals may now complete their step.
    work: Vec<u32>,
    /// Worklist membership, to dedup pushes.
    queued: Vec<bool>,
}

/// Per-domain link costs, precomputed when no degradation windows exist:
/// with a static topology every transfer cost depends only on which of
/// the three domains (socket / node / network) the pair spans, so the
/// LogGOPS/Hockney arithmetic runs three times at construction instead of
/// once per message.
#[derive(Debug, Clone, Copy)]
struct LinkCache {
    xfer: [SimDuration; 3],
    ctrl: [SimDuration; 3],
    gap: [SimDuration; 3],
}

const DOMAIN_ORDER: [Domain; 3] = [Domain::Socket, Domain::Node, Domain::Network];

/// Trace retention policy of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Retain every [`PhaseRecord`] and build a full [`Trace`] — required
    /// for checkpointing and all figure analyses.
    Full,
    /// Stream records into a [`RunSummary`] (count, order-insensitive
    /// digest, per-rank finish times) without retaining them — O(ranks)
    /// memory instead of O(ranks × steps), for throughput benchmarking
    /// and bulk sweeps that only need aggregate results.
    Summary,
}

/// Aggregate result of a [`TraceMode::Summary`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Ranks in the run.
    pub ranks: u32,
    /// Steps in the run.
    pub steps: u32,
    /// Phase records streamed through (always `ranks × steps` for a
    /// completed run).
    pub records: u64,
    /// Order-insensitive digest: the wrapping sum of every record's
    /// [`PhaseRecord::digest`]. Equal to the same fold over a full run's
    /// trace iff the two runs produced bit-identical records.
    pub digest: u64,
    /// Per-rank time of the final step's communication-phase end.
    pub finish: Vec<SimTime>,
}

impl RunSummary {
    /// Wall-clock time at which the whole run finished (slowest rank).
    pub fn total_runtime(&self) -> SimTime {
        self.finish.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// The summary a [`TraceMode::Summary`] run of the same scenario
    /// would produce, folded from a full trace. The bridge the tests use
    /// to prove summary mode loses nothing but the per-record detail.
    pub fn of_trace(t: &Trace) -> RunSummary {
        let mut digest = 0u64;
        for r in t.iter() {
            digest = digest.wrapping_add(r.digest());
        }
        RunSummary {
            ranks: t.ranks(),
            steps: t.steps(),
            records: u64::from(t.ranks()) * u64::from(t.steps()),
            digest,
            finish: (0..t.ranks()).map(|r| t.finish_time(r)).collect(),
        }
    }
}

/// Resource statistics of a completed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events delivered by the queue.
    pub events: u64,
    /// Largest number of simultaneously pending events.
    pub peak_queue: usize,
    /// Messages transferred (eager payloads + rendezvous transfers).
    pub messages: u64,
    /// Sends that fell back from eager to rendezvous (finite buffers).
    pub eager_fallbacks: u64,
    /// Extra copies sent after a drop or corruption (fault injection).
    pub retransmissions: u64,
    /// Transfer copies dropped in flight (fault injection).
    pub dropped_transfers: u64,
    /// Transfer copies delivered corrupt and rejected (fault injection).
    pub corrupted_transfers: u64,
    /// Transfers abandoned after the retry budget (fault injection); a
    /// nonzero count means the run stalled.
    pub lost_transfers: u64,
}

/// Reusable allocations for engines run back to back — the event queue,
/// record buffer, per-rank request lists, and scratch vectors survive
/// across runs, so a pooled engine of the same shape stops allocating
/// after its first run. Build one with [`EnginePools::new`], hand it to
/// [`Engine::try_new_pooled`] (or the `*_pooled` run helpers), and give
/// the buffers back with [`Engine::recycle`].
#[derive(Debug)]
pub struct EnginePools {
    q: EventQueue<Ev>,
    records: Vec<PhaseRecord>,
    reqs: Vec<ReqSlots>,
    scratch_recv: Vec<u32>,
    scratch_send: Vec<u32>,
    scratch_cts: Vec<u32>,
    /// Highest total capacity (entries across all pooled buffers) ever
    /// returned by a recycle.
    watermark: usize,
    grows: u64,
    runs: u64,
}

/// Predicted buffer shape for one scenario, the contract between a static
/// analyzer and [`EnginePools::with_budget`]. Plain data on purpose: the
/// prediction math lives outside this crate (`simcheck::budget` derives a
/// `PoolBudget` from a `SimConfig`), and the engine only consumes the
/// numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolBudget {
    /// Ranks in the scenario (sizes request lists and scratch vectors).
    pub ranks: u32,
    /// Bulk-synchronous steps (with `ranks`, sizes the trace buffer).
    pub steps: u32,
    /// Predicted peak event-queue occupancy.
    pub peak_queue: usize,
    /// Worst-case posted requests on any one rank in any one step.
    pub requests_per_rank: usize,
    /// Phase records a full-trace run retains (`ranks * steps`); zero for
    /// summary-only pools.
    pub trace_records: usize,
}

impl PoolBudget {
    /// Estimated peak resident bytes of a pool sized to this budget. An
    /// estimate, not an accounting identity: the calendar queue's year
    /// buckets and allocator rounding add real but bounded overhead on
    /// top of it.
    pub fn bytes(&self) -> u64 {
        let n = self.ranks as usize;
        let entry = std::mem::size_of::<(SimTime, u64, Ev)>();
        let spill =
            self.requests_per_rank.saturating_sub(REQ_INLINE) * std::mem::size_of::<Request>() * n;
        let fixed = n * (std::mem::size_of::<ReqSlots>() + 3 * std::mem::size_of::<u32>());
        (self.peak_queue * entry
            + self.trace_records * std::mem::size_of::<PhaseRecord>()
            + spill
            + fixed) as u64
    }
}

impl EnginePools {
    /// Empty pools; the first run's allocations become the baseline.
    pub fn new() -> Self {
        EnginePools {
            q: EventQueue::new(),
            records: Vec::new(),
            reqs: Vec::new(),
            scratch_recv: Vec::new(),
            scratch_send: Vec::new(),
            scratch_cts: Vec::new(),
            watermark: 0,
            grows: 0,
            runs: 0,
        }
    }

    /// Pools pre-sized from a static [`PoolBudget`], so the first run
    /// already finds every buffer at capacity and the grow counter stays
    /// at zero from run 1 — no warmup runs. Unlike [`EnginePools::new`],
    /// the budget (not the first run) sets the capacity watermark, so an
    /// under-predicted budget shows up as `grows() > 0` immediately.
    pub fn with_budget(budget: &PoolBudget) -> Self {
        let n = budget.ranks as usize;
        let mut reqs: Vec<ReqSlots> = Vec::with_capacity(n);
        reqs.resize_with(n, ReqSlots::default);
        for r in &mut reqs {
            r.reserve(budget.requests_per_rank);
        }
        let mut pools = EnginePools {
            q: EventQueue::with_capacity(budget.peak_queue),
            records: Vec::with_capacity(budget.trace_records),
            reqs,
            scratch_recv: Vec::with_capacity(n),
            scratch_send: Vec::with_capacity(n),
            scratch_cts: Vec::with_capacity(n),
            watermark: 0,
            grows: 0,
            runs: 0,
        };
        // The calendar queue spreads pending events over year buckets and
        // swaps bucket allocations into the run segment during pops, so a
        // settled queue carries more total segment capacity than its peak
        // occupancy. Grant that headroom up front; the watermark is the
        // budget's promise, and `recycle` charges a grow the moment a run
        // exceeds it.
        let bucket_slack = 4 * budget.peak_queue + 16 * 1024;
        pools.watermark = pools.capacity() + bucket_slack;
        pools
    }

    /// Number of recycles in which some pooled buffer had grown past the
    /// previous capacity watermark. After the first run of a given
    /// scenario shape, this must stay constant — the allocation-stability
    /// contract the pooling tests assert.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Number of runs recycled into this pool.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total pooled capacity, in buffer entries.
    fn capacity(&self) -> usize {
        self.q.capacity()
            + self.records.capacity()
            + self.reqs.capacity()
            + self
                .reqs
                .iter()
                .map(ReqSlots::spill_capacity)
                .sum::<usize>()
            + self.scratch_recv.capacity()
            + self.scratch_send.capacity()
            + self.scratch_cts.capacity()
    }
}

impl Default for EnginePools {
    fn default() -> Self {
        EnginePools::new()
    }
}

/// The simulation engine. Build with [`Engine::new`], run with
/// [`Engine::run`] (or use the [`crate::run`] convenience function).
pub struct Engine {
    pub(crate) cfg: SimConfig,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) ranks: Ranks,
    /// RTS that arrived before the matching recv was posted.
    pub(crate) early_rts: EarlySet,
    /// Eager payloads that arrived before the matching recv was posted.
    pub(crate) early_eager: EarlySet,
    /// Unconsumed eager bytes per (src, dst), for the finite-buffer
    /// fallback. Only maintained when a buffer capacity is configured
    /// (`track_eager`); keyed lookup only, never iterated.
    pub(crate) outstanding_eager: HashMap<(u32, u32), u64>, // simlint: allow(hash-collections)
    /// Ranks currently in the shared-bandwidth work segment, per socket.
    pub(crate) socket_members: Vec<BTreeSet<u32>>,
    pub(crate) records: Vec<PhaseRecord>,
    pub(crate) done_count: u32,
    pub(crate) base_mode: Mode,
    /// Per-rank time at which the rank's injection port is free again
    /// (only consulted when `cfg.serialize_sends` is on).
    pub(crate) nic_free: Vec<SimTime>,
    pub(crate) stats: RunStats,
    /// Stream factory, kept for lazily created fault streams.
    pub(crate) seeds: SeedFactory,
    /// One RNG stream per directed link that has carried a faulted
    /// transfer; keyed lookup only, never iterated.
    pub(crate) fault_rngs: HashMap<(u32, u32), SimRng>, // simlint: allow(hash-collections)
    /// Ranks taken down by a fail-stop crash.
    pub(crate) crashed: Vec<u32>,
    /// Human-readable log of transfers lost after the retry budget.
    pub(crate) lost: Vec<String>,
    /// Whether the initial `start_exec` round has run. A fresh engine has
    /// not started; a restored one resumes mid-run and must not re-seed
    /// the queue with step-0 executions.
    pub(crate) started: bool,
    // ---- derived caches, rebuilt from `cfg` and never snapshotted ----
    pub(crate) mode: TraceMode,
    /// Maintain `outstanding_eager`? Only when a finite eager buffer can
    /// actually force a fallback.
    track_eager: bool,
    /// Any stalls/crashes in the fault plan at all?
    has_rank_faults: bool,
    /// Per rank: does the injection plan target it anywhere?
    has_inj: Vec<bool>,
    /// Compute model: per-rank work time with imbalance applied.
    base_exec: Vec<SimDuration>,
    /// Memory-bound model: per-rank phase bytes with imbalance applied.
    base_bytes: Vec<f64>,
    rank_node: Vec<u32>,
    rank_socket: Vec<u32>,
    link_cache: Option<LinkCache>,
    csr: Option<PartnerCsr>,
    // Request-progress counters, always derivable from `ranks.reqs` (and
    // recomputed from them on restore). They make the per-event `service`
    // check three integer compares instead of two request scans:
    /// Per rank: posted receives still in [`ReqState::Unmatched`] — the
    /// head-of-line CTS gate is `unmatched_recvs == 0`.
    unmatched_recvs: Vec<u32>,
    /// Per rank: receives in [`ReqState::MatchedNoCts`] awaiting a CTS
    /// grant; the grant scan only runs when this is nonzero.
    gated_cts: Vec<u32>,
    /// Per rank: requests not yet [`ReqState::Complete`] — the step
    /// finishes when this hits zero.
    incomplete: Vec<u32>,
    scratch_recv: Vec<u32>,
    scratch_send: Vec<u32>,
    scratch_cts: Vec<u32>,
    summary_records: u64,
    summary_digest: u64,
    finish: Vec<SimTime>,
    /// Calendar events the fused fast path advanced past without
    /// delivering. `RunStats::events` reports `q.delivered() + elided` so
    /// the event count stays a property of the scenario, not of the path
    /// that ran it (the budget analyzer's predictions pin this).
    elided: u64,
    /// Fused fast-path plan; `Some` iff the config is
    /// [`fused_path_eligible`] and the pattern passed the duality check.
    /// Never snapshotted: restored engines resume on the general path.
    fused: Option<FusedPlan>,
    /// Scratch for batching a handler's event emissions into one
    /// [`EventQueue::push_batch`] splice; always drained after use.
    batch: Vec<(SimTime, Ev)>,
}

impl Engine {
    /// Set up a simulation for `cfg` (validates the config).
    ///
    /// # Panics
    /// Panics with the rendered diagnostic report when
    /// [`SimConfig::validate`] finds error-level problems. Library code
    /// should prefer [`Engine::try_new`].
    pub fn new(cfg: SimConfig) -> Self {
        Engine::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Engine::new`]: returns [`SimError::InvalidConfig`] with
    /// the rejecting diagnostics instead of panicking.
    pub fn try_new(cfg: SimConfig) -> Result<Self, SimError> {
        let diags = cfg.check();
        if diag::has_errors(&diags) {
            let errors = diags.into_iter().filter(|d| d.is_error()).collect();
            return Err(SimError::InvalidConfig(errors));
        }
        Ok(Engine::scaffold(cfg, None))
    }

    /// [`Engine::try_new`] drawing its large allocations from `pools`
    /// instead of the allocator. [`Engine::recycle`] (or the `*_pooled`
    /// run helpers, which call it) gives them back afterwards.
    pub fn try_new_pooled(cfg: SimConfig, pools: &mut EnginePools) -> Result<Self, SimError> {
        let diags = cfg.check();
        if diag::has_errors(&diags) {
            let errors = diags.into_iter().filter(|d| d.is_error()).collect();
            return Err(SimError::InvalidConfig(errors));
        }
        Ok(Engine::scaffold(cfg, Some(pools)))
    }

    /// Build an engine in the fresh (pre-run) state with every derived
    /// cache computed from a validated `cfg`. `restore` overwrites the
    /// dynamic state afterwards; `try_new` uses it as-is.
    pub(crate) fn scaffold(cfg: SimConfig, pools: Option<&mut EnginePools>) -> Self {
        let seeds = SeedFactory::new(cfg.seed);
        let nranks = cfg.ranks();
        let n = nranks as usize;
        // Take reusable buffers out of the pool (fresh Vecs otherwise).
        let (mut q, records, reqs, scratch_recv, scratch_send, scratch_cts) = match pools {
            Some(p) => (
                std::mem::take(&mut p.q),
                std::mem::take(&mut p.records),
                std::mem::take(&mut p.reqs),
                std::mem::take(&mut p.scratch_recv),
                std::mem::take(&mut p.scratch_send),
                std::mem::take(&mut p.scratch_cts),
            ),
            None => (
                EventQueue::with_capacity(4 * n),
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Vec::new(),
            ),
        };
        q.reset();
        let ranks = Ranks::new(nranks, &seeds, reqs);
        let sockets = cfg.network.machine.total_sockets() as usize;
        let base_mode = cfg.protocol.mode_for(cfg.msg_bytes);
        let mut has_inj = vec![false; n];
        for inj in cfg.injections.injections() {
            if let Some(f) = has_inj.get_mut(inj.rank as usize) {
                *f = true;
            }
        }
        let (base_exec, base_bytes) = {
            let factor = |r: usize| cfg.imbalance.get(r).copied().unwrap_or(1.0);
            match cfg.exec {
                ExecModel::Compute { duration } => (
                    (0..n).map(|r| duration.mul_f64(factor(r))).collect(),
                    Vec::new(),
                ),
                ExecModel::MemoryBound { bytes, .. } => (
                    Vec::new(),
                    (0..n).map(|r| bytes as f64 * factor(r)).collect(),
                ),
            }
        };
        let rank_node: Vec<u32> = (0..nranks).map(|r| cfg.network.locate(r).node).collect();
        let rank_socket: Vec<u32> = (0..nranks).map(|r| cfg.network.socket_of(r)).collect();
        let link_cache = if cfg.faults.degradations.is_empty() {
            let model = |d: Domain| -> PointToPoint { cfg.network.models.for_domain(d) };
            Some(LinkCache {
                xfer: DOMAIN_ORDER.map(|d| model(d).transfer_time(cfg.msg_bytes)),
                ctrl: DOMAIN_ORDER.map(|d| model(d).ctrl_latency()),
                gap: DOMAIN_ORDER.map(|d| model(d).injection_gap()),
            })
        } else {
            None
        };
        let csr = if cfg.schedule.is_none() {
            Some(PartnerCsr::build(&cfg.pattern, nranks))
        } else {
            None
        };
        let track_eager = cfg.eager_buffer_bytes.is_some();
        let has_rank_faults = !cfg.faults.rank_faults.is_empty();
        let fused = match (&csr, &link_cache) {
            (Some(csr), Some(links)) if fused_path_eligible(&cfg) => {
                FusedPlan::build(csr, nranks, links, &rank_node, &rank_socket)
            }
            _ => None,
        };
        Engine {
            cfg,
            q,
            ranks,
            early_rts: EarlySet::new(n),
            early_eager: EarlySet::new(n),
            outstanding_eager: HashMap::new(), // simlint: allow(hash-collections)
            socket_members: vec![BTreeSet::new(); sockets],
            records,
            done_count: 0,
            base_mode,
            nic_free: vec![SimTime::ZERO; n],
            stats: RunStats::default(),
            seeds,
            fault_rngs: HashMap::new(), // simlint: allow(hash-collections)
            crashed: Vec::new(),
            lost: Vec::new(),
            started: false,
            mode: TraceMode::Full,
            track_eager,
            has_rank_faults,
            has_inj,
            base_exec,
            base_bytes,
            rank_node,
            rank_socket,
            link_cache,
            csr,
            unmatched_recvs: vec![0; n],
            gated_cts: vec![0; n],
            incomplete: vec![0; n],
            scratch_recv,
            scratch_send,
            scratch_cts,
            summary_records: 0,
            summary_digest: 0,
            finish: vec![SimTime::ZERO; n],
            elided: 0,
            fused,
            batch: Vec::new(),
        }
    }

    /// Return every pooled buffer to `pools` for the next run, updating
    /// the capacity watermark and grow counter.
    pub fn recycle(mut self, pools: &mut EnginePools) {
        self.q.reset();
        self.records.clear();
        let mut reqs = self.ranks.reqs;
        reqs.iter_mut().for_each(ReqSlots::clear);
        self.scratch_recv.clear();
        self.scratch_send.clear();
        self.scratch_cts.clear();
        pools.q = self.q;
        pools.records = self.records;
        pools.reqs = reqs;
        pools.scratch_recv = self.scratch_recv;
        pools.scratch_send = self.scratch_send;
        pools.scratch_cts = self.scratch_cts;
        let cap = pools.capacity();
        // A fresh pool's first run sets the baseline; a budgeted pool
        // (nonzero watermark before any run) is held to its budget from
        // run 1.
        if (pools.runs > 0 || pools.watermark > 0) && cap > pools.watermark {
            pools.grows += 1;
        }
        pools.watermark = pools.watermark.max(cap);
        pools.runs += 1;
    }

    /// Run to completion and return the trace.
    ///
    /// # Panics
    /// Panics on deadlock (event queue drained with unfinished ranks):
    /// with an empty fault plan that always indicates an engine or
    /// configuration bug; with faults it can also mean a fail-stop crash
    /// or a lost transfer starved the run. Library code should prefer
    /// [`Engine::try_run`].
    pub fn run(self) -> Trace {
        self.run_with_stats().0
    }

    /// Fallible [`Engine::run`] under optional [`RunLimits`] budgets:
    /// deadlock and starvation become [`SimError::Stalled`], a tripped
    /// budget becomes [`SimError::Watchdog`].
    pub fn try_run(self, limits: &RunLimits) -> Result<Trace, SimError> {
        Ok(self.try_run_with_stats(limits)?.0)
    }

    /// Run to completion, returning the trace together with resource
    /// statistics of the simulation itself.
    ///
    /// # Panics
    /// Panics on deadlock, like [`Engine::run`].
    pub fn run_with_stats(self) -> (Trace, RunStats) {
        match self.try_run_with_stats(&RunLimits::none()) {
            Ok(out) => out,
            Err(SimError::Stalled {
                done,
                ranks,
                report,
            }) => panic!("simulation deadlocked with {done}/{ranks} ranks finished:\n{report}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Engine::run_with_stats`] under optional [`RunLimits`]
    /// budgets. On success the trace covers every `(rank, step)` cell; on
    /// failure the error describes which scenario pathology ended the run
    /// (stall/starvation vs exceeded budget).
    pub fn try_run_with_stats(self, limits: &RunLimits) -> Result<(Trace, RunStats), SimError> {
        self.try_run_checkpointed(limits, &CheckpointPolicy::none(), |_| {})
    }

    /// Run to completion in [`TraceMode::Summary`]: phase records are
    /// folded into a [`RunSummary`] as they complete instead of being
    /// retained, so memory stays O(ranks) regardless of step count. The
    /// summary's digest equals [`RunSummary::of_trace`] of the full-mode
    /// trace of the same scenario iff the runs are bit-identical.
    ///
    /// # Panics
    /// Panics when called on a restored (already started) engine: the
    /// records completed before the snapshot cut are gone, so a summary
    /// resumed mid-run would silently miss them.
    pub fn try_run_summary(
        mut self,
        limits: &RunLimits,
    ) -> Result<(RunSummary, RunStats), SimError> {
        assert!(
            !self.started,
            "summary mode must start from a fresh engine, not a restored one"
        );
        self.mode = TraceMode::Summary;
        self.run_loop(limits, &CheckpointPolicy::none(), &mut |_| {})?;
        Ok(self.take_summary())
    }

    fn take_summary(&mut self) -> (RunSummary, RunStats) {
        (
            RunSummary {
                ranks: self.cfg.ranks(),
                steps: self.cfg.steps,
                records: self.summary_records,
                digest: self.summary_digest,
                finish: std::mem::take(&mut self.finish),
            },
            self.stats,
        )
    }

    /// [`Engine::try_run_with_stats`] with periodic checkpointing: whenever
    /// the `policy` cadence comes due, a [`Snapshot`] of the paused engine
    /// is captured and handed to `sink`. Snapshots are cut between event
    /// deliveries, so resuming one replays the remaining schedule exactly —
    /// the restored run's trace fingerprint is bit-identical to this run's.
    ///
    /// `sink` is infallible by design: checkpointing is best-effort and a
    /// failed write must never abort a healthy simulation. Callers that do
    /// I/O (the sweep runner) handle and log their own errors.
    pub fn try_run_checkpointed<F>(
        mut self,
        limits: &RunLimits,
        policy: &CheckpointPolicy,
        mut sink: F,
    ) -> Result<(Trace, RunStats), SimError>
    where
        F: FnMut(&Snapshot),
    {
        self.run_loop(limits, policy, &mut sink)?;
        let trace = Trace::from_records(
            self.cfg.ranks(),
            self.cfg.steps,
            std::mem::take(&mut self.records),
        );
        Ok((trace, self.stats))
    }

    /// The event loop proper: drain the queue, dispatching every event,
    /// until the run completes, a budget trips, or the queue starves.
    fn run_loop<F>(
        &mut self,
        limits: &RunLimits,
        policy: &CheckpointPolicy,
        sink: &mut F,
    ) -> Result<(), SimError>
    where
        F: FnMut(&Snapshot),
    {
        let nranks = self.cfg.ranks();
        if self.mode == TraceMode::Full {
            // Reserve the full record budget up front (outside the timed
            // construction path, retained across pooled reuse).
            let want = nranks as usize * self.cfg.steps as usize;
            self.records
                .reserve(want.saturating_sub(self.records.len()));
        }
        let plain =
            limits.max_sim_time.is_none() && limits.max_events.is_none() && !policy.is_active();
        if !self.started {
            self.started = true;
            if plain && self.fused.is_some() {
                // Fused fast path: eligible config, fresh engine, and no
                // budget or checkpoint cadence to observe — advance whole
                // steps without the calendar. Budgeted, checkpointed, and
                // restored runs (`started` already set) always replay
                // through the general event loop, which is what makes
                // resuming a snapshot bit-identical regardless of which
                // path produced it.
                self.run_fused();
            } else {
                for r in 0..nranks {
                    self.start_exec(r, SimTime::ZERO);
                }
            }
        }
        if plain {
            // Budget- and checkpoint-free fast path: nothing between pop
            // and dispatch but the peak-queue statistic, with the
            // handlers monomorphized for the run's protocol and trace
            // mode. A no-op after `run_fused` (the queue stays empty).
            dispatch::pump_plain(self);
        } else {
            // Checkpoint cadence is measured from where *this* run
            // started, so a restored engine checkpoints relative to its
            // resume point. The counters are deliberately not part of the
            // snapshot: checkpoint timing never feeds back into
            // simulation state.
            let mut last_ckpt_events = self.q.delivered();
            let mut next_ckpt_time = policy.every_sim_time.map(|dt| self.q.now() + dt);
            while let Some((now, ev)) = self.q.pop() {
                self.stats.peak_queue = self.stats.peak_queue.max(self.q.len() + 1);
                if let Some(budget) = limits.max_sim_time {
                    if now > budget {
                        return Err(SimError::Watchdog {
                            at: now,
                            events: self.q.delivered(),
                            why: format!("sim time budget t = {budget} exceeded"),
                        });
                    }
                }
                if let Some(max_events) = limits.max_events {
                    if self.q.delivered() > max_events {
                        return Err(SimError::Watchdog {
                            at: now,
                            events: self.q.delivered(),
                            why: format!("event budget {max_events} exceeded"),
                        });
                    }
                }
                self.dispatch(now, ev);
                let events_due = policy
                    .every_events
                    .is_some_and(|n| self.q.delivered() - last_ckpt_events >= n);
                let time_due = next_ckpt_time.is_some_and(|t| now >= t);
                if events_due || time_due {
                    last_ckpt_events = self.q.delivered();
                    if let (Some(dt), Some(t)) = (policy.every_sim_time, next_ckpt_time) {
                        let mut next = t;
                        while now >= next {
                            next = next + dt;
                        }
                        next_ckpt_time = Some(next);
                    }
                    sink(&self.checkpoint());
                }
            }
        }
        self.stats.events = self.q.delivered() + self.elided;
        if self.done_count != nranks {
            return Err(SimError::Stalled {
                done: self.done_count,
                ranks: nranks,
                report: self.deadlock_report(),
            });
        }
        Ok(())
    }

    /// Drive a fusion-eligible run to completion without the calendar.
    ///
    /// [`fused_path_eligible`] pins every decision the event loop would
    /// otherwise make dynamically: every execution phase is `Compute`,
    /// every send is eager and completes at post, every transfer cost is
    /// the static per-domain link cost, and no fault can reroute a step.
    /// Under those rules a step's completion time is a pure function of
    /// its inputs — `comm_end(r, k) = max(exec_end(r, k), arrival time of
    /// every step-k payload)` — so the run is a data-flow relaxation over
    /// the (rank, step) grid, processed with a worklist instead of a
    /// calendar. Per-rank RNG streams make the injection/noise draws
    /// independent of cross-rank event order, and the event path's FIFO
    /// (time, seq) tie-break resolves same-time arrivals to the same
    /// `max()`, so the cascade reproduces the event loop's trace bit for
    /// bit (held to by the golden figures and tests/fused_reference.rs).
    ///
    /// Every calendar event the event path would have delivered — one
    /// `ExecEnd` per (rank, step) plus one `EagerArrive` per payload — is
    /// counted in `elided` instead, keeping `RunStats::events` exact for
    /// the budget analyzer.
    fn run_fused(&mut self) {
        let plan = self.fused.take().expect("run_fused needs a fused plan");
        let csr = self.csr.take().expect("fused runs are pattern-driven");
        let nranks = self.cfg.ranks();
        let steps = self.cfg.steps;
        let mut cur = FusedCursor {
            arrivals: vec![VecDeque::new(); csr.recv.len()],
            work: Vec::with_capacity(nranks as usize),
            // Every rank starts on the worklist, so begin-step wakes
            // cannot double-push during seeding.
            queued: vec![true; nranks as usize],
        };
        for r in 0..nranks {
            self.fused_begin_step(r, SimTime::ZERO, &csr, &plan, &mut cur);
        }
        cur.work.extend(0..nranks);
        while let Some(r) = cur.work.pop() {
            cur.queued[r as usize] = false;
            self.fused_advance(r, steps, &csr, &plan, &mut cur);
        }
        self.csr = Some(csr);
        self.fused = Some(plan);
    }

    /// Begin `rank`'s next step at `now` on the fused path: the same
    /// injection lookup and noise draw as `start_exec` (stream-for-stream,
    /// so the draws are bit-identical), then post the step's eager sends
    /// as per-edge arrival times instead of calendar events.
    fn fused_begin_step(
        &mut self,
        rank: u32,
        now: SimTime,
        csr: &PartnerCsr,
        plan: &FusedPlan,
        cur: &mut FusedCursor,
    ) {
        let ri = rank as usize;
        let step = self.ranks.step[ri];
        let mut injected = SimDuration::ZERO;
        if self.has_inj[ri] {
            injected = injected + self.cfg.injections.delay_for(rank, step);
        }
        let noise = self.cfg.noise.sample(&mut self.ranks.rng[ri]);
        self.ranks.phase[ri] = Phase::Waiting;
        self.ranks.exec_start[ri] = now;
        self.ranks.injected[ri] = injected;
        self.ranks.noise_amt[ri] = noise;
        self.ranks.epoch[ri] += 1;
        let exec_end = now + injected + self.base_exec[ri] + noise;
        self.ranks.exec_end[ri] = exec_end;
        self.elided += 1; // the ExecEnd the event path would deliver
        let base = csr.send_off[ri] as usize;
        for (j, &dst) in csr.send_of(rank).iter().enumerate() {
            let slot = base + j;
            self.stats.messages += 1;
            self.elided += 1; // the EagerArrive the event path would deliver
            cur.arrivals[plan.send_edge[slot] as usize].push_back(exec_end + plan.send_cost[slot]);
            let di = dst as usize;
            if !cur.queued[di] {
                cur.queued[di] = true;
                cur.work.push(dst);
            }
        }
    }

    /// Complete as many consecutive steps of `rank` as its pending
    /// arrivals allow, streaming one trace/summary record per completed
    /// step and re-posting the next step's sends each time.
    fn fused_advance(
        &mut self,
        rank: u32,
        steps: u32,
        csr: &PartnerCsr,
        plan: &FusedPlan,
        cur: &mut FusedCursor,
    ) {
        let ri = rank as usize;
        let rbase = csr.recv_off[ri] as usize;
        let nrecv = csr.recv_of(rank).len();
        loop {
            if self.ranks.phase[ri] != Phase::Waiting {
                return; // already Done; a straggler wake-up
            }
            if (rbase..rbase + nrecv).any(|e| cur.arrivals[e].is_empty()) {
                return; // some partner has not reached this step yet
            }
            let mut comm_end = self.ranks.exec_end[ri];
            for e in rbase..rbase + nrecv {
                let t = cur.arrivals[e].pop_front().expect("checked non-empty");
                if t > comm_end {
                    comm_end = t;
                }
            }
            let step = self.ranks.step[ri];
            match self.mode {
                TraceMode::Full => self.records.push(PhaseRecord {
                    rank,
                    step,
                    exec_start: self.ranks.exec_start[ri],
                    exec_end: self.ranks.exec_end[ri],
                    comm_end,
                    injected: self.ranks.injected[ri],
                    noise: self.ranks.noise_amt[ri],
                }),
                TraceMode::Summary => {
                    self.summary_records += 1;
                    self.summary_digest =
                        self.summary_digest
                            .wrapping_add(PhaseRecord::digest_of_parts(
                                rank,
                                step,
                                self.ranks.exec_start[ri],
                                self.ranks.exec_end[ri],
                                comm_end,
                                self.ranks.injected[ri],
                                self.ranks.noise_amt[ri],
                            ));
                    self.finish[ri] = comm_end;
                }
            }
            self.ranks.step[ri] = step + 1;
            if step + 1 == steps {
                self.ranks.phase[ri] = Phase::Done;
                self.done_count += 1;
                return;
            }
            self.fused_begin_step(rank, comm_end, csr, plan, cur);
        }
    }

    /// Post-mortem for a drained event queue with unfinished ranks: build
    /// the wait-for graph implied by the stuck requests (a rank waits on a
    /// peer whose RTS, CTS, or eager payload it still needs) and name the
    /// rank cycle — the same diagnosis `simcheck::analyze` produces
    /// statically as `SC001` before a run.
    fn deadlock_report(&self) -> String {
        let nranks = self.cfg.ranks() as usize;
        let mut g = simdes::Digraph::new(nranks);
        let mut stuck = Vec::new();
        for r in 0..nranks {
            if self.ranks.phase[r] == Phase::Done {
                continue;
            }
            stuck.push(format!(
                "rank {r}: step {} phase {:?} reqs {:?}",
                self.ranks.step[r],
                self.ranks.phase[r],
                self.ranks.reqs[r].as_slice()
            ));
            if self.ranks.phase[r] != Phase::Waiting {
                continue;
            }
            for req in self.ranks.reqs[r].iter() {
                let blocked_on_peer = match (req.is_send, req.state) {
                    // Posted recv with no RTS / eager payload from the peer.
                    (false, ReqState::Unmatched) => true,
                    // Rendezvous send still waiting for the peer's CTS.
                    (true, ReqState::Unmatched) => req.mode == Mode::Rendezvous,
                    _ => false,
                };
                if blocked_on_peer {
                    g.add_edge(r, req.peer as usize);
                }
            }
        }
        let verdict = if !self.crashed.is_empty() || !self.lost.is_empty() {
            // Fault starvation explains the stall even when the surviving
            // requests happen to form a ring — this is not an SC001
            // configuration deadlock.
            let mut causes: Vec<String> = self
                .crashed
                .iter()
                .map(|r| format!("rank {r} crashed (fail-stop)"))
                .collect();
            causes.extend(self.lost.iter().cloned());
            format!("injected faults starved the run ({})", causes.join("; "))
        } else {
            match g.find_cycle() {
                Some(c) => format!(
                    "wait-for cycle [SC001]: ranks {} (each waits on the next \
                     for an RTS, CTS, or eager payload; simcheck::analyze flags \
                     this statically)",
                    c.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(" -> ")
                ),
                None => "no wait-for cycle among stuck ranks: an event was lost \
                         (engine bug, not a configuration deadlock)"
                    .to_string(),
            }
        };
        format!("{verdict}\n{}", stuck.join("\n"))
    }

    /// General-spec dispatch for the budgeted/checkpointed loop, which
    /// cannot pin the protocol or trace mode at compile time.
    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        self.dispatch_ev::<dispatch::General>(now, ev);
    }

    fn dispatch_ev<S: dispatch::Spec>(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ExecEnd { rank, epoch } => {
                if self.ranks.epoch[rank as usize] == epoch {
                    self.on_exec_end::<S>(rank, now);
                }
            }
            Ev::WorkStart { rank } => self.on_work_start(rank, now),
            Ev::WorkEnd { rank, epoch } => {
                if self.ranks.epoch[rank as usize] == epoch {
                    self.on_work_end(rank, now);
                }
            }
            Ev::RtsArrive { src, dst, step } => self.on_rts::<S>(src, dst, step, now),
            Ev::CtsArrive {
                sender,
                receiver,
                step,
            } => self.on_cts::<S>(sender, receiver, step, now),
            Ev::EagerArrive { src, dst, step } => self.on_eager::<S>(src, dst, step, now),
            Ev::XferDone {
                sender,
                receiver,
                step,
            } => self.on_xfer_done::<S>(sender, receiver, step, now),
        }
    }

    // ---- execution phase ------------------------------------------------

    fn start_exec(&mut self, rank: u32, now: SimTime) {
        let ri = rank as usize;
        let step = self.ranks.step[ri];
        // Rank faults fold into the injected-delay bookkeeping: a stall
        // and a recoverable crash outage both lengthen the execution phase
        // exactly like a one-off injection, so every downstream analysis
        // (wave speed, decay fits, trace records) sees them uniformly.
        // Both lookups scan plan vectors, so they are gated on cheap
        // "anything there at all?" flags computed at construction.
        let mut injected = SimDuration::ZERO;
        if self.has_inj[ri] {
            injected = injected + self.cfg.injections.delay_for(rank, step);
        }
        if self.has_rank_faults {
            injected = injected + self.cfg.faults.stall_for(rank, step);
            match self.cfg.faults.crash_for(rank, step) {
                Some(CrashOutcome::FailStop) => {
                    self.ranks.phase[ri] = Phase::Crashed;
                    self.ranks.exec_start[ri] = now;
                    self.ranks.epoch[ri] += 1; // invalidate anything already scheduled
                    self.crashed.push(rank);
                    return;
                }
                Some(CrashOutcome::Recovers(outage)) => injected += outage,
                None => {}
            }
        }
        let noise = self.cfg.noise.sample(&mut self.ranks.rng[ri]);
        self.ranks.phase[ri] = Phase::Computing;
        self.ranks.exec_start[ri] = now;
        self.ranks.injected[ri] = injected;
        self.ranks.noise_amt[ri] = noise;
        self.ranks.epoch[ri] += 1;
        match self.cfg.exec {
            ExecModel::Compute { .. } => {
                let total = injected + self.base_exec[ri] + noise;
                let epoch = self.ranks.epoch[ri];
                self.q.schedule_at(now + total, Ev::ExecEnd { rank, epoch });
            }
            ExecModel::MemoryBound { .. } => {
                self.ranks.remaining_bytes[ri] = self.base_bytes[ri];
                // The injected delay stalls the core *before* the memory
                // work (matches how the paper draws delay bars), and a
                // stalled core does not contend for bandwidth.
                self.q.schedule_at(now + injected, Ev::WorkStart { rank });
            }
        }
    }

    fn on_work_start(&mut self, rank: u32, now: SimTime) {
        let socket = self.rank_socket[rank as usize] as usize;
        self.integrate_socket(socket, now);
        self.ranks.last_update[rank as usize] = now;
        self.socket_members[socket].insert(rank);
        self.reschedule_socket(socket, now);
    }

    fn on_work_end(&mut self, rank: u32, now: SimTime) {
        let socket = self.rank_socket[rank as usize] as usize;
        self.integrate_socket(socket, now);
        self.socket_members[socket].remove(&rank);
        self.reschedule_socket(socket, now);
        // Trailing noise is serial (OS interference, not memory traffic).
        let ri = rank as usize;
        self.ranks.epoch[ri] += 1;
        let epoch = self.ranks.epoch[ri];
        let noise = self.ranks.noise_amt[ri];
        self.q.schedule_at(now + noise, Ev::ExecEnd { rank, epoch });
    }

    /// Integrate outstanding work for every member of `socket` up to `now`
    /// at the rate that held since the last membership change.
    fn integrate_socket(&mut self, socket: usize, now: SimTime) {
        let n = self.socket_members[socket].len() as u32;
        if n == 0 {
            return;
        }
        let rate = self.cfg.exec.shared_rate_bps(n);
        for &m in &self.socket_members[socket] {
            let mi = m as usize;
            let dt = now
                .saturating_since(self.ranks.last_update[mi])
                .as_secs_f64();
            self.ranks.remaining_bytes[mi] = (self.ranks.remaining_bytes[mi] - dt * rate).max(0.0);
            self.ranks.last_update[mi] = now;
        }
    }

    /// After a membership change, recompute each member's completion time.
    fn reschedule_socket(&mut self, socket: usize, now: SimTime) {
        let n = self.socket_members[socket].len() as u32;
        if n == 0 {
            return;
        }
        let rate = self.cfg.exec.shared_rate_bps(n);
        for &m in &self.socket_members[socket] {
            let mi = m as usize;
            self.ranks.epoch[mi] += 1;
            let finish = now + SimDuration::from_secs_f64(self.ranks.remaining_bytes[mi] / rate);
            self.q.schedule_at(
                finish,
                Ev::WorkEnd {
                    rank: m,
                    epoch: self.ranks.epoch[mi],
                },
            );
        }
    }

    // ---- communication phase --------------------------------------------

    fn on_exec_end<S: dispatch::Spec>(&mut self, rank: u32, now: SimTime) {
        let ri = rank as usize;
        self.ranks.exec_end[ri] = now;
        self.ranks.phase[ri] = Phase::Waiting;

        // Post all receives, then all sends (Isend/Irecv then Waitall).
        if let Some(csr) = self.csr.take() {
            // No schedule: the partner lists live in the CSR, moved out
            // of the engine for the duration of the call so the posting
            // loops can mutate the engine without copying the slices.
            self.post_requests::<S>(rank, now, csr.recv_of(rank), csr.send_of(rank));
            self.csr = Some(csr);
        } else {
            // Schedule path: the graph borrow cannot outlive the posting
            // loops' mutations, so partners go through reusable scratch
            // buffers.
            let mut recv_buf = std::mem::take(&mut self.scratch_recv);
            let mut send_buf = std::mem::take(&mut self.scratch_send);
            recv_buf.clear();
            send_buf.clear();
            {
                let step = self.ranks.step[ri];
                let sched = self
                    .cfg
                    .schedule
                    .as_ref()
                    .expect("partner CSR is built whenever there is no schedule");
                let g = sched.graph_for(step);
                recv_buf.extend_from_slice(g.recv_partners(rank));
                send_buf.extend_from_slice(g.send_partners(rank));
            }
            self.post_requests::<S>(rank, now, &recv_buf, &send_buf);
            self.scratch_recv = recv_buf;
            self.scratch_send = send_buf;
        }
        self.service::<S>(rank, now);
    }

    /// Post this step's receive and send requests for `rank` and fire the
    /// protocol's opening messages (eager payloads or RTS).
    ///
    /// The pure-protocol specs skip the early-set probes for messages the
    /// protocol can never produce (see [`dispatch::Spec`]); the general
    /// spec keeps the runtime `base_mode` branches.
    fn post_requests<S: dispatch::Spec>(
        &mut self,
        rank: u32,
        now: SimTime,
        recvs: &[u32],
        sends: &[u32],
    ) {
        let ri = rank as usize;
        let step = self.ranks.step[ri];
        let mut reqs = std::mem::take(&mut self.ranks.reqs[ri]);
        debug_assert!(reqs.is_empty(), "requests from the previous step leaked");
        reqs.reserve(recvs.len() + sends.len());
        let mut n_unmatched = 0u32;
        let mut n_gated = 0u32;
        let mut n_incomplete = 0u32;

        for &src in recvs {
            let mut req = Request {
                peer: src,
                is_send: false,
                mode: self.base_mode,
                state: ReqState::Unmatched,
            };
            if S::PURE_EAGER {
                // No fallback exists, so the only possible early match is
                // an eager payload, and there is no buffer accounting.
                if self.early_eager.remove(src, rank, step) {
                    req.state = ReqState::Complete;
                }
            } else if S::PURE_RDVZ {
                if self.early_rts.remove(src, rank, step) {
                    req.state = ReqState::MatchedNoCts;
                }
            } else {
                match self.base_mode {
                    Mode::Eager => {
                        if self.early_eager.remove(src, rank, step) {
                            self.consume_eager(src, rank);
                            req.state = ReqState::Complete;
                        } else if self.early_rts.remove(src, rank, step) {
                            // The sender fell back to rendezvous (full buffer).
                            req.mode = Mode::Rendezvous;
                            req.state = ReqState::MatchedNoCts;
                        }
                    }
                    Mode::Rendezvous => {
                        if self.early_rts.remove(src, rank, step) {
                            req.state = ReqState::MatchedNoCts;
                        }
                    }
                }
            }
            match req.state {
                ReqState::Unmatched => {
                    n_unmatched += 1;
                    n_incomplete += 1;
                }
                ReqState::MatchedNoCts => {
                    n_gated += 1;
                    n_incomplete += 1;
                }
                ReqState::InFlight | ReqState::Complete => {}
            }
            reqs.push(req);
        }

        // Emissions collect into the batch scratch and splice into the
        // calendar in one sorted pass (`push_batch`) after the loop.
        let mut batch = std::mem::take(&mut self.batch);
        debug_assert!(batch.is_empty(), "emission batch leaked");
        for &dst in sends {
            let mode = if S::PURE_EAGER {
                Mode::Eager
            } else if S::PURE_RDVZ {
                Mode::Rendezvous
            } else {
                self.effective_send_mode(rank, dst)
            };
            if self.base_mode == Mode::Eager && mode == Mode::Rendezvous {
                self.stats.eager_fallbacks += 1;
            }
            let state = match mode {
                Mode::Eager => {
                    // A buffered send completes locally even when every
                    // copy is lost in flight: the *receiver* starves.
                    if let Some(extra) = self.fault_delay(rank, dst, "eager payload", step) {
                        self.stats.messages += 1;
                        if self.track_eager {
                            *self.outstanding_eager.entry((rank, dst)).or_insert(0) +=
                                self.cfg.msg_bytes;
                        }
                        let arrive = self.launch_transfer(rank, dst, now + extra);
                        batch.push((
                            arrive,
                            Ev::EagerArrive {
                                src: rank,
                                dst,
                                step,
                            },
                        ));
                    }
                    ReqState::Complete
                }
                Mode::Rendezvous => {
                    if let Some(extra) = self.fault_delay(rank, dst, "RTS", step) {
                        let depart = now + extra;
                        let dt = self.ctrl_latency_at(rank, dst, depart);
                        batch.push((
                            depart + dt,
                            Ev::RtsArrive {
                                src: rank,
                                dst,
                                step,
                            },
                        ));
                    }
                    n_incomplete += 1;
                    ReqState::Unmatched
                }
            };
            reqs.push(Request {
                peer: dst,
                is_send: true,
                mode,
                state,
            });
        }
        self.q.push_batch(&mut batch);
        self.batch = batch;

        self.ranks.reqs[ri] = reqs;
        self.unmatched_recvs[ri] = n_unmatched;
        self.gated_cts[ri] = n_gated;
        self.incomplete[ri] = n_incomplete;
    }

    /// Eager unless the message would overflow the destination buffer.
    fn effective_send_mode(&self, src: u32, dst: u32) -> Mode {
        match self.base_mode {
            Mode::Rendezvous => Mode::Rendezvous,
            Mode::Eager => match self.cfg.eager_buffer_bytes {
                None => Mode::Eager,
                Some(cap) => {
                    let used = self
                        .outstanding_eager
                        .get(&(src, dst))
                        .copied()
                        .unwrap_or(0);
                    if used + self.cfg.msg_bytes > cap {
                        Mode::Rendezvous
                    } else {
                        Mode::Eager
                    }
                }
            },
        }
    }

    fn consume_eager(&mut self, src: u32, dst: u32) {
        if !self.track_eager {
            return;
        }
        if let Some(v) = self.outstanding_eager.get_mut(&(src, dst)) {
            *v = v.saturating_sub(self.cfg.msg_bytes);
        }
    }

    /// Which cached-link domain the pair `a -> b` spans: 0 socket, 1 node,
    /// 2 network (matches [`DOMAIN_ORDER`]).
    #[inline]
    fn domain_idx(&self, a: u32, b: u32) -> usize {
        debug_assert_ne!(a, b, "self-message on rank {a}");
        if self.rank_node[a as usize] != self.rank_node[b as usize] {
            2
        } else if self.rank_socket[a as usize] != self.rank_socket[b as usize] {
            1
        } else {
            0
        }
    }

    /// The link model `a -> b` effective at `now`: the base topology link,
    /// degraded by any active fault windows. Slow path — callers consult
    /// the [`LinkCache`] first when no degradations exist.
    fn link_at(&self, a: u32, b: u32, now: SimTime) -> PointToPoint {
        let link = self.cfg.network.link(a, b);
        match self.cfg.faults.degradation_at(a, b, now) {
            Some((lf, bf)) => link.degraded(lf, bf),
            None => link,
        }
    }

    /// Control-message latency `a -> b` for a packet departing at `now`.
    fn ctrl_latency_at(&self, a: u32, b: u32, now: SimTime) -> SimDuration {
        match &self.link_cache {
            Some(c) => c.ctrl[self.domain_idx(a, b)],
            None => self.link_at(a, b, now).ctrl_latency(),
        }
    }

    /// Sample the message-fault fate of one transfer departing on the
    /// directed link `src -> dst`. `Some(extra)` means a copy is
    /// eventually delivered, departing `extra` accumulated retransmission
    /// backoff later than the original send; `None` means every copy
    /// failed — the transfer is lost, logged, and never scheduled, so the
    /// requests depending on it starve and the run ends in
    /// [`SimError::Stalled`].
    fn fault_delay(&mut self, src: u32, dst: u32, what: &str, step: u32) -> Option<SimDuration> {
        let Some(m) = self.cfg.faults.messages else {
            return Some(SimDuration::ZERO);
        };
        if !m.is_active() {
            return Some(SimDuration::ZERO);
        }
        let key = (src, dst);
        let nranks = u64::from(self.cfg.ranks());
        let seeds = &self.seeds;
        let rng = self.fault_rngs.entry(key).or_insert_with(|| {
            let index = u64::from(src) * nranks + u64::from(dst);
            seeds.stream("fault-link", index)
        });
        let fate = m.sample_delivery(rng);
        let (attempts, dropped, corrupted) = match fate {
            Delivery::Delivered {
                attempts,
                dropped,
                corrupted,
                ..
            }
            | Delivery::Lost {
                attempts,
                dropped,
                corrupted,
            } => (attempts, dropped, corrupted),
        };
        self.stats.retransmissions += u64::from(attempts - 1);
        self.stats.dropped_transfers += u64::from(dropped);
        self.stats.corrupted_transfers += u64::from(corrupted);
        match fate {
            Delivery::Delivered { extra_delay, .. } => Some(extra_delay),
            Delivery::Lost { attempts, .. } => {
                self.stats.lost_transfers += 1;
                self.lost.push(format!(
                    "{what} {src} -> {dst} at step {step} lost after {attempts} attempts"
                ));
                None
            }
        }
    }

    fn transfer_duration(&mut self, a: u32, b: u32, now: SimTime) -> SimDuration {
        let base = match &self.link_cache {
            Some(c) => c.xfer[self.domain_idx(a, b)],
            None => self.link_at(a, b, now).transfer_time(self.cfg.msg_bytes),
        };
        match self.cfg.noise_placement {
            NoisePlacement::ExecOnly => base,
            NoisePlacement::ExecAndComm => {
                let extra = self.cfg.noise.sample(&mut self.ranks.comm_rng[a as usize]);
                base + extra
            }
        }
    }

    /// Start a payload transfer from `from` to `to` at `now` (or, with
    /// send serialisation on, when `from`'s injection port frees up) and
    /// return its completion time. With serialisation, the port stays
    /// busy for at least the link's LogGOPS injection gap `g`, so
    /// back-to-back small messages cannot exceed the model's injection
    /// rate.
    fn launch_transfer(&mut self, from: u32, to: u32, now: SimTime) -> SimTime {
        let dt = self.transfer_duration(from, to, now);
        if self.cfg.serialize_sends {
            let start = now.max(self.nic_free[from as usize]);
            let done = start + dt;
            let gap = match &self.link_cache {
                Some(c) => c.gap[self.domain_idx(from, to)],
                None => self.link_at(from, to, now).injection_gap(),
            };
            self.nic_free[from as usize] = start + dt.max(gap);
            done
        } else {
            now + dt
        }
    }

    /// Drive a waiting rank forward: issue gated CTS messages and detect
    /// Waitall completion.
    fn service<S: dispatch::Spec>(&mut self, rank: u32, now: SimTime) {
        let ri = rank as usize;
        if self.ranks.phase[ri] != Phase::Waiting {
            return;
        }
        // Head-of-line CTS gating: grant CTS only when no posted receive is
        // still unmatched (see module docs). The counters are maintained at
        // every request state transition, so the common case is three
        // integer compares with no request scan — and a pure-eager run can
        // never gate a CTS at all.
        if !S::PURE_EAGER && self.unmatched_recvs[ri] == 0 && self.gated_cts[ri] > 0 {
            self.issue_cts(rank, now);
        }
        if self.incomplete[ri] == 0 {
            self.finish_step::<S>(rank, now);
        }
    }

    /// Grant every gated CTS: flip `MatchedNoCts` receives to `InFlight`
    /// and schedule one CTS control message per matched receive. Duplicate
    /// same-peer receives each send their own CTS (with their own
    /// fault-RNG draw), matching the request-matching order exactly.
    fn issue_cts(&mut self, rank: u32, now: SimTime) {
        let ri = rank as usize;
        let step = self.ranks.step[ri];
        let mut reqs = std::mem::take(&mut self.ranks.reqs[ri]);
        let mut cts = std::mem::take(&mut self.scratch_cts);
        cts.clear();
        cts.extend(
            reqs.iter()
                .filter(|r| {
                    !r.is_send && r.mode == Mode::Rendezvous && r.state == ReqState::MatchedNoCts
                })
                .map(|r| r.peer),
        );
        let mut batch = std::mem::take(&mut self.batch);
        debug_assert!(batch.is_empty(), "emission batch leaked");
        for &sender in &cts {
            for r in reqs.iter_mut() {
                if !r.is_send && r.peer == sender && r.state == ReqState::MatchedNoCts {
                    r.state = ReqState::InFlight;
                    self.gated_cts[ri] -= 1;
                }
            }
            if let Some(extra) = self.fault_delay(rank, sender, "CTS", step) {
                let depart = now + extra;
                let dt = self.ctrl_latency_at(rank, sender, depart);
                batch.push((
                    depart + dt,
                    Ev::CtsArrive {
                        sender,
                        receiver: rank,
                        step,
                    },
                ));
            }
        }
        self.q.push_batch(&mut batch);
        self.batch = batch;
        self.scratch_cts = cts;
        self.ranks.reqs[ri] = reqs;
    }

    /// Recompute the request-progress counters from `ranks.reqs`. Called
    /// after a snapshot restore, where requests are rebuilt wholesale
    /// rather than via the incremental transitions that normally maintain
    /// the counters.
    pub(crate) fn recount_requests(&mut self) {
        for ri in 0..self.ranks.len() {
            let mut unmatched = 0u32;
            let mut gated = 0u32;
            let mut incomplete = 0u32;
            for r in self.ranks.reqs[ri].iter() {
                if r.state != ReqState::Complete {
                    incomplete += 1;
                }
                if !r.is_send {
                    match r.state {
                        ReqState::Unmatched => unmatched += 1,
                        ReqState::MatchedNoCts => gated += 1,
                        ReqState::InFlight | ReqState::Complete => {}
                    }
                }
            }
            self.unmatched_recvs[ri] = unmatched;
            self.gated_cts[ri] = gated;
            self.incomplete[ri] = incomplete;
        }
    }

    fn finish_step<S: dispatch::Spec>(&mut self, rank: u32, now: SimTime) {
        let ri = rank as usize;
        debug_assert_eq!(self.incomplete[ri], 0);
        debug_assert_eq!(self.unmatched_recvs[ri], 0);
        debug_assert_eq!(self.gated_cts[ri], 0);
        let step = self.ranks.step[ri];
        // The trace-mode branch folds away under the specialized specs.
        match S::TRACE.unwrap_or(self.mode) {
            TraceMode::Full => self.records.push(PhaseRecord {
                rank,
                step,
                exec_start: self.ranks.exec_start[ri],
                exec_end: self.ranks.exec_end[ri],
                comm_end: now,
                injected: self.ranks.injected[ri],
                noise: self.ranks.noise_amt[ri],
            }),
            TraceMode::Summary => {
                self.summary_records += 1;
                self.summary_digest =
                    self.summary_digest
                        .wrapping_add(PhaseRecord::digest_of_parts(
                            rank,
                            step,
                            self.ranks.exec_start[ri],
                            self.ranks.exec_end[ri],
                            now,
                            self.ranks.injected[ri],
                            self.ranks.noise_amt[ri],
                        ));
                self.finish[ri] = now;
            }
        }
        self.ranks.reqs[ri].clear();
        self.ranks.step[ri] = step + 1;
        if step + 1 == self.cfg.steps {
            self.ranks.phase[ri] = Phase::Done;
            self.done_count += 1;
        } else {
            self.start_exec(rank, now);
        }
    }

    fn on_rts<S: dispatch::Spec>(&mut self, src: u32, dst: u32, step: u32, now: SimTime) {
        debug_assert!(!S::PURE_EAGER, "RTS delivered on a pure-eager run");
        let di = dst as usize;
        let matched = self.ranks.phase[di] == Phase::Waiting && self.ranks.step[di] == step;
        if matched {
            let req = self.ranks.reqs[di]
                .iter_mut()
                .find(|r| !r.is_send && r.peer == src && r.state == ReqState::Unmatched)
                .unwrap_or_else(|| {
                    panic!("rank {dst} step {step}: RTS from {src} has no matching recv")
                });
            // An eager-posted recv can be matched by a rendezvous RTS when
            // the sender's buffer overflowed.
            req.mode = Mode::Rendezvous;
            req.state = ReqState::MatchedNoCts;
            self.unmatched_recvs[di] -= 1;
            self.gated_cts[di] += 1;
            self.service::<S>(dst, now);
        } else {
            debug_assert!(
                self.ranks.step[di] <= step,
                "RTS for a step the receiver already completed"
            );
            self.early_rts.insert(src, dst, step);
        }
    }

    fn on_cts<S: dispatch::Spec>(&mut self, sender: u32, receiver: u32, step: u32, now: SimTime) {
        debug_assert!(!S::PURE_EAGER, "CTS delivered on a pure-eager run");
        {
            let si = sender as usize;
            debug_assert_eq!(self.ranks.step[si], step, "CTS for a foreign step");
            let req = self.ranks.reqs[si]
                .iter_mut()
                .find(|r| r.is_send && r.peer == receiver && r.state == ReqState::Unmatched)
                .unwrap_or_else(|| {
                    panic!("rank {sender} step {step}: CTS from {receiver} has no pending send")
                });
            req.state = ReqState::InFlight;
        }
        if let Some(extra) = self.fault_delay(sender, receiver, "payload", step) {
            self.stats.messages += 1;
            let done = self.launch_transfer(sender, receiver, now + extra);
            self.q.schedule_at(
                done,
                Ev::XferDone {
                    sender,
                    receiver,
                    step,
                },
            );
        }
    }

    fn on_eager<S: dispatch::Spec>(&mut self, src: u32, dst: u32, step: u32, now: SimTime) {
        debug_assert!(
            !S::PURE_RDVZ,
            "eager payload delivered on a pure-rendezvous run"
        );
        let di = dst as usize;
        let matched = self.ranks.phase[di] == Phase::Waiting && self.ranks.step[di] == step;
        if matched {
            let req = self.ranks.reqs[di]
                .iter_mut()
                .find(|r| {
                    !r.is_send
                        && r.peer == src
                        // On a pure-eager run every recv is eager-mode.
                        && (S::PURE_EAGER || r.mode == Mode::Eager)
                        && r.state == ReqState::Unmatched
                })
                .unwrap_or_else(|| {
                    panic!("rank {dst} step {step}: eager data from {src} has no matching recv")
                });
            req.state = ReqState::Complete;
            self.unmatched_recvs[di] -= 1;
            self.incomplete[di] -= 1;
            if !S::PURE_EAGER {
                // Pure-eager runs have no finite buffer to account for.
                self.consume_eager(src, dst);
            }
            self.service::<S>(dst, now);
        } else {
            debug_assert!(
                self.ranks.step[di] <= step,
                "eager data for a step the receiver already completed"
            );
            self.early_eager.insert(src, dst, step);
        }
    }

    fn on_xfer_done<S: dispatch::Spec>(
        &mut self,
        sender: u32,
        receiver: u32,
        step: u32,
        now: SimTime,
    ) {
        debug_assert!(!S::PURE_EAGER, "rendezvous transfer on a pure-eager run");
        {
            let req = self.ranks.reqs[sender as usize]
                .iter_mut()
                .find(|r| r.is_send && r.peer == receiver && r.state == ReqState::InFlight)
                .expect("transfer completion without in-flight send");
            req.state = ReqState::Complete;
            self.incomplete[sender as usize] -= 1;
        }
        {
            debug_assert_eq!(self.ranks.step[receiver as usize], step);
            let req = self.ranks.reqs[receiver as usize]
                .iter_mut()
                .find(|r| !r.is_send && r.peer == sender && r.state == ReqState::InFlight)
                .expect("transfer completion without in-flight recv");
            req.state = ReqState::Complete;
            self.incomplete[receiver as usize] -= 1;
        }
        self.service::<S>(sender, now);
        self.service::<S>(receiver, now);
    }
}

/// Run a simulation described by `cfg` and return its trace.
///
/// # Panics
/// Panics when the config fails validation or the simulation deadlocks,
/// like [`Engine::run`]. Library code should prefer [`try_run`].
pub fn run(cfg: &SimConfig) -> Trace {
    Engine::new(cfg.clone()).run()
}

/// Fallible [`run`]: invalid configs, stalls/starvation, and deadlocks
/// come back as [`SimError`] values instead of panics.
pub fn try_run(cfg: &SimConfig) -> Result<Trace, SimError> {
    try_run_with_limits(cfg, &RunLimits::none())
}

/// [`try_run`] under [`RunLimits`] budgets: the supervised sweep runner
/// uses this to bound runaway scenarios deterministically in sim time
/// before any wall-clock timeout has to fire.
pub fn try_run_with_limits(cfg: &SimConfig, limits: &RunLimits) -> Result<Trace, SimError> {
    Engine::try_new(cfg.clone())?.try_run(limits)
}

/// Full-trace run drawing and returning all large allocations from
/// `pools`: run `n` scenarios of the same shape through one pool and only
/// the first allocates.
pub fn try_run_with_stats_pooled(
    cfg: &SimConfig,
    limits: &RunLimits,
    pools: &mut EnginePools,
) -> Result<(Trace, RunStats), SimError> {
    let mut e = Engine::try_new_pooled(cfg.clone(), pools)?;
    match e.run_loop(limits, &CheckpointPolicy::none(), &mut |_| {}) {
        Ok(()) => {
            let trace = Trace::from_record_buffer(e.cfg.ranks(), e.cfg.steps, &mut e.records);
            let stats = e.stats;
            e.recycle(pools);
            Ok((trace, stats))
        }
        Err(err) => {
            e.recycle(pools);
            Err(err)
        }
    }
}

/// [`Engine::try_run_checkpointed`] drawing and returning all large
/// allocations from `pools`: the sweep runner's per-worker path, so a
/// supervisor thread churning through hundreds of scenarios reuses one
/// set of buffers instead of reallocating per attempt.
pub fn try_run_checkpointed_pooled<F>(
    cfg: &SimConfig,
    limits: &RunLimits,
    policy: &CheckpointPolicy,
    mut sink: F,
    pools: &mut EnginePools,
) -> Result<(Trace, RunStats), SimError>
where
    F: FnMut(&Snapshot),
{
    let mut e = Engine::try_new_pooled(cfg.clone(), pools)?;
    match e.run_loop(limits, policy, &mut sink) {
        Ok(()) => {
            let trace = Trace::from_record_buffer(e.cfg.ranks(), e.cfg.steps, &mut e.records);
            let stats = e.stats;
            e.recycle(pools);
            Ok((trace, stats))
        }
        Err(err) => {
            e.recycle(pools);
            Err(err)
        }
    }
}

/// [`Engine::try_run_summary`] drawing and returning all large
/// allocations from `pools` — the throughput benchmark's measurement
/// kernel: O(ranks) memory, no per-run allocation churn.
pub fn try_run_summary_pooled(
    cfg: &SimConfig,
    limits: &RunLimits,
    pools: &mut EnginePools,
) -> Result<(RunSummary, RunStats), SimError> {
    let mut e = Engine::try_new_pooled(cfg.clone(), pools)?;
    e.mode = TraceMode::Summary;
    match e.run_loop(limits, &CheckpointPolicy::none(), &mut |_| {}) {
        Ok(()) => {
            let out = e.take_summary();
            e.recycle(pools);
            Ok(out)
        }
        Err(err) => {
            e.recycle(pools);
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::presets;
    use workload::{Boundary, CommPattern, Direction};

    fn engine(ranks: u32) -> Engine {
        let net = presets::loggopsim_like(ranks);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            3,
        );
        cfg.protocol = crate::Protocol::Rendezvous;
        Engine::new(cfg)
    }

    /// A real deadlock is unreachable (the engine's nonblocking-waitall
    /// semantics always make progress), so the post-mortem is exercised on
    /// a synthetic stuck state: each rank waits on its upper neighbour's
    /// CTS, forming a ring.
    #[test]
    fn deadlock_report_names_the_rank_cycle() {
        let mut e = engine(4);
        for r in 0..4usize {
            e.ranks.phase[r] = Phase::Waiting;
            e.ranks.reqs[r] = ReqSlots::from_slice(&[Request {
                peer: ((r + 1) % 4) as u32,
                is_send: true,
                mode: Mode::Rendezvous,
                state: ReqState::Unmatched,
            }]);
        }
        let report = e.deadlock_report();
        assert!(report.contains("wait-for cycle [SC001]"), "{report}");
        assert!(report.contains("0 -> 1 -> 2 -> 3 -> 0"), "{report}");
        assert!(report.contains("rank 2: step 0 phase Waiting"), "{report}");
    }

    #[test]
    fn deadlock_report_without_a_cycle_points_at_the_engine() {
        let mut e = engine(4);
        // One rank stuck on a completed peer: no cycle — a lost event.
        e.ranks.phase[1] = Phase::Waiting;
        e.ranks.reqs[1] = ReqSlots::from_slice(&[Request {
            peer: 2,
            is_send: false,
            mode: Mode::Eager,
            state: ReqState::Unmatched,
        }]);
        for r in [0usize, 2, 3] {
            e.ranks.phase[r] = Phase::Done;
        }
        let report = e.deadlock_report();
        assert!(report.contains("no wait-for cycle"), "{report}");
        assert!(report.contains("engine bug"), "{report}");
    }

    #[test]
    fn completed_eager_sends_do_not_count_as_blocking() {
        let mut e = engine(4);
        for r in 0..4usize {
            e.ranks.phase[r] = Phase::Waiting;
            e.ranks.reqs[r] = ReqSlots::from_slice(&[Request {
                peer: ((r + 1) % 4) as u32,
                is_send: true,
                mode: Mode::Eager,
                state: ReqState::Complete,
            }]);
        }
        assert!(e.deadlock_report().contains("no wait-for cycle"));
    }

    #[test]
    fn early_set_has_set_semantics_and_canonical_entries() {
        let mut s = EarlySet::new(4);
        s.insert(1, 2, 0);
        s.insert(1, 2, 0); // duplicate collapses
        s.insert(3, 2, 1);
        s.insert(0, 1, 5);
        assert_eq!(s.entries_sorted(), vec![(0, 1, 5), (1, 2, 0), (3, 2, 1)]);
        assert!(s.remove(1, 2, 0));
        assert!(!s.remove(1, 2, 0), "set semantics: one entry to remove");
        let round = EarlySet::from_entries(4, &s.entries_sorted());
        assert_eq!(round.entries_sorted(), s.entries_sorted());
    }

    // ---- fault injection -------------------------------------------------

    use crate::error::{RunLimits, SimError};
    use crate::faults::{FaultPlan, LinkDegradation, MessageFaults};

    fn fault_cfg(ranks: u32) -> SimConfig {
        let net = presets::loggopsim_like(ranks);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            4,
        );
        cfg.protocol = crate::Protocol::Rendezvous;
        cfg
    }

    #[test]
    fn try_new_reports_invalid_configs_as_values() {
        let mut cfg = fault_cfg(8);
        cfg.steps = 0;
        let Err(SimError::InvalidConfig(diags)) = Engine::try_new(cfg) else {
            panic!("zero steps must be rejected");
        };
        assert!(diags.iter().any(|d| d.code == "SC004"));
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let cfg = fault_cfg(8);
        let baseline = Engine::new(cfg.clone()).run();
        let mut with_plan = cfg;
        with_plan.faults = FaultPlan::none().with_messages(MessageFaults::default());
        let (trace, stats) = Engine::new(with_plan)
            .try_run_with_stats(&RunLimits::none())
            .expect("lossless plan completes");
        assert_eq!(baseline.total_runtime(), trace.total_runtime());
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.lost_transfers, 0);
    }

    #[test]
    fn drops_cause_retransmissions_and_delay_the_run() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_drops(0.3, SimDuration::from_micros(200));
        let clean_finish = {
            let mut c = cfg.clone();
            c.faults = FaultPlan::none();
            Engine::new(c).run().total_runtime()
        };
        let (trace, stats) = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::none())
            .expect("30% drops with 16 retries must still complete");
        assert!(stats.retransmissions > 0, "{stats:?}");
        assert!(stats.dropped_transfers >= stats.retransmissions);
        assert!(
            trace.total_runtime() > clean_finish,
            "retransmission backoff must cost sim time: {} vs {clean_finish}",
            trace.total_runtime()
        );
    }

    #[test]
    fn certain_loss_stalls_with_a_fault_verdict() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_messages(MessageFaults {
            drop_prob: 1.0,
            max_retries: 2,
            ..MessageFaults::default()
        });
        let err = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::none())
            .expect_err("guaranteed loss cannot complete");
        let SimError::Stalled { done, report, .. } = err else {
            panic!("expected a stall, got {err:?}");
        };
        assert_eq!(done, 0);
        assert!(
            report.contains("injected faults starved the run"),
            "{report}"
        );
        assert!(report.contains("lost after 3 attempts"), "{report}");
    }

    #[test]
    fn fail_stop_crash_stalls_and_names_the_rank() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_crash(3, 1, None);
        let err = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::none())
            .expect_err("fail-stop starves the neighbours");
        let SimError::Stalled { report, .. } = err else {
            panic!("expected a stall, got {err:?}");
        };
        assert!(report.contains("rank 3 crashed (fail-stop)"), "{report}");
    }

    #[test]
    fn recovering_crash_acts_like_an_injected_delay() {
        let outage = SimDuration::from_millis(2);
        let mut crash = fault_cfg(8);
        crash.faults = FaultPlan::none().with_crash(3, 1, Some(outage));
        let crash_trace = Engine::new(crash).run();
        let mut inject = fault_cfg(8);
        inject.injections = noise_model::InjectionPlan::single(3, 1, outage);
        let inject_trace = Engine::new(inject).run();
        assert_eq!(crash_trace.total_runtime(), inject_trace.total_runtime());
    }

    #[test]
    fn stall_fault_matches_equal_injection() {
        let d = SimDuration::from_millis(1);
        let mut stall = fault_cfg(8);
        stall.faults = FaultPlan::none().with_stall(2, 0, d);
        let mut inject = fault_cfg(8);
        inject.injections = noise_model::InjectionPlan::single(2, 0, d);
        assert_eq!(
            Engine::new(stall).run().total_runtime(),
            Engine::new(inject).run().total_runtime()
        );
    }

    #[test]
    fn degradation_window_slows_only_transfers_inside_it() {
        let mut cfg = fault_cfg(8);
        let clean_finish = Engine::new(cfg.clone()).run().total_runtime();
        // Degrade every link 10x across the whole run.
        cfg.faults = FaultPlan::none().with_degradation(LinkDegradation {
            from: SimTime::ZERO,
            until: SimTime(u64::MAX),
            link: None,
            latency_factor: 10.0,
            bandwidth_factor: 10.0,
        });
        let slow_finish = Engine::new(cfg.clone()).run().total_runtime();
        assert!(
            slow_finish > clean_finish,
            "{slow_finish} vs {clean_finish}"
        );
        // A window that closes before the first communication phase (3 ms
        // compute) never applies.
        cfg.faults = FaultPlan::none().with_degradation(LinkDegradation {
            from: SimTime::ZERO,
            until: SimTime(1_000),
            link: None,
            latency_factor: 10.0,
            bandwidth_factor: 10.0,
        });
        assert_eq!(Engine::new(cfg).run().total_runtime(), clean_finish);
    }

    #[test]
    fn watchdog_budgets_trip_as_errors() {
        let cfg = fault_cfg(8);
        let err = Engine::new(cfg.clone())
            .try_run_with_stats(&RunLimits::sim_time(SimTime(1_000)))
            .expect_err("a 4-step run lasts far past 1 us");
        assert!(matches!(err, SimError::Watchdog { .. }), "{err:?}");
        let err = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::events(5))
            .expect_err("a 4-step run takes more than 5 events");
        let SimError::Watchdog { events, .. } = err else {
            panic!("expected watchdog, got {err:?}");
        };
        assert!(events > 5);
    }

    #[test]
    fn faulty_runs_are_bit_identical_across_reruns() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none()
            .with_drops(0.25, SimDuration::from_micros(100))
            .with_stall(1, 2, SimDuration::from_micros(300));
        let a = Engine::new(cfg.clone()).run();
        let b = Engine::new(cfg).run();
        assert_eq!(a, b);
    }

    // ---- summary mode and pooling ---------------------------------------

    #[test]
    fn summary_run_matches_the_full_trace_fold() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_drops(0.2, SimDuration::from_micros(150));
        let (trace, full_stats) = Engine::new(cfg.clone())
            .try_run_with_stats(&RunLimits::none())
            .expect("completes");
        let (summary, sum_stats) = Engine::new(cfg)
            .try_run_summary(&RunLimits::none())
            .expect("completes");
        assert_eq!(summary, RunSummary::of_trace(&trace));
        assert_eq!(summary.total_runtime(), trace.total_runtime());
        assert_eq!(full_stats, sum_stats);
    }

    /// A generous hand-built budget for the `fault_cfg` shapes; the exact
    /// per-config prediction lives in `simcheck::budget` (which this crate
    /// cannot depend on) and is drift-tested at the workspace level.
    fn test_budget(cfg: &SimConfig, trace: bool) -> PoolBudget {
        let n = cfg.ranks();
        PoolBudget {
            ranks: n,
            steps: cfg.steps,
            peak_queue: 8 * n as usize,
            requests_per_rank: 4,
            trace_records: if trace {
                n as usize * cfg.steps as usize
            } else {
                0
            },
        }
    }

    #[test]
    fn pooled_runs_are_bit_identical_and_stop_allocating() {
        let cfg = fault_cfg(8);
        let baseline = Engine::new(cfg.clone()).run();
        let mut pools = EnginePools::with_budget(&test_budget(&cfg, true));
        let mut fingerprints = Vec::new();
        for _ in 0..5 {
            let (trace, _) =
                try_run_with_stats_pooled(&cfg, &RunLimits::none(), &mut pools).expect("completes");
            fingerprints.push(trace.fingerprint());
            // Budget-driven pre-sizing: every run, including the first,
            // fits inside the budgeted watermark. No warmup runs.
            assert_eq!(
                pools.grows(),
                0,
                "a budgeted pool must settle on run 1 (run {})",
                pools.runs()
            );
        }
        assert!(
            fingerprints.iter().all(|&f| f == baseline.fingerprint()),
            "pooled runs must be bit-identical to fresh runs"
        );
        assert_eq!(pools.runs(), 5);
    }

    #[test]
    fn unbudgeted_pools_keep_the_first_run_baseline_contract() {
        let cfg = fault_cfg(8);
        let mut pools = EnginePools::new();
        let mut grows_per_run = Vec::new();
        for _ in 0..5 {
            let (_, _) =
                try_run_with_stats_pooled(&cfg, &RunLimits::none(), &mut pools).expect("completes");
            grows_per_run.push(pools.grows());
        }
        // Without a budget the first run sets the baseline and run 2 may
        // settle swap-shuffled queue segments; runs 3..5 must be stable.
        assert_eq!(
            grows_per_run[4], grows_per_run[1],
            "same-shape reruns must reuse the pooled capacity"
        );
    }

    #[test]
    fn pooled_summary_runs_match_and_stop_allocating() {
        let cfg = fault_cfg(8);
        let reference = RunSummary::of_trace(&Engine::new(cfg.clone()).run());
        // Summary pools retain no trace records.
        let mut pools = EnginePools::with_budget(&test_budget(&cfg, false));
        for _ in 0..6 {
            let (s, _) =
                try_run_summary_pooled(&cfg, &RunLimits::none(), &mut pools).expect("completes");
            assert_eq!(s, reference);
            assert_eq!(
                pools.grows(),
                0,
                "a budgeted summary pool must settle on run 1 (run {})",
                pools.runs()
            );
        }
    }

    // ---- fused fast path -------------------------------------------------

    /// An eligible scenario with everything the fused path must get
    /// bit-identical: a one-off injection, exponential noise drawn from
    /// the per-rank streams, and per-rank imbalance.
    fn fused_cfg(ranks: u32) -> SimConfig {
        let net = presets::loggopsim_like(ranks);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            6,
        );
        cfg.protocol = crate::Protocol::Eager;
        cfg.injections = noise_model::InjectionPlan::single(2, 1, SimDuration::from_millis(9));
        cfg.noise = noise_model::DelayDistribution::Exponential {
            mean: SimDuration::from_micros(40),
        };
        cfg.imbalance = (0..ranks).map(|r| 1.0 + 0.01 * f64::from(r % 3)).collect();
        cfg
    }

    #[test]
    fn fused_eligibility_tracks_the_dynamic_features() {
        let cfg = fused_cfg(8);
        assert!(fused_path_eligible(&cfg));
        assert!(Engine::new(cfg.clone()).fused.is_some());

        let mut rdvz = cfg.clone();
        rdvz.protocol = crate::Protocol::Rendezvous;
        assert!(!fused_path_eligible(&rdvz));

        let mut buffered = cfg.clone();
        buffered.eager_buffer_bytes = Some(1 << 20);
        assert!(!fused_path_eligible(&buffered));

        let mut serialized = cfg.clone();
        serialized.serialize_sends = true;
        assert!(!fused_path_eligible(&serialized));

        let mut comm_noise = cfg.clone();
        comm_noise.noise_placement = NoisePlacement::ExecAndComm;
        assert!(!fused_path_eligible(&comm_noise));

        let mut faulty = cfg;
        faulty.faults = FaultPlan::none().with_drops(0.05, SimDuration::from_micros(100));
        assert!(!fused_path_eligible(&faulty));
    }

    #[test]
    fn fused_path_is_bit_identical_to_the_general_loop() {
        let cfg = fused_cfg(8);
        // Plain run: takes the fused path (no calendar traffic at all).
        let (fused, fused_stats) = Engine::new(cfg.clone()).run_with_stats();
        assert_eq!(fused_stats.peak_queue, 0, "fused runs skip the calendar");
        // An event budget (far above the real count) forces the general
        // loop without perturbing it.
        let (general, general_stats) = Engine::new(cfg.clone())
            .try_run_with_stats(&RunLimits::events(1_000_000))
            .expect("completes");
        assert!(
            general_stats.peak_queue > 0,
            "general loop uses the calendar"
        );
        assert_eq!(fused, general, "fused trace must be bit-identical");
        assert_eq!(
            fused_stats.events, general_stats.events,
            "elided events must keep the semantic count"
        );
        assert_eq!(fused_stats.messages, general_stats.messages);

        // Summary mode folds the same records on both paths.
        let (summary, _) = Engine::new(cfg)
            .try_run_summary(&RunLimits::none())
            .expect("completes");
        assert_eq!(summary, RunSummary::of_trace(&fused));
    }

    #[test]
    fn fused_path_matches_the_reference_recurrence() {
        let cfg = fused_cfg(12);
        assert!(crate::reference::supports(&cfg));
        assert_eq!(
            Engine::new(cfg.clone()).run(),
            crate::reference::reference_trace(&cfg)
        );
    }

    #[test]
    fn pool_budget_byte_estimates_scale_with_the_shape() {
        let small = PoolBudget {
            ranks: 8,
            steps: 4,
            peak_queue: 64,
            requests_per_rank: 4,
            trace_records: 32,
        };
        let big = PoolBudget {
            ranks: 1024,
            steps: 40,
            peak_queue: 8192,
            requests_per_rank: 8,
            trace_records: 1024 * 40,
        };
        assert!(small.bytes() > 0);
        assert!(
            big.bytes() > small.bytes(),
            "budget byte estimates must grow with the predicted shape"
        );
        // Spilled request lists (beyond the four inline slots) cost heap
        // bytes; a wider schedule must never estimate cheaper.
        let wide = PoolBudget {
            requests_per_rank: 32,
            ..small
        };
        assert!(wide.bytes() > small.bytes());
    }
}
