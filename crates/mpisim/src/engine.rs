//! The discrete-event message-passing engine.
//!
//! Each rank is a small state machine cycling through `Computing →
//! Waiting → Computing → … → Done`:
//!
//! 1. **Computing**: the execution phase. Its length is the execution
//!    model's work time plus any injected one-off delay plus sampled noise.
//!    For the memory-bound model the work time is dynamic: ranks working
//!    concurrently on one socket share its memory bandwidth
//!    (processor-sharing fluid model; rates re-integrate at every
//!    join/leave).
//! 2. **Waiting**: at the end of the execution phase the rank posts all
//!    nonblocking receives and sends for the step (`MPI_Isend`/`MPI_Irecv`)
//!    and enters `MPI_Waitall`. The step completes when every request
//!    completes.
//!
//! ## Protocol semantics
//!
//! * **Eager**: a send completes immediately at post (internal buffering);
//!   the payload arrives at the receiver one transfer time later and the
//!   matching receive completes at `max(arrival, post)`. With a finite
//!   eager-buffer capacity, a send that would overflow the outstanding
//!   unconsumed bytes towards its destination falls back to rendezvous
//!   (paper, footnote 1).
//! * **Rendezvous**: the sender posts an RTS control message. The receiver
//!   answers with a CTS, *but only once none of its posted receives is
//!   still unmatched* — the head-of-line CTS gating rule. On CTS the
//!   payload transfer starts; both requests complete when it ends.
//!
//! The CTS gating rule is the one modelling choice that is not literal MPI
//! standard text, and it is load-bearing: it abstracts the weak-progress /
//! serialized request servicing of real MPI libraries inside a blocked
//! `MPI_Waitall`, and it is what reproduces the **2× idle-wave propagation
//! speed for bidirectional rendezvous communication** that the paper
//! measures on real hardware (Fig. 5 g/h, Fig. 7, Eq. 2's σ = 2). With
//! per-request autonomous progress instead, simulation gives σ = 1 in all
//! modes, contradicting the measurements. See DESIGN.md §5.
//!
//! Everything is deterministic: integer-nanosecond timestamps, FIFO tie
//! breaking, per-rank RNG streams derived from the master seed.

// The hash containers below are membership sets / lookup maps that are
// never iterated, so their nondeterministic order cannot leak into traces.
use std::collections::{BTreeSet, HashMap, HashSet}; // simlint: allow(hash-collections)

use netmodel::PointToPoint;
use simdes::{EventQueue, SeedFactory, SimDuration, SimRng, SimTime};
use tracefmt::{PhaseRecord, Trace};
use workload::ExecModel;

use crate::config::{Mode, NoisePlacement, SimConfig};
use crate::diag;
use crate::error::{RunLimits, SimError};
use crate::faults::{CrashOutcome, Delivery};
use crate::snapshot::{CheckpointPolicy, Snapshot};

/// Events of the message-passing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    /// A rank's execution phase ends (work + injected delay + noise done).
    ExecEnd { rank: u32, epoch: u64 },
    /// A memory-bound rank's injected delay ended; it starts contending
    /// for socket bandwidth.
    WorkStart { rank: u32 },
    /// A memory-bound rank's shared-bandwidth work finished.
    WorkEnd { rank: u32, epoch: u64 },
    /// A rendezvous ready-to-send control message reaches the receiver.
    RtsArrive { src: u32, dst: u32, step: u32 },
    /// A clear-to-send control message reaches the data sender.
    CtsArrive {
        sender: u32,
        receiver: u32,
        step: u32,
    },
    /// An eager payload reaches the receiver.
    EagerArrive { src: u32, dst: u32, step: u32 },
    /// A rendezvous payload transfer completes (both endpoints).
    XferDone {
        sender: u32,
        receiver: u32,
        step: u32,
    },
}

/// Lifecycle of one posted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqState {
    /// Rendezvous recv without RTS, eager recv without data, rendezvous
    /// send without CTS: waiting on an external event.
    Unmatched,
    /// Rendezvous recv whose RTS arrived but whose CTS is withheld by the
    /// head-of-line gating rule.
    MatchedNoCts,
    /// A transfer with a known completion time is under way.
    InFlight,
    /// Done.
    Complete,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    pub(crate) peer: u32,
    pub(crate) is_send: bool,
    pub(crate) mode: Mode,
    pub(crate) state: ReqState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Computing,
    Waiting,
    Done,
    /// Fail-stop crash (see [`crate::faults::RankFaultKind::Crash`]): the
    /// rank never progresses again and its peers starve.
    Crashed,
}

#[derive(Debug, Clone)]
pub(crate) struct RankState {
    pub(crate) phase: Phase,
    pub(crate) step: u32,
    pub(crate) reqs: Vec<Request>,
    pub(crate) exec_start: SimTime,
    pub(crate) exec_end: SimTime,
    pub(crate) injected: SimDuration,
    pub(crate) noise_amt: SimDuration,
    pub(crate) epoch: u64,
    /// Memory-bound: bytes of phase traffic still to move.
    pub(crate) remaining_bytes: f64,
    /// Memory-bound: last time `remaining_bytes` was integrated.
    pub(crate) last_update: SimTime,
    pub(crate) rng: SimRng,
    pub(crate) comm_rng: SimRng,
}

/// Resource statistics of a completed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events delivered by the queue.
    pub events: u64,
    /// Largest number of simultaneously pending events.
    pub peak_queue: usize,
    /// Messages transferred (eager payloads + rendezvous transfers).
    pub messages: u64,
    /// Sends that fell back from eager to rendezvous (finite buffers).
    pub eager_fallbacks: u64,
    /// Extra copies sent after a drop or corruption (fault injection).
    pub retransmissions: u64,
    /// Transfer copies dropped in flight (fault injection).
    pub dropped_transfers: u64,
    /// Transfer copies delivered corrupt and rejected (fault injection).
    pub corrupted_transfers: u64,
    /// Transfers abandoned after the retry budget (fault injection); a
    /// nonzero count means the run stalled.
    pub lost_transfers: u64,
}

/// The simulation engine. Build with [`Engine::new`], run with
/// [`Engine::run`] (or use the [`crate::run`] convenience function).
pub struct Engine {
    pub(crate) cfg: SimConfig,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) ranks: Vec<RankState>,
    /// RTS that arrived before the matching recv was posted.
    pub(crate) early_rts: HashSet<(u32, u32, u32)>, // simlint: allow(hash-collections)
    /// Eager payloads that arrived before the matching recv was posted.
    pub(crate) early_eager: HashSet<(u32, u32, u32)>, // simlint: allow(hash-collections)
    /// Unconsumed eager bytes per (src, dst), for the finite-buffer
    /// fallback.
    pub(crate) outstanding_eager: HashMap<(u32, u32), u64>, // simlint: allow(hash-collections)
    /// Ranks currently in the shared-bandwidth work segment, per socket.
    pub(crate) socket_members: Vec<BTreeSet<u32>>,
    pub(crate) records: Vec<PhaseRecord>,
    pub(crate) done_count: u32,
    pub(crate) base_mode: Mode,
    /// Per-rank time at which the rank's injection port is free again
    /// (only consulted when `cfg.serialize_sends` is on).
    pub(crate) nic_free: Vec<SimTime>,
    pub(crate) stats: RunStats,
    /// Stream factory, kept for lazily created fault streams.
    pub(crate) seeds: SeedFactory,
    /// One RNG stream per directed link that has carried a faulted
    /// transfer; keyed lookup only, never iterated.
    pub(crate) fault_rngs: HashMap<(u32, u32), SimRng>, // simlint: allow(hash-collections)
    /// Ranks taken down by a fail-stop crash.
    pub(crate) crashed: Vec<u32>,
    /// Human-readable log of transfers lost after the retry budget.
    pub(crate) lost: Vec<String>,
    /// Whether the initial `start_exec` round has run. A fresh engine has
    /// not started; a restored one resumes mid-run and must not re-seed
    /// the queue with step-0 executions.
    pub(crate) started: bool,
}

impl Engine {
    /// Set up a simulation for `cfg` (validates the config).
    ///
    /// # Panics
    /// Panics with the rendered diagnostic report when
    /// [`SimConfig::validate`] finds error-level problems. Library code
    /// should prefer [`Engine::try_new`].
    pub fn new(cfg: SimConfig) -> Self {
        Engine::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Engine::new`]: returns [`SimError::InvalidConfig`] with
    /// the rejecting diagnostics instead of panicking.
    pub fn try_new(cfg: SimConfig) -> Result<Self, SimError> {
        let diags = cfg.check();
        if diag::has_errors(&diags) {
            let errors = diags.into_iter().filter(|d| d.is_error()).collect();
            return Err(SimError::InvalidConfig(errors));
        }
        let seeds = SeedFactory::new(cfg.seed);
        let nranks = cfg.ranks();
        let ranks = (0..nranks)
            .map(|r| RankState {
                phase: Phase::Computing,
                step: 0,
                reqs: Vec::new(),
                exec_start: SimTime::ZERO,
                exec_end: SimTime::ZERO,
                injected: SimDuration::ZERO,
                noise_amt: SimDuration::ZERO,
                epoch: 0,
                remaining_bytes: 0.0,
                last_update: SimTime::ZERO,
                rng: seeds.stream("exec-noise", u64::from(r)),
                comm_rng: seeds.stream("comm-noise", u64::from(r)),
            })
            .collect();
        let sockets = cfg.network.machine.total_sockets() as usize;
        let base_mode = cfg.protocol.mode_for(cfg.msg_bytes);
        Ok(Engine {
            q: EventQueue::with_capacity(4 * nranks as usize),
            ranks,
            early_rts: HashSet::new(),   // simlint: allow(hash-collections)
            early_eager: HashSet::new(), // simlint: allow(hash-collections)
            outstanding_eager: HashMap::new(), // simlint: allow(hash-collections)
            socket_members: vec![BTreeSet::new(); sockets],
            records: Vec::with_capacity(nranks as usize * cfg.steps as usize),
            done_count: 0,
            base_mode,
            nic_free: vec![SimTime::ZERO; nranks as usize],
            stats: RunStats::default(),
            seeds,
            fault_rngs: HashMap::new(), // simlint: allow(hash-collections)
            crashed: Vec::new(),
            lost: Vec::new(),
            started: false,
            cfg,
        })
    }

    /// Run to completion and return the trace.
    ///
    /// # Panics
    /// Panics on deadlock (event queue drained with unfinished ranks):
    /// with an empty fault plan that always indicates an engine or
    /// configuration bug; with faults it can also mean a fail-stop crash
    /// or a lost transfer starved the run. Library code should prefer
    /// [`Engine::try_run`].
    pub fn run(self) -> Trace {
        self.run_with_stats().0
    }

    /// Fallible [`Engine::run`] under optional [`RunLimits`] budgets:
    /// deadlock and starvation become [`SimError::Stalled`], a tripped
    /// budget becomes [`SimError::Watchdog`].
    pub fn try_run(self, limits: &RunLimits) -> Result<Trace, SimError> {
        Ok(self.try_run_with_stats(limits)?.0)
    }

    /// Run to completion, returning the trace together with resource
    /// statistics of the simulation itself.
    ///
    /// # Panics
    /// Panics on deadlock, like [`Engine::run`].
    pub fn run_with_stats(self) -> (Trace, RunStats) {
        match self.try_run_with_stats(&RunLimits::none()) {
            Ok(out) => out,
            Err(SimError::Stalled {
                done,
                ranks,
                report,
            }) => panic!("simulation deadlocked with {done}/{ranks} ranks finished:\n{report}"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Engine::run_with_stats`] under optional [`RunLimits`]
    /// budgets. On success the trace covers every `(rank, step)` cell; on
    /// failure the error describes which scenario pathology ended the run
    /// (stall/starvation vs exceeded budget).
    pub fn try_run_with_stats(self, limits: &RunLimits) -> Result<(Trace, RunStats), SimError> {
        self.try_run_checkpointed(limits, &CheckpointPolicy::none(), |_| {})
    }

    /// [`Engine::try_run_with_stats`] with periodic checkpointing: whenever
    /// the `policy` cadence comes due, a [`Snapshot`] of the paused engine
    /// is captured and handed to `sink`. Snapshots are cut between event
    /// deliveries, so resuming one replays the remaining schedule exactly —
    /// the restored run's trace fingerprint is bit-identical to this run's.
    ///
    /// `sink` is infallible by design: checkpointing is best-effort and a
    /// failed write must never abort a healthy simulation. Callers that do
    /// I/O (the sweep runner) handle and log their own errors.
    pub fn try_run_checkpointed<F>(
        mut self,
        limits: &RunLimits,
        policy: &CheckpointPolicy,
        mut sink: F,
    ) -> Result<(Trace, RunStats), SimError>
    where
        F: FnMut(&Snapshot),
    {
        let nranks = self.cfg.ranks();
        if !self.started {
            self.started = true;
            for r in 0..nranks {
                self.start_exec(r, SimTime::ZERO);
            }
        }
        // Checkpoint cadence is measured from where *this* run started, so
        // a restored engine checkpoints relative to its resume point. The
        // counters are deliberately not part of the snapshot: checkpoint
        // timing never feeds back into simulation state.
        let mut last_ckpt_events = self.q.delivered();
        let mut next_ckpt_time = policy.every_sim_time.map(|dt| self.q.now() + dt);
        while let Some((now, ev)) = self.q.pop() {
            self.stats.peak_queue = self.stats.peak_queue.max(self.q.len() + 1);
            if let Some(budget) = limits.max_sim_time {
                if now > budget {
                    return Err(SimError::Watchdog {
                        at: now,
                        events: self.q.delivered(),
                        why: format!("sim time budget t = {budget} exceeded"),
                    });
                }
            }
            if let Some(max_events) = limits.max_events {
                if self.q.delivered() > max_events {
                    return Err(SimError::Watchdog {
                        at: now,
                        events: self.q.delivered(),
                        why: format!("event budget {max_events} exceeded"),
                    });
                }
            }
            self.dispatch(now, ev);
            let events_due = policy
                .every_events
                .is_some_and(|n| self.q.delivered() - last_ckpt_events >= n);
            let time_due = next_ckpt_time.is_some_and(|t| now >= t);
            if events_due || time_due {
                last_ckpt_events = self.q.delivered();
                if let (Some(dt), Some(t)) = (policy.every_sim_time, next_ckpt_time) {
                    let mut next = t;
                    while now >= next {
                        next = next + dt;
                    }
                    next_ckpt_time = Some(next);
                }
                sink(&self.checkpoint());
            }
        }
        self.stats.events = self.q.delivered();
        if self.done_count != nranks {
            return Err(SimError::Stalled {
                done: self.done_count,
                ranks: nranks,
                report: self.deadlock_report(),
            });
        }
        Ok((
            Trace::from_records(nranks, self.cfg.steps, self.records),
            self.stats,
        ))
    }

    /// Post-mortem for a drained event queue with unfinished ranks: build
    /// the wait-for graph implied by the stuck requests (a rank waits on a
    /// peer whose RTS, CTS, or eager payload it still needs) and name the
    /// rank cycle — the same diagnosis `simcheck::analyze` produces
    /// statically as `SC001` before a run.
    fn deadlock_report(&self) -> String {
        let nranks = self.cfg.ranks() as usize;
        let mut g = simdes::Digraph::new(nranks);
        let mut stuck = Vec::new();
        for r in 0..nranks {
            let s = &self.ranks[r];
            if s.phase == Phase::Done {
                continue;
            }
            stuck.push(format!(
                "rank {r}: step {} phase {:?} reqs {:?}",
                s.step, s.phase, s.reqs
            ));
            if s.phase != Phase::Waiting {
                continue;
            }
            for req in &s.reqs {
                let blocked_on_peer = match (req.is_send, req.state) {
                    // Posted recv with no RTS / eager payload from the peer.
                    (false, ReqState::Unmatched) => true,
                    // Rendezvous send still waiting for the peer's CTS.
                    (true, ReqState::Unmatched) => req.mode == Mode::Rendezvous,
                    _ => false,
                };
                if blocked_on_peer {
                    g.add_edge(r, req.peer as usize);
                }
            }
        }
        let verdict = if !self.crashed.is_empty() || !self.lost.is_empty() {
            // Fault starvation explains the stall even when the surviving
            // requests happen to form a ring — this is not an SC001
            // configuration deadlock.
            let mut causes: Vec<String> = self
                .crashed
                .iter()
                .map(|r| format!("rank {r} crashed (fail-stop)"))
                .collect();
            causes.extend(self.lost.iter().cloned());
            format!("injected faults starved the run ({})", causes.join("; "))
        } else {
            match g.find_cycle() {
                Some(c) => format!(
                    "wait-for cycle [SC001]: ranks {} (each waits on the next \
                     for an RTS, CTS, or eager payload; simcheck::analyze flags \
                     this statically)",
                    c.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(" -> ")
                ),
                None => "no wait-for cycle among stuck ranks: an event was lost \
                         (engine bug, not a configuration deadlock)"
                    .to_string(),
            }
        };
        format!("{verdict}\n{}", stuck.join("\n"))
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ExecEnd { rank, epoch } => {
                if self.ranks[rank as usize].epoch == epoch {
                    self.on_exec_end(rank, now);
                }
            }
            Ev::WorkStart { rank } => self.on_work_start(rank, now),
            Ev::WorkEnd { rank, epoch } => {
                if self.ranks[rank as usize].epoch == epoch {
                    self.on_work_end(rank, now);
                }
            }
            Ev::RtsArrive { src, dst, step } => self.on_rts(src, dst, step, now),
            Ev::CtsArrive {
                sender,
                receiver,
                step,
            } => self.on_cts(sender, receiver, step, now),
            Ev::EagerArrive { src, dst, step } => self.on_eager(src, dst, step, now),
            Ev::XferDone {
                sender,
                receiver,
                step,
            } => self.on_xfer_done(sender, receiver, step, now),
        }
    }

    // ---- execution phase ------------------------------------------------

    fn start_exec(&mut self, rank: u32, now: SimTime) {
        let step = self.ranks[rank as usize].step;
        // Rank faults fold into the injected-delay bookkeeping: a stall
        // and a recoverable crash outage both lengthen the execution phase
        // exactly like a one-off injection, so every downstream analysis
        // (wave speed, decay fits, trace records) sees them uniformly.
        let mut injected =
            self.cfg.injections.delay_for(rank, step) + self.cfg.faults.stall_for(rank, step);
        match self.cfg.faults.crash_for(rank, step) {
            Some(CrashOutcome::FailStop) => {
                let st = &mut self.ranks[rank as usize];
                st.phase = Phase::Crashed;
                st.exec_start = now;
                st.epoch += 1; // invalidate anything already scheduled
                self.crashed.push(rank);
                return;
            }
            Some(CrashOutcome::Recovers(outage)) => injected += outage,
            None => {}
        }
        let noise = self.sample_exec_noise(rank);
        let st = &mut self.ranks[rank as usize];
        st.phase = Phase::Computing;
        st.exec_start = now;
        st.injected = injected;
        st.noise_amt = noise;
        st.epoch += 1;
        let factor = self
            .cfg
            .imbalance
            .get(rank as usize)
            .copied()
            .unwrap_or(1.0);
        match self.cfg.exec {
            ExecModel::Compute { duration } => {
                let total = injected + duration.mul_f64(factor) + noise;
                let epoch = st.epoch;
                self.q.schedule_at(now + total, Ev::ExecEnd { rank, epoch });
            }
            ExecModel::MemoryBound { bytes, .. } => {
                st.remaining_bytes = bytes as f64 * factor;
                // The injected delay stalls the core *before* the memory
                // work (matches how the paper draws delay bars), and a
                // stalled core does not contend for bandwidth.
                self.q.schedule_at(now + injected, Ev::WorkStart { rank });
            }
        }
    }

    fn sample_exec_noise(&mut self, rank: u32) -> SimDuration {
        let st = &mut self.ranks[rank as usize];
        self.cfg.noise.sample(&mut st.rng)
    }

    fn on_work_start(&mut self, rank: u32, now: SimTime) {
        let socket = self.cfg.network.socket_of(rank) as usize;
        self.integrate_socket(socket, now);
        self.ranks[rank as usize].last_update = now;
        self.socket_members[socket].insert(rank);
        self.reschedule_socket(socket, now);
    }

    fn on_work_end(&mut self, rank: u32, now: SimTime) {
        let socket = self.cfg.network.socket_of(rank) as usize;
        self.integrate_socket(socket, now);
        self.socket_members[socket].remove(&rank);
        self.reschedule_socket(socket, now);
        // Trailing noise is serial (OS interference, not memory traffic).
        let st = &mut self.ranks[rank as usize];
        st.epoch += 1;
        let epoch = st.epoch;
        let noise = st.noise_amt;
        self.q.schedule_at(now + noise, Ev::ExecEnd { rank, epoch });
    }

    /// Integrate outstanding work for every member of `socket` up to `now`
    /// at the rate that held since the last membership change.
    fn integrate_socket(&mut self, socket: usize, now: SimTime) {
        let n = self.socket_members[socket].len() as u32;
        if n == 0 {
            return;
        }
        let rate = self.cfg.exec.shared_rate_bps(n);
        let members: Vec<u32> = self.socket_members[socket].iter().copied().collect();
        for m in members {
            let st = &mut self.ranks[m as usize];
            let dt = now.saturating_since(st.last_update).as_secs_f64();
            st.remaining_bytes = (st.remaining_bytes - dt * rate).max(0.0);
            st.last_update = now;
        }
    }

    /// After a membership change, recompute each member's completion time.
    fn reschedule_socket(&mut self, socket: usize, now: SimTime) {
        let n = self.socket_members[socket].len() as u32;
        if n == 0 {
            return;
        }
        let rate = self.cfg.exec.shared_rate_bps(n);
        let members: Vec<u32> = self.socket_members[socket].iter().copied().collect();
        for m in members {
            let st = &mut self.ranks[m as usize];
            st.epoch += 1;
            let finish = now + SimDuration::from_secs_f64(st.remaining_bytes / rate);
            self.q.schedule_at(
                finish,
                Ev::WorkEnd {
                    rank: m,
                    epoch: st.epoch,
                },
            );
        }
    }

    // ---- communication phase --------------------------------------------

    fn on_exec_end(&mut self, rank: u32, now: SimTime) {
        let nranks = self.cfg.ranks();
        let step = self.ranks[rank as usize].step;
        self.ranks[rank as usize].exec_end = now;
        self.ranks[rank as usize].phase = Phase::Waiting;

        // Post all receives, then all sends (Isend/Irecv then Waitall).
        let (recv_partners, send_partners) = match &self.cfg.schedule {
            Some(sched) => {
                let g = sched.graph_for(step);
                (
                    g.recv_partners(rank).to_vec(),
                    g.send_partners(rank).to_vec(),
                )
            }
            None => (
                self.cfg.pattern.recv_partners(rank, nranks),
                self.cfg.pattern.send_partners(rank, nranks),
            ),
        };
        let mut reqs = Vec::with_capacity(recv_partners.len() + send_partners.len());

        for src in recv_partners {
            let mut req = Request {
                peer: src,
                is_send: false,
                mode: self.base_mode,
                state: ReqState::Unmatched,
            };
            let key = (src, rank, step);
            match self.base_mode {
                Mode::Eager => {
                    if self.early_eager.remove(&key) {
                        self.consume_eager(src, rank);
                        req.state = ReqState::Complete;
                    } else if self.early_rts.remove(&key) {
                        // The sender fell back to rendezvous (full buffer).
                        req.mode = Mode::Rendezvous;
                        req.state = ReqState::MatchedNoCts;
                    }
                }
                Mode::Rendezvous => {
                    if self.early_rts.remove(&key) {
                        req.state = ReqState::MatchedNoCts;
                    }
                }
            }
            reqs.push(req);
        }

        for dst in send_partners {
            let mode = self.effective_send_mode(rank, dst);
            if self.base_mode == Mode::Eager && mode == Mode::Rendezvous {
                self.stats.eager_fallbacks += 1;
            }
            let state = match mode {
                Mode::Eager => {
                    // A buffered send completes locally even when every
                    // copy is lost in flight: the *receiver* starves.
                    if let Some(extra) = self.fault_delay(rank, dst, "eager payload", step) {
                        self.stats.messages += 1;
                        *self.outstanding_eager.entry((rank, dst)).or_insert(0) +=
                            self.cfg.msg_bytes;
                        let arrive = self.launch_transfer(rank, dst, now + extra);
                        self.q.schedule_at(
                            arrive,
                            Ev::EagerArrive {
                                src: rank,
                                dst,
                                step,
                            },
                        );
                    }
                    ReqState::Complete
                }
                Mode::Rendezvous => {
                    if let Some(extra) = self.fault_delay(rank, dst, "RTS", step) {
                        let depart = now + extra;
                        let dt = self.ctrl_latency_at(rank, dst, depart);
                        self.q.schedule_at(
                            depart + dt,
                            Ev::RtsArrive {
                                src: rank,
                                dst,
                                step,
                            },
                        );
                    }
                    ReqState::Unmatched
                }
            };
            reqs.push(Request {
                peer: dst,
                is_send: true,
                mode,
                state,
            });
        }

        self.ranks[rank as usize].reqs = reqs;
        self.service(rank, now);
    }

    /// Eager unless the message would overflow the destination buffer.
    fn effective_send_mode(&self, src: u32, dst: u32) -> Mode {
        match self.base_mode {
            Mode::Rendezvous => Mode::Rendezvous,
            Mode::Eager => match self.cfg.eager_buffer_bytes {
                None => Mode::Eager,
                Some(cap) => {
                    let used = self
                        .outstanding_eager
                        .get(&(src, dst))
                        .copied()
                        .unwrap_or(0);
                    if used + self.cfg.msg_bytes > cap {
                        Mode::Rendezvous
                    } else {
                        Mode::Eager
                    }
                }
            },
        }
    }

    fn consume_eager(&mut self, src: u32, dst: u32) {
        if let Some(v) = self.outstanding_eager.get_mut(&(src, dst)) {
            *v = v.saturating_sub(self.cfg.msg_bytes);
        }
    }

    /// The link model `a -> b` effective at `now`: the base topology link,
    /// degraded by any active fault windows.
    fn link_at(&self, a: u32, b: u32, now: SimTime) -> PointToPoint {
        let link = self.cfg.network.link(a, b);
        match self.cfg.faults.degradation_at(a, b, now) {
            Some((lf, bf)) => link.degraded(lf, bf),
            None => link,
        }
    }

    /// Control-message latency `a -> b` for a packet departing at `now`.
    fn ctrl_latency_at(&self, a: u32, b: u32, now: SimTime) -> SimDuration {
        self.link_at(a, b, now).ctrl_latency()
    }

    /// Sample the message-fault fate of one transfer departing on the
    /// directed link `src -> dst`. `Some(extra)` means a copy is
    /// eventually delivered, departing `extra` accumulated retransmission
    /// backoff later than the original send; `None` means every copy
    /// failed — the transfer is lost, logged, and never scheduled, so the
    /// requests depending on it starve and the run ends in
    /// [`SimError::Stalled`].
    fn fault_delay(&mut self, src: u32, dst: u32, what: &str, step: u32) -> Option<SimDuration> {
        let Some(m) = self.cfg.faults.messages else {
            return Some(SimDuration::ZERO);
        };
        if !m.is_active() {
            return Some(SimDuration::ZERO);
        }
        let key = (src, dst);
        if !self.fault_rngs.contains_key(&key) {
            let nranks = u64::from(self.cfg.ranks());
            let index = u64::from(src) * nranks + u64::from(dst);
            self.fault_rngs
                .insert(key, self.seeds.stream("fault-link", index));
        }
        let rng = self
            .fault_rngs
            .get_mut(&key)
            .expect("fault stream inserted above");
        let fate = m.sample_delivery(rng);
        let (attempts, dropped, corrupted) = match fate {
            Delivery::Delivered {
                attempts,
                dropped,
                corrupted,
                ..
            }
            | Delivery::Lost {
                attempts,
                dropped,
                corrupted,
            } => (attempts, dropped, corrupted),
        };
        self.stats.retransmissions += u64::from(attempts - 1);
        self.stats.dropped_transfers += u64::from(dropped);
        self.stats.corrupted_transfers += u64::from(corrupted);
        match fate {
            Delivery::Delivered { extra_delay, .. } => Some(extra_delay),
            Delivery::Lost { attempts, .. } => {
                self.stats.lost_transfers += 1;
                self.lost.push(format!(
                    "{what} {src} -> {dst} at step {step} lost after {attempts} attempts"
                ));
                None
            }
        }
    }

    fn transfer_duration(&mut self, a: u32, b: u32, now: SimTime) -> SimDuration {
        let base = self.link_at(a, b, now).transfer_time(self.cfg.msg_bytes);
        match self.cfg.noise_placement {
            NoisePlacement::ExecOnly => base,
            NoisePlacement::ExecAndComm => {
                let extra = {
                    let st = &mut self.ranks[a as usize];
                    self.cfg.noise.sample(&mut st.comm_rng)
                };
                base + extra
            }
        }
    }

    /// Start a payload transfer from `from` to `to` at `now` (or, with
    /// send serialisation on, when `from`'s injection port frees up) and
    /// return its completion time. With serialisation, the port stays
    /// busy for at least the link's LogGOPS injection gap `g`, so
    /// back-to-back small messages cannot exceed the model's injection
    /// rate.
    fn launch_transfer(&mut self, from: u32, to: u32, now: SimTime) -> SimTime {
        let dt = self.transfer_duration(from, to, now);
        if self.cfg.serialize_sends {
            let start = now.max(self.nic_free[from as usize]);
            let done = start + dt;
            let gap = self.link_at(from, to, now).injection_gap();
            self.nic_free[from as usize] = start + dt.max(gap);
            done
        } else {
            now + dt
        }
    }

    /// Drive a waiting rank forward: issue gated CTS messages and detect
    /// Waitall completion.
    fn service(&mut self, rank: u32, now: SimTime) {
        if self.ranks[rank as usize].phase != Phase::Waiting {
            return;
        }
        // Head-of-line CTS gating: grant CTS only when no posted receive is
        // still unmatched (see module docs).
        let all_recvs_matched = self.ranks[rank as usize]
            .reqs
            .iter()
            .filter(|r| !r.is_send)
            .all(|r| r.state != ReqState::Unmatched);
        if all_recvs_matched {
            let step = self.ranks[rank as usize].step;
            let to_cts: Vec<u32> = self.ranks[rank as usize]
                .reqs
                .iter()
                .filter(|r| {
                    !r.is_send && r.mode == Mode::Rendezvous && r.state == ReqState::MatchedNoCts
                })
                .map(|r| r.peer)
                .collect();
            for sender in to_cts {
                for r in &mut self.ranks[rank as usize].reqs {
                    if !r.is_send && r.peer == sender && r.state == ReqState::MatchedNoCts {
                        r.state = ReqState::InFlight;
                    }
                }
                if let Some(extra) = self.fault_delay(rank, sender, "CTS", step) {
                    let depart = now + extra;
                    let dt = self.ctrl_latency_at(rank, sender, depart);
                    self.q.schedule_at(
                        depart + dt,
                        Ev::CtsArrive {
                            sender,
                            receiver: rank,
                            step,
                        },
                    );
                }
            }
        }
        let complete = self.ranks[rank as usize]
            .reqs
            .iter()
            .all(|r| r.state == ReqState::Complete);
        if complete {
            self.finish_step(rank, now);
        }
    }

    fn finish_step(&mut self, rank: u32, now: SimTime) {
        let st = &mut self.ranks[rank as usize];
        self.records.push(PhaseRecord {
            rank,
            step: st.step,
            exec_start: st.exec_start,
            exec_end: st.exec_end,
            comm_end: now,
            injected: st.injected,
            noise: st.noise_amt,
        });
        st.reqs.clear();
        st.step += 1;
        if st.step == self.cfg.steps {
            st.phase = Phase::Done;
            self.done_count += 1;
        } else {
            self.start_exec(rank, now);
        }
    }

    fn on_rts(&mut self, src: u32, dst: u32, step: u32, now: SimTime) {
        let matched = {
            let st = &self.ranks[dst as usize];
            st.phase == Phase::Waiting && st.step == step
        };
        if matched {
            let st = &mut self.ranks[dst as usize];
            let req = st
                .reqs
                .iter_mut()
                .find(|r| !r.is_send && r.peer == src && r.state == ReqState::Unmatched)
                .unwrap_or_else(|| {
                    panic!("rank {dst} step {step}: RTS from {src} has no matching recv")
                });
            // An eager-posted recv can be matched by a rendezvous RTS when
            // the sender's buffer overflowed.
            req.mode = Mode::Rendezvous;
            req.state = ReqState::MatchedNoCts;
            self.service(dst, now);
        } else {
            debug_assert!(
                self.ranks[dst as usize].step <= step,
                "RTS for a step the receiver already completed"
            );
            self.early_rts.insert((src, dst, step));
        }
    }

    fn on_cts(&mut self, sender: u32, receiver: u32, step: u32, now: SimTime) {
        {
            let st = &mut self.ranks[sender as usize];
            debug_assert_eq!(st.step, step, "CTS for a foreign step");
            let req = st
                .reqs
                .iter_mut()
                .find(|r| r.is_send && r.peer == receiver && r.state == ReqState::Unmatched)
                .unwrap_or_else(|| {
                    panic!("rank {sender} step {step}: CTS from {receiver} has no pending send")
                });
            req.state = ReqState::InFlight;
        }
        if let Some(extra) = self.fault_delay(sender, receiver, "payload", step) {
            self.stats.messages += 1;
            let done = self.launch_transfer(sender, receiver, now + extra);
            self.q.schedule_at(
                done,
                Ev::XferDone {
                    sender,
                    receiver,
                    step,
                },
            );
        }
    }

    fn on_eager(&mut self, src: u32, dst: u32, step: u32, now: SimTime) {
        let matched = {
            let st = &self.ranks[dst as usize];
            st.phase == Phase::Waiting && st.step == step
        };
        if matched {
            {
                let st = &mut self.ranks[dst as usize];
                let req = st
                    .reqs
                    .iter_mut()
                    .find(|r| {
                        !r.is_send
                            && r.peer == src
                            && r.mode == Mode::Eager
                            && r.state == ReqState::Unmatched
                    })
                    .unwrap_or_else(|| {
                        panic!("rank {dst} step {step}: eager data from {src} has no matching recv")
                    });
                req.state = ReqState::Complete;
            }
            self.consume_eager(src, dst);
            self.service(dst, now);
        } else {
            debug_assert!(
                self.ranks[dst as usize].step <= step,
                "eager data for a step the receiver already completed"
            );
            self.early_eager.insert((src, dst, step));
        }
    }

    fn on_xfer_done(&mut self, sender: u32, receiver: u32, step: u32, now: SimTime) {
        {
            let st = &mut self.ranks[sender as usize];
            let req = st
                .reqs
                .iter_mut()
                .find(|r| r.is_send && r.peer == receiver && r.state == ReqState::InFlight)
                .expect("transfer completion without in-flight send");
            req.state = ReqState::Complete;
        }
        {
            let st = &mut self.ranks[receiver as usize];
            debug_assert_eq!(st.step, step);
            let req = st
                .reqs
                .iter_mut()
                .find(|r| !r.is_send && r.peer == sender && r.state == ReqState::InFlight)
                .expect("transfer completion without in-flight recv");
            req.state = ReqState::Complete;
        }
        self.service(sender, now);
        self.service(receiver, now);
    }
}

/// Run a simulation described by `cfg` and return its trace.
///
/// # Panics
/// Panics when the config fails validation or the simulation deadlocks,
/// like [`Engine::run`]. Library code should prefer [`try_run`].
pub fn run(cfg: &SimConfig) -> Trace {
    Engine::new(cfg.clone()).run()
}

/// Fallible [`run`]: invalid configs, stalls/starvation, and deadlocks
/// come back as [`SimError`] values instead of panics.
pub fn try_run(cfg: &SimConfig) -> Result<Trace, SimError> {
    try_run_with_limits(cfg, &RunLimits::none())
}

/// [`try_run`] under [`RunLimits`] budgets: the supervised sweep runner
/// uses this to bound runaway scenarios deterministically in sim time
/// before any wall-clock timeout has to fire.
pub fn try_run_with_limits(cfg: &SimConfig, limits: &RunLimits) -> Result<Trace, SimError> {
    Engine::try_new(cfg.clone())?.try_run(limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::presets;
    use workload::{Boundary, CommPattern, Direction};

    fn engine(ranks: u32) -> Engine {
        let net = presets::loggopsim_like(ranks);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            3,
        );
        cfg.protocol = crate::Protocol::Rendezvous;
        Engine::new(cfg)
    }

    /// A real deadlock is unreachable (the engine's nonblocking-waitall
    /// semantics always make progress), so the post-mortem is exercised on
    /// a synthetic stuck state: each rank waits on its upper neighbour's
    /// CTS, forming a ring.
    #[test]
    fn deadlock_report_names_the_rank_cycle() {
        let mut e = engine(4);
        for r in 0..4usize {
            let st = &mut e.ranks[r];
            st.phase = Phase::Waiting;
            st.reqs = vec![Request {
                peer: ((r + 1) % 4) as u32,
                is_send: true,
                mode: Mode::Rendezvous,
                state: ReqState::Unmatched,
            }];
        }
        let report = e.deadlock_report();
        assert!(report.contains("wait-for cycle [SC001]"), "{report}");
        assert!(report.contains("0 -> 1 -> 2 -> 3 -> 0"), "{report}");
        assert!(report.contains("rank 2: step 0 phase Waiting"), "{report}");
    }

    #[test]
    fn deadlock_report_without_a_cycle_points_at_the_engine() {
        let mut e = engine(4);
        // One rank stuck on a completed peer: no cycle — a lost event.
        e.ranks[1].phase = Phase::Waiting;
        e.ranks[1].reqs = vec![Request {
            peer: 2,
            is_send: false,
            mode: Mode::Eager,
            state: ReqState::Unmatched,
        }];
        for r in [0usize, 2, 3] {
            e.ranks[r].phase = Phase::Done;
        }
        let report = e.deadlock_report();
        assert!(report.contains("no wait-for cycle"), "{report}");
        assert!(report.contains("engine bug"), "{report}");
    }

    #[test]
    fn completed_eager_sends_do_not_count_as_blocking() {
        let mut e = engine(4);
        for r in 0..4usize {
            e.ranks[r].phase = Phase::Waiting;
            e.ranks[r].reqs = vec![Request {
                peer: ((r + 1) % 4) as u32,
                is_send: true,
                mode: Mode::Eager,
                state: ReqState::Complete,
            }];
        }
        assert!(e.deadlock_report().contains("no wait-for cycle"));
    }

    // ---- fault injection -------------------------------------------------

    use crate::error::{RunLimits, SimError};
    use crate::faults::{FaultPlan, LinkDegradation, MessageFaults};

    fn fault_cfg(ranks: u32) -> SimConfig {
        let net = presets::loggopsim_like(ranks);
        let mut cfg = SimConfig::baseline(
            net,
            CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
            4,
        );
        cfg.protocol = crate::Protocol::Rendezvous;
        cfg
    }

    #[test]
    fn try_new_reports_invalid_configs_as_values() {
        let mut cfg = fault_cfg(8);
        cfg.steps = 0;
        let Err(SimError::InvalidConfig(diags)) = Engine::try_new(cfg) else {
            panic!("zero steps must be rejected");
        };
        assert!(diags.iter().any(|d| d.code == "SC004"));
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let cfg = fault_cfg(8);
        let baseline = Engine::new(cfg.clone()).run();
        let mut with_plan = cfg;
        with_plan.faults = FaultPlan::none().with_messages(MessageFaults::default());
        let (trace, stats) = Engine::new(with_plan)
            .try_run_with_stats(&RunLimits::none())
            .expect("lossless plan completes");
        assert_eq!(baseline.total_runtime(), trace.total_runtime());
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.lost_transfers, 0);
    }

    #[test]
    fn drops_cause_retransmissions_and_delay_the_run() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_drops(0.3, SimDuration::from_micros(200));
        let clean_finish = {
            let mut c = cfg.clone();
            c.faults = FaultPlan::none();
            Engine::new(c).run().total_runtime()
        };
        let (trace, stats) = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::none())
            .expect("30% drops with 16 retries must still complete");
        assert!(stats.retransmissions > 0, "{stats:?}");
        assert!(stats.dropped_transfers >= stats.retransmissions);
        assert!(
            trace.total_runtime() > clean_finish,
            "retransmission backoff must cost sim time: {} vs {clean_finish}",
            trace.total_runtime()
        );
    }

    #[test]
    fn certain_loss_stalls_with_a_fault_verdict() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_messages(MessageFaults {
            drop_prob: 1.0,
            max_retries: 2,
            ..MessageFaults::default()
        });
        let err = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::none())
            .expect_err("guaranteed loss cannot complete");
        let SimError::Stalled { done, report, .. } = err else {
            panic!("expected a stall, got {err:?}");
        };
        assert_eq!(done, 0);
        assert!(
            report.contains("injected faults starved the run"),
            "{report}"
        );
        assert!(report.contains("lost after 3 attempts"), "{report}");
    }

    #[test]
    fn fail_stop_crash_stalls_and_names_the_rank() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none().with_crash(3, 1, None);
        let err = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::none())
            .expect_err("fail-stop starves the neighbours");
        let SimError::Stalled { report, .. } = err else {
            panic!("expected a stall, got {err:?}");
        };
        assert!(report.contains("rank 3 crashed (fail-stop)"), "{report}");
    }

    #[test]
    fn recovering_crash_acts_like_an_injected_delay() {
        let outage = SimDuration::from_millis(2);
        let mut crash = fault_cfg(8);
        crash.faults = FaultPlan::none().with_crash(3, 1, Some(outage));
        let crash_trace = Engine::new(crash).run();
        let mut inject = fault_cfg(8);
        inject.injections = noise_model::InjectionPlan::single(3, 1, outage);
        let inject_trace = Engine::new(inject).run();
        assert_eq!(crash_trace.total_runtime(), inject_trace.total_runtime());
    }

    #[test]
    fn stall_fault_matches_equal_injection() {
        let d = SimDuration::from_millis(1);
        let mut stall = fault_cfg(8);
        stall.faults = FaultPlan::none().with_stall(2, 0, d);
        let mut inject = fault_cfg(8);
        inject.injections = noise_model::InjectionPlan::single(2, 0, d);
        assert_eq!(
            Engine::new(stall).run().total_runtime(),
            Engine::new(inject).run().total_runtime()
        );
    }

    #[test]
    fn degradation_window_slows_only_transfers_inside_it() {
        let mut cfg = fault_cfg(8);
        let clean_finish = Engine::new(cfg.clone()).run().total_runtime();
        // Degrade every link 10x across the whole run.
        cfg.faults = FaultPlan::none().with_degradation(LinkDegradation {
            from: SimTime::ZERO,
            until: SimTime(u64::MAX),
            link: None,
            latency_factor: 10.0,
            bandwidth_factor: 10.0,
        });
        let slow_finish = Engine::new(cfg.clone()).run().total_runtime();
        assert!(
            slow_finish > clean_finish,
            "{slow_finish} vs {clean_finish}"
        );
        // A window that closes before the first communication phase (3 ms
        // compute) never applies.
        cfg.faults = FaultPlan::none().with_degradation(LinkDegradation {
            from: SimTime::ZERO,
            until: SimTime(1_000),
            link: None,
            latency_factor: 10.0,
            bandwidth_factor: 10.0,
        });
        assert_eq!(Engine::new(cfg).run().total_runtime(), clean_finish);
    }

    #[test]
    fn watchdog_budgets_trip_as_errors() {
        let cfg = fault_cfg(8);
        let err = Engine::new(cfg.clone())
            .try_run_with_stats(&RunLimits::sim_time(SimTime(1_000)))
            .expect_err("a 4-step run lasts far past 1 us");
        assert!(matches!(err, SimError::Watchdog { .. }), "{err:?}");
        let err = Engine::new(cfg)
            .try_run_with_stats(&RunLimits::events(5))
            .expect_err("a 4-step run takes more than 5 events");
        let SimError::Watchdog { events, .. } = err else {
            panic!("expected watchdog, got {err:?}");
        };
        assert!(events > 5);
    }

    #[test]
    fn faulty_runs_are_bit_identical_across_reruns() {
        let mut cfg = fault_cfg(8);
        cfg.faults = FaultPlan::none()
            .with_drops(0.25, SimDuration::from_micros(100))
            .with_stall(1, 2, SimDuration::from_micros(300));
        let a = Engine::new(cfg.clone()).run();
        let b = Engine::new(cfg).run();
        assert_eq!(a, b);
    }
}
