//! Integration tests: the engine must reproduce the paper's qualitative
//! delay-propagation mechanics (Figs. 4, 5, 7) on controlled
//! configurations before any statistical analysis is built on top.

use mpisim::{run, Protocol, SimConfig};
use netmodel::{ClusterNetwork, Hockney, PointToPoint};
use noise_model::InjectionPlan;
use simdes::{SimDuration, SimTime};
use tracefmt::Trace;
use workload::{Boundary, CommPattern, Direction};

const TEXEC: SimDuration = SimDuration::from_millis(3);

fn flat_net(ranks: u32) -> ClusterNetwork {
    // 1 us latency, 3 GB/s: T_comm << T_exec as in the paper's controlled
    // experiments.
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 3e9));
    ClusterNetwork::flat(ranks, link)
}

fn cfg(
    ranks: u32,
    dir: Direction,
    boundary: Boundary,
    protocol: Protocol,
    steps: u32,
) -> SimConfig {
    let mut c = SimConfig::baseline(
        flat_net(ranks),
        CommPattern::next_neighbor(dir, boundary),
        steps,
    );
    c.protocol = protocol;
    c
}

/// Idle time of (rank, step) beyond the nominal communication baseline.
fn idle(trace: &Trace, baseline: SimDuration, rank: u32, step: u32) -> SimDuration {
    trace.record(rank, step).idle_beyond(baseline)
}

/// First step at which `rank` idles longer than `threshold`, if any.
fn first_idle_step(
    trace: &Trace,
    baseline: SimDuration,
    rank: u32,
    threshold: SimDuration,
) -> Option<u32> {
    (0..trace.steps()).find(|&s| idle(trace, baseline, rank, s) > threshold)
}

#[test]
fn noise_free_run_is_perfectly_regular() {
    let c = cfg(
        8,
        Direction::Bidirectional,
        Boundary::Periodic,
        Protocol::Eager,
        10,
    );
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let step = mpisim::nominal_step_duration(&c);
    for r in 0..8 {
        // Everyone finishes at exactly steps x (T_exec + T_comm).
        assert_eq!(t.finish_time(r), SimTime::ZERO + step.times(10));
        for s in 0..10 {
            assert_eq!(
                idle(&t, baseline, r, s),
                SimDuration::ZERO,
                "rank {r} step {s}"
            );
            assert_eq!(t.record(r, s).exec_duration(), TEXEC);
        }
    }
}

#[test]
fn fig4_eager_unidirectional_wave_moves_one_rank_per_step() {
    // Delay of 4.5 execution phases at rank 5, step 0 (paper Fig. 4).
    let delay = TEXEC.mul_f64(4.5);
    let mut c = cfg(
        18,
        Direction::Unidirectional,
        Boundary::Open,
        Protocol::Eager,
        14,
    );
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let th = delay.mul_f64(0.5);

    // Ranks below the injection never idle: eager sends let them run free.
    for r in 0..5 {
        assert_eq!(first_idle_step(&t, baseline, r, th), None, "rank {r} idled");
    }
    // The delayed rank itself never waits (it is the source).
    assert_eq!(first_idle_step(&t, baseline, 5, th), None);
    // Downstream: rank 5+k first idles at step k-1 — one rank per step.
    for k in 1..=8u32 {
        assert_eq!(
            first_idle_step(&t, baseline, 5 + k, th),
            Some(k - 1),
            "wave front wrong at rank {}",
            5 + k
        );
        // The idle period carries (approximately) the full delay.
        let got = idle(&t, baseline, 5 + k, k - 1);
        assert!(
            got > delay.mul_f64(0.95) && got < delay.mul_f64(1.05),
            "idle at rank {} is {got}, expected ~{delay}",
            5 + k
        );
    }
}

#[test]
fn fig5ab_eager_unidirectional_periodic_wave_dies_at_injector() {
    let delay = TEXEC.mul_f64(4.5);
    let steps = 22;
    let mut c = cfg(
        18,
        Direction::Unidirectional,
        Boundary::Periodic,
        Protocol::Eager,
        steps,
    );
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let th = delay.mul_f64(0.25);

    // The wave wraps: rank (5 + k) mod 18 idles at step k-1, for k = 1..17.
    for k in 1..=17u32 {
        let r = (5 + k) % 18;
        assert_eq!(
            first_idle_step(&t, baseline, r, th),
            Some(k - 1),
            "rank {r}"
        );
    }
    // After wrapping around (17 hops) it hits the injector and dies: the
    // injector consumes the buffered eager messages without waiting.
    assert_eq!(
        first_idle_step(&t, baseline, 5, th),
        None,
        "wave should die at injector"
    );
    // And no rank idles twice: sum of big idles equals one traversal.
    for r in 0..18 {
        let big_idles = (0..steps)
            .filter(|&s| idle(&t, baseline, r, s) > th)
            .count();
        assert!(big_idles <= 1, "rank {r} idled {big_idles} times");
    }
}

#[test]
fn fig5cd_eager_bidirectional_propagates_both_directions() {
    let delay = TEXEC.mul_f64(4.5);
    let mut c = cfg(
        18,
        Direction::Bidirectional,
        Boundary::Open,
        Protocol::Eager,
        14,
    );
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let th = delay.mul_f64(0.5);

    // Upward at one rank per step...
    for k in 1..=6u32 {
        assert_eq!(first_idle_step(&t, baseline, 5 + k, th), Some(k - 1));
    }
    // ...and downward at one rank per step.
    for k in 1..=5u32 {
        assert_eq!(first_idle_step(&t, baseline, 5 - k, th), Some(k - 1));
    }
}

#[test]
fn fig5ef_rendezvous_unidirectional_also_propagates_backwards() {
    let delay = TEXEC.mul_f64(4.5);
    let mut c = cfg(
        18,
        Direction::Unidirectional,
        Boundary::Open,
        Protocol::Rendezvous,
        14,
    );
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let th = delay.mul_f64(0.5);

    // Rendezvous couples the sender to the receiver: rank 4 cannot get rid
    // of its message to 5, so the wave also travels downwards, one rank
    // per step in both directions (σ = 1).
    for k in 1..=6u32 {
        assert_eq!(
            first_idle_step(&t, baseline, 5 + k, th),
            Some(k - 1),
            "up {k}"
        );
    }
    for k in 1..=5u32 {
        assert_eq!(
            first_idle_step(&t, baseline, 5 - k, th),
            Some(k - 1),
            "down {k}"
        );
    }
}

#[test]
fn fig5gh_bidirectional_rendezvous_doubles_the_speed() {
    let delay = TEXEC.mul_f64(4.5);
    let mut c = cfg(
        18,
        Direction::Bidirectional,
        Boundary::Open,
        Protocol::Rendezvous,
        14,
    );
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let th = delay.mul_f64(0.4);

    // σ = 2: the front advances TWO ranks per step in both directions.
    // Upwards: ranks 6,7 idle in step 0; 8,9 in step 1; 10,11 in step 2...
    for k in 1..=8u32 {
        let expect = (k - 1) / 2;
        assert_eq!(
            first_idle_step(&t, baseline, 5 + k, th),
            Some(expect),
            "upward rank {}",
            5 + k
        );
    }
    // Downwards: ranks 4,3 in step 0; 2,1 in step 1; 0 in step 2.
    for k in 1..=5u32 {
        let expect = (k - 1) / 2;
        assert_eq!(
            first_idle_step(&t, baseline, 5 - k, th),
            Some(expect),
            "downward rank {}",
            5 - k
        );
    }
}

#[test]
fn fig7_distance_two_scales_speed_and_bidirectional_doubles_it() {
    let delay = TEXEC.mul_f64(4.5);
    // d = 2 unidirectional rendezvous: front moves 2 ranks per step.
    let mut c = SimConfig::baseline(
        flat_net(18),
        CommPattern {
            direction: Direction::Unidirectional,
            distance: 2,
            boundary: Boundary::Open,
        },
        12,
    );
    c.protocol = Protocol::Rendezvous;
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    let th = delay.mul_f64(0.4);
    for k in 1..=8u32 {
        let expect = (k - 1) / 2;
        assert_eq!(
            first_idle_step(&t, baseline, 5 + k, th),
            Some(expect),
            "uni d=2 rank {}",
            5 + k
        );
    }

    // d = 2 bidirectional rendezvous: front moves 4 ranks per step.
    let mut c2 = SimConfig::baseline(
        flat_net(22),
        CommPattern {
            direction: Direction::Bidirectional,
            distance: 2,
            boundary: Boundary::Open,
        },
        12,
    );
    c2.protocol = Protocol::Rendezvous;
    c2.injections = InjectionPlan::single(5, 0, delay);
    let t2 = run(&c2);
    let baseline2 = mpisim::nominal_comm_duration(&c2);
    for k in 1..=12u32 {
        let expect = (k - 1) / 4;
        assert_eq!(
            first_idle_step(&t2, baseline2, 5 + k, th),
            Some(expect),
            "bi d=2 rank {}",
            5 + k
        );
    }
}

#[test]
fn all_eight_fig5_combinations_run_to_completion() {
    // Deadlock-freedom scan over the full Fig. 5 matrix.
    for dir in [Direction::Unidirectional, Direction::Bidirectional] {
        for boundary in [Boundary::Open, Boundary::Periodic] {
            for protocol in [Protocol::Eager, Protocol::Rendezvous] {
                let mut c = cfg(18, dir, boundary, protocol, 20);
                c.injections = InjectionPlan::single(5, 0, TEXEC.mul_f64(4.5));
                let t = run(&c);
                assert_eq!(t.ranks(), 18);
                assert_eq!(t.steps(), 20);
            }
        }
    }
}

#[test]
fn open_boundary_wave_runs_out_at_the_last_rank() {
    let delay = TEXEC.mul_f64(4.5);
    let steps = 16;
    let mut c = cfg(
        18,
        Direction::Unidirectional,
        Boundary::Open,
        Protocol::Eager,
        steps,
    );
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let tc = mpisim::nominal_comm_duration(&c);

    // An open unidirectional eager chain is a pipeline: rank r settles at
    // pure T_exec pace with a fixed offset r·T_comm (rank 0 has no receive
    // partner, and eager data always pre-arrives after the first step).
    // The delay resets the pipeline offset: while rank 5 stalls, all its
    // subsequent receives pre-arrive, so its offset collapses to zero and
    // rebuilds downstream of it. Everything at or above rank 5 is late by
    // exactly the injected delay — the wave never decays on a silent
    // system.
    for r in 0..18u32 {
        let base = SimTime::ZERO + TEXEC.times(u64::from(steps));
        let expect = if r < 5 {
            base + tc.times(u64::from(r))
        } else {
            base + delay + tc.times(u64::from(r - 5))
        };
        assert_eq!(t.finish_time(r), expect, "rank {r}");
    }
}

#[test]
fn finite_eager_buffer_falls_back_to_rendezvous_semantics() {
    // With room for zero outstanding messages the eager protocol
    // effectively becomes rendezvous: the wave must propagate backwards
    // too (cf. fig5ef).
    let delay = TEXEC.mul_f64(4.5);
    let mut c = cfg(
        18,
        Direction::Unidirectional,
        Boundary::Open,
        Protocol::Eager,
        14,
    );
    c.eager_buffer_bytes = Some(0); // no message fits
    c.injections = InjectionPlan::single(5, 0, delay);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c)
        + c.network.ctrl_latency(0, 1)
        + c.network.ctrl_latency(1, 0);
    let th = delay.mul_f64(0.4);
    assert_eq!(
        first_idle_step(&t, baseline, 4, th),
        Some(0),
        "no backward wave"
    );
    assert_eq!(first_idle_step(&t, baseline, 3, th), Some(1));
}

#[test]
fn generous_eager_buffer_never_falls_back() {
    let delay = TEXEC.mul_f64(4.5);
    let mut a = cfg(
        18,
        Direction::Unidirectional,
        Boundary::Open,
        Protocol::Eager,
        14,
    );
    a.injections = InjectionPlan::single(5, 0, delay);
    let mut b = a.clone();
    b.eager_buffer_bytes = Some(1 << 30);
    assert_eq!(run(&a), run(&b));
}

#[test]
fn runs_are_deterministic() {
    let mut c = cfg(
        12,
        Direction::Bidirectional,
        Boundary::Periodic,
        Protocol::Rendezvous,
        10,
    );
    c.injections = InjectionPlan::single(3, 1, TEXEC.times(2));
    c.noise = noise_model::DelayDistribution::Exponential {
        mean: SimDuration::from_micros(300),
    };
    let t1 = run(&c);
    let t2 = run(&c);
    assert_eq!(t1, t2);

    let mut c3 = c.clone();
    c3.seed ^= 1;
    let t3 = run(&c3);
    assert_ne!(t1, t3, "different seeds must differ under noise");
}

#[test]
fn rendezvous_baseline_comm_includes_handshake() {
    let c = cfg(
        8,
        Direction::Unidirectional,
        Boundary::Periodic,
        Protocol::Rendezvous,
        5,
    );
    let t = run(&c);
    let expected = mpisim::nominal_comm_duration(&c);
    for r in 0..8 {
        for s in 0..5 {
            assert_eq!(
                t.record(r, s).comm_duration(),
                expected,
                "rank {r} step {s}"
            );
        }
    }
}

#[test]
fn send_serialization_lengthens_the_comm_phase() {
    // Bidirectional eager ring: each rank has two sends. With a single
    // injection port they serialize, so the baseline comm phase doubles
    // (minus the shared latency term).
    let a = cfg(
        8,
        Direction::Bidirectional,
        Boundary::Periodic,
        Protocol::Eager,
        5,
    );
    let mut b = a.clone();
    b.serialize_sends = true;
    let ta = run(&a);
    let tb = run(&b);
    let ca = ta.record(3, 2).comm_duration();
    let cb = tb.record(3, 2).comm_duration();
    assert!(
        cb > ca,
        "serialized comm {cb} should exceed overlapped {ca}"
    );
    // The engine's measured comm phase must equal the analytic baseline in
    // both modes.
    assert_eq!(ca, mpisim::nominal_comm_duration(&a));
    assert_eq!(cb, mpisim::nominal_comm_duration(&b));
}

#[test]
fn persistent_imbalance_drags_the_whole_ring() {
    // The classic coupled-chain result: one rank that is persistently 10%
    // slower slows EVERY rank to its pace (in a periodic bidirectional
    // ring nobody can run ahead of the laggard for long).
    let mut c = cfg(
        10,
        Direction::Bidirectional,
        Boundary::Periodic,
        Protocol::Eager,
        30,
    );
    c.imbalance = vec![1.0; 10];
    c.imbalance[4] = 1.1;
    let t = run(&c);
    let step = mpisim::nominal_step_duration(&c);
    // Expected pace: T_exec grows by 10% on the laggard; everyone's
    // steady-state step takes ~0.1*T_exec longer.
    let laggard_step = step + TEXEC.mul_f64(0.1);
    let expect_min = SimTime::ZERO + laggard_step.times(30) - step; // transient slack
    for r in 0..10 {
        assert!(
            t.finish_time(r) >= expect_min,
            "rank {r} finished at {} — escaped the laggard's pace",
            t.finish_time(r)
        );
    }
    // And the laggard itself never waits (everyone else waits for it).
    let baseline = mpisim::nominal_comm_duration(&c);
    for s in 5..30 {
        assert!(
            idle(&t, baseline, 4, s) < SimDuration::from_micros(50),
            "laggard idled at step {s}"
        );
    }
}

#[test]
fn imbalance_vector_is_validated() {
    let mut c = cfg(
        4,
        Direction::Unidirectional,
        Boundary::Open,
        Protocol::Eager,
        2,
    );
    c.imbalance = vec![1.0, 2.0]; // wrong length
    let result = std::panic::catch_unwind(|| run(&c));
    assert!(result.is_err());
}

#[test]
fn run_stats_account_for_all_traffic() {
    // Periodic uni ring of 8 ranks x 6 steps: exactly 48 messages.
    let c = cfg(
        8,
        Direction::Unidirectional,
        Boundary::Periodic,
        Protocol::Eager,
        6,
    );
    let (trace, stats) = mpisim::Engine::new(c.clone()).run_with_stats();
    assert_eq!(trace.ranks(), 8);
    assert_eq!(stats.messages, 8 * 6);
    assert_eq!(stats.eager_fallbacks, 0);
    // This run takes the fused fast path: the event count stays the
    // scenario's semantic count (one ExecEnd per rank-step plus one
    // eager arrival per message) even though the calendar never sees
    // the events — and because it never does, no queue depth builds up.
    assert_eq!(stats.events, 8 * 6 + 8 * 6);
    assert_eq!(stats.peak_queue, 0, "fused runs skip the calendar");

    // Rendezvous doubles nothing message-wise but adds control events,
    // and it takes the general event loop.
    let mut r = c.clone();
    r.protocol = Protocol::Rendezvous;
    let (_, rs) = mpisim::Engine::new(r).run_with_stats();
    assert_eq!(rs.messages, 8 * 6);
    assert!(rs.events > stats.events, "handshakes add events");
    assert!(rs.peak_queue >= 8, "at least one pending event per rank");

    // A zero-capacity buffer forces every send to fall back.
    let mut f = c;
    f.eager_buffer_bytes = Some(0);
    let (_, fs) = mpisim::Engine::new(f).run_with_stats();
    assert_eq!(fs.eager_fallbacks, 8 * 6);
}
