//! Engine edge cases: configurations at the boundary of the supported
//! domain must behave sensibly, not just the paper's canonical setups.

use mpisim::{run, Engine, Protocol, SimConfig};
use netmodel::{ClusterNetwork, Hockney, PointToPoint};
use noise_model::{DelayDistribution, Injection, InjectionPlan};
use simdes::{SimDuration, SimTime};
use workload::{Boundary, CommGraph, CommPattern, CommSchedule, Direction};

const MS: SimDuration = SimDuration::from_millis(1);

fn flat(ranks: u32, dir: Direction, boundary: Boundary, steps: u32) -> SimConfig {
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 3e9));
    let mut c = SimConfig::baseline(
        ClusterNetwork::flat(ranks, link),
        CommPattern::next_neighbor(dir, boundary),
        steps,
    );
    c.exec = workload::ExecModel::Compute { duration: MS };
    c
}

#[test]
fn minimal_three_rank_periodic_ring_works() {
    let mut c = flat(3, Direction::Bidirectional, Boundary::Periodic, 8);
    c.protocol = Protocol::Rendezvous;
    c.injections = InjectionPlan::single(1, 0, MS.times(5));
    let t = run(&c);
    assert_eq!(t.ranks(), 3);
    // Both neighbours idle immediately (everyone is adjacent to everyone).
    let baseline = mpisim::nominal_comm_duration(&c);
    assert!(t.record(0, 0).idle_beyond(baseline) > MS.times(4));
    assert!(t.record(2, 0).idle_beyond(baseline) > MS.times(4));
}

#[test]
fn two_rank_open_chain_works() {
    let c = flat(2, Direction::Bidirectional, Boundary::Open, 5);
    let t = run(&c);
    assert_eq!(t.ranks(), 2);
    assert_eq!(
        t.record(0, 4).comm_duration(),
        mpisim::nominal_comm_duration(&c)
    );
}

#[test]
fn single_step_run_works() {
    let mut c = flat(6, Direction::Unidirectional, Boundary::Open, 1);
    c.injections = InjectionPlan::single(2, 0, MS.times(3));
    let t = run(&c);
    assert_eq!(t.steps(), 1);
    assert_eq!(t.record(2, 0).injected, MS.times(3));
}

#[test]
fn repeated_injections_on_one_rank_all_apply() {
    let mut c = flat(10, Direction::Unidirectional, Boundary::Open, 6);
    c.injections = InjectionPlan::from_list(vec![
        Injection {
            rank: 3,
            step: 0,
            duration: MS.times(2),
        },
        Injection {
            rank: 3,
            step: 2,
            duration: MS.times(3),
        },
        Injection {
            rank: 3,
            step: 4,
            duration: MS,
        },
    ]);
    let t = run(&c);
    assert_eq!(t.record(3, 0).injected, MS.times(2));
    assert_eq!(t.record(3, 2).injected, MS.times(3));
    assert_eq!(t.record(3, 4).injected, MS);
    // A rank close enough downstream sees all three waves before the run
    // ends (the wave from step s reaches rank 3+k at step s+k): rank 5
    // collects them at steps 1, 3 and 5 and ends 2+3+1 = 6 ms late.
    // Distant ranks see only the waves that arrive in time — rank 9 never
    // meets the later two.
    let late5 = t.finish_time(5).since(t.finish_time(0));
    assert!(late5 >= MS.times(6), "rank 5 only {late5} late");
    let late9 = t.finish_time(9).since(t.finish_time(0));
    assert!(
        late9 >= MS.times(2) && late9 < MS.times(3),
        "rank 9: {late9}"
    );
}

#[test]
fn injection_in_the_final_step_still_recorded() {
    let mut c = flat(6, Direction::Unidirectional, Boundary::Open, 4);
    c.injections = InjectionPlan::single(5, 3, MS.times(7));
    let t = run(&c);
    // The last rank's final phase carries the delay; nobody else notices
    // (rank 5 has no downstream neighbour on an open chain).
    assert_eq!(t.record(5, 3).injected, MS.times(7));
    for r in 0..5 {
        assert_eq!(t.record(r, 3).injected, SimDuration::ZERO);
    }
}

#[test]
fn delay_longer_than_the_whole_run_is_survived() {
    let mut c = flat(6, Direction::Bidirectional, Boundary::Periodic, 4);
    c.injections = InjectionPlan::single(2, 0, SimDuration::from_secs(1));
    let t = run(&c);
    // Everything ends after the monster delay; no deadlock, no overflow.
    assert!(t.total_runtime() > SimTime::ZERO + SimDuration::from_secs(1));
}

#[test]
fn two_opposing_waves_on_one_open_chain() {
    // Delays at both ends of an open bidirectional chain: the waves run
    // towards each other and annihilate in the middle.
    let mut c = flat(17, Direction::Bidirectional, Boundary::Open, 16);
    c.injections = InjectionPlan::from_list(vec![
        Injection {
            rank: 0,
            step: 0,
            duration: MS.times(10),
        },
        Injection {
            rank: 16,
            step: 0,
            duration: MS.times(10),
        },
    ]);
    let t = run(&c);
    let baseline = mpisim::nominal_comm_duration(&c);
    // The middle rank is hit exactly once: both fronts reach it in the
    // same step and merge.
    let idles = (0..16)
        .filter(|&s| t.record(8, s).idle_beyond(baseline) > MS.times(5))
        .count();
    assert_eq!(idles, 1, "middle rank should idle exactly once");
    // Total excess equals one delay, not two (nonlinear cancellation).
    let quiet = {
        let mut q = c.clone();
        q.injections = InjectionPlan::none();
        run(&q)
    };
    let excess = t.total_runtime().since(quiet.total_runtime());
    assert!(
        excess <= MS.times(10),
        "excess {excess} exceeds a single delay — waves superposed?"
    );
}

#[test]
fn schedule_with_silent_rounds_runs() {
    // Alternate a communication round with a pure-compute round.
    let ring = CommGraph::from_sends((0..6).map(|r| vec![(r + 1) % 6]).collect());
    let silent = CommGraph::silent(6);
    let mut c = flat(6, Direction::Unidirectional, Boundary::Periodic, 8);
    c.schedule = Some(CommSchedule::cyclic(vec![ring, silent]));
    let t = run(&c);
    // Silent rounds have zero-length comm phases.
    for r in 0..6 {
        assert_eq!(t.record(r, 1).comm_duration(), SimDuration::ZERO);
        assert!(t.record(r, 0).comm_duration() > SimDuration::ZERO);
    }
}

#[test]
fn schedule_delay_respects_round_structure() {
    // Delay during a silent round does not propagate until the next
    // communicating round.
    let ring = CommGraph::from_sends((0..6).map(|r| vec![(r + 1) % 6]).collect());
    let silent = CommGraph::silent(6);
    let mut c = flat(6, Direction::Unidirectional, Boundary::Periodic, 8);
    c.schedule = Some(CommSchedule::cyclic(vec![silent, ring]));
    c.injections = InjectionPlan::single(2, 0, MS.times(5));
    let t = run(&c);
    let baseline = SimDuration::from_micros(100);
    // Step 0 is silent: nobody waits on rank 2 yet.
    for r in 0..6 {
        assert!(t.record(r, 0).comm_duration() <= baseline);
    }
    // Step 1 communicates: rank 3 eats the wave.
    assert!(t.record(3, 1).idle_beyond(baseline) > MS.times(4));
}

#[test]
fn asymmetric_custom_graph_star_topology() {
    // A star: every leaf sends to hub 0; the hub sends to nobody. A leaf
    // delay stalls only the hub.
    let mut sends = vec![Vec::new(); 6];
    for leaf in 1..6u32 {
        sends[leaf as usize] = vec![0];
    }
    let star = CommGraph::from_sends(sends);
    let mut c = flat(6, Direction::Unidirectional, Boundary::Periodic, 6);
    c.schedule = Some(CommSchedule::uniform(star));
    c.injections = InjectionPlan::single(3, 0, MS.times(6));
    let t = run(&c);
    let baseline = SimDuration::from_micros(100);
    assert!(
        t.record(0, 0).idle_beyond(baseline) > MS.times(5),
        "hub must wait"
    );
    for leaf in [1u32, 2, 4, 5] {
        assert!(
            t.record(leaf, 0).idle_beyond(baseline) < MS,
            "leaf {leaf} has no dependency on the delayed leaf"
        );
    }
}

#[test]
fn heavy_noise_on_rendezvous_ring_terminates() {
    // A deadlock stress: strong noise, rendezvous handshakes, periodic
    // ring, serialized sends — 80 ranks, 30 steps.
    let mut c = flat(80, Direction::Bidirectional, Boundary::Periodic, 30);
    c.protocol = Protocol::Rendezvous;
    c.serialize_sends = true;
    c.noise = DelayDistribution::Exponential {
        mean: SimDuration::from_micros(500),
    };
    c.injections = InjectionPlan::single(11, 2, MS.times(40));
    let (t, stats) = Engine::new(c).run_with_stats();
    assert_eq!(t.ranks(), 80);
    assert_eq!(stats.messages, 2 * 80 * 30);
}

#[test]
fn empirical_noise_drives_the_engine() {
    let mut c = flat(8, Direction::Unidirectional, Boundary::Periodic, 10);
    c.noise = DelayDistribution::empirical(vec![
        SimDuration::from_micros(5),
        SimDuration::from_micros(50),
        SimDuration::from_micros(500),
    ]);
    let t = run(&c);
    // Every phase's recorded noise is one of the three values.
    for rec in t.iter() {
        let ns = rec.noise.nanos();
        assert!(
            [5_000, 50_000, 500_000].contains(&ns),
            "unexpected noise {ns}"
        );
    }
    let mut c2 = flat(8, Direction::Unidirectional, Boundary::Periodic, 10);
    c2.noise = DelayDistribution::empirical(vec![SimDuration::from_micros(5)]);
    assert!(run_twice_equal(&c2));
}

fn run_twice_equal(c: &SimConfig) -> bool {
    run(c) == run(c)
}

#[test]
fn mixed_injection_and_imbalance_compose() {
    let mut c = flat(6, Direction::Bidirectional, Boundary::Periodic, 12);
    c.imbalance = vec![1.0, 1.0, 1.05, 1.0, 1.0, 1.0];
    c.injections = InjectionPlan::single(4, 1, MS.times(3));
    let t = run(&c);
    // The imbalanced rank's work phase is 5% longer every step...
    assert_eq!(t.record(2, 0).exec_duration(), MS.mul_f64(1.05));
    // ...and the injected rank pays its delay on top of waiting.
    assert_eq!(t.record(4, 1).injected, MS.times(3));
}

#[test]
fn loggops_injection_gap_paces_serialized_sends() {
    // Tiny payloads on a LogGOPS link with a large injection gap g: with
    // send serialisation, a rank's second send cannot leave before g has
    // elapsed, so the bidirectional comm phase is dominated by g.
    use netmodel::LogGops;
    let gap = SimDuration::from_millis(2);
    let link = PointToPoint::LogGops(LogGops {
        l: SimDuration::from_micros(1),
        o: SimDuration::from_nanos(100),
        g: gap,
        big_g_per_byte: 1e-12, // payload time negligible
        big_o_per_byte: 0.0,
    });
    let mut c = SimConfig::baseline(
        ClusterNetwork::flat(6, link),
        CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
        3,
    );
    c.protocol = Protocol::Eager;
    c.exec = workload::ExecModel::Compute { duration: MS };
    c.msg_bytes = 64;

    let fast = run(&c); // overlapping sends: comm ~ one transfer
    let mut paced_cfg = c.clone();
    paced_cfg.serialize_sends = true;
    let paced = run(&paced_cfg);

    let comm_fast = fast.record(2, 0).comm_duration();
    let comm_paced = paced.record(2, 0).comm_duration();
    assert!(
        comm_fast < SimDuration::from_micros(50),
        "fast comm {comm_fast}"
    );
    // Second send leaves g after the first: the receive depending on it
    // completes ~g later.
    assert!(
        comm_paced >= gap,
        "paced comm {comm_paced} should be dominated by the injection gap"
    );
}
