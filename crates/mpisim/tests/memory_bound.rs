//! Integration tests for the memory-bound (socket-bandwidth-sharing)
//! execution model — the substrate for the paper's Fig. 1/2 motivating
//! experiments, where desynchronisation lets ranks run faster because
//! fewer of them contend for the socket's memory interface at once.

use mpisim::{run, Protocol, SimConfig};
use netmodel::{ClusterNetwork, DomainModels, Hockney, Machine, PointToPoint};
use noise_model::{DelayDistribution, InjectionPlan};
use simdes::SimDuration;
use workload::{Boundary, CommPattern, Direction, ExecModel};

/// Two cores on one socket; socket bandwidth equals single-core bandwidth,
/// so two concurrent ranks each get half.
fn two_core_socket() -> ClusterNetwork {
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 10e9));
    ClusterNetwork::new(Machine::new(2, 1, 1), 2, 2, DomainModels::uniform(link))
}

fn mem_cfg(net: ClusterNetwork, steps: u32) -> SimConfig {
    let mut c = SimConfig::baseline(
        net,
        CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Open),
        steps,
    );
    c.protocol = Protocol::Eager;
    c.exec = ExecModel::MemoryBound {
        bytes: 3_000_000,   // 3 MB per phase
        core_bw_bps: 1e9,   // 3 ms solo
        socket_bw_bps: 1e9, // 6 ms when both ranks contend
    };
    c
}

#[test]
fn synchronized_ranks_share_bandwidth_equally() {
    let c = mem_cfg(two_core_socket(), 4);
    let t = run(&c);
    // Both ranks active for the whole phase: 3 MB at 0.5 GB/s = 6 ms.
    for r in 0..2 {
        for s in 0..4 {
            let d = t.record(r, s).exec_duration();
            let ms = d.as_millis_f64();
            assert!((ms - 6.0).abs() < 0.001, "rank {r} step {s}: {ms} ms");
        }
    }
}

#[test]
fn a_delayed_neighbor_frees_bandwidth() {
    let mut c = mem_cfg(two_core_socket(), 3);
    // Rank 1 stalls for 20 ms before touching memory in step 0.
    c.injections = InjectionPlan::single(1, 0, SimDuration::from_millis(20));
    let t = run(&c);

    // Rank 0 runs step 0 solo: 3 MB at 1 GB/s = 3 ms, half the contended
    // time — the automatic overlap mechanism of Fig. 1.
    let solo = t.record(0, 0).exec_duration().as_millis_f64();
    assert!((solo - 3.0).abs() < 0.001, "solo exec {solo} ms");

    // Rank 1's phase = 20 ms stall + 3 ms solo work.
    let delayed = t.record(1, 0).exec_duration().as_millis_f64();
    assert!((delayed - 23.0).abs() < 0.001, "delayed exec {delayed} ms");

    // Once resynchronised (step 1+) they contend again: ~6 ms each.
    for s in 1..3 {
        for r in 0..2 {
            let ms = t.record(r, s).exec_duration().as_millis_f64();
            assert!((ms - 6.0).abs() < 0.01, "rank {r} step {s}: {ms} ms");
        }
    }
}

#[test]
fn partial_overlap_integrates_piecewise_rates() {
    let mut c = mem_cfg(two_core_socket(), 1);
    // Rank 1 starts 2 ms late: rank 0 works solo for 2 ms (2 MB done),
    // then both share for the remaining 1 MB at 0.5 GB/s (2 ms more).
    c.injections = InjectionPlan::single(1, 0, SimDuration::from_millis(2));
    let t = run(&c);
    let r0 = t.record(0, 0).exec_duration().as_millis_f64();
    assert!((r0 - 4.0).abs() < 0.001, "rank 0 exec {r0} ms");
    // Rank 1: 2 ms stall, then 2 ms shared (1 MB), then solo for its last
    // 2 MB at 1 GB/s (2 ms): total 6 ms.
    let r1 = t.record(1, 0).exec_duration().as_millis_f64();
    assert!((r1 - 6.0).abs() < 0.001, "rank 1 exec {r1} ms");
}

#[test]
fn unsaturated_socket_runs_at_core_speed() {
    // Socket bandwidth far above the per-core cap: contention never bites.
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 10e9));
    let net = ClusterNetwork::new(Machine::new(4, 1, 1), 4, 4, DomainModels::uniform(link));
    let mut c = SimConfig::baseline(
        net,
        CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Open),
        2,
    );
    c.protocol = Protocol::Eager;
    c.exec = ExecModel::MemoryBound {
        bytes: 1_000_000,
        core_bw_bps: 1e9,
        socket_bw_bps: 100e9,
    };
    let t = run(&c);
    for r in 0..4 {
        let ms = t.record(r, 0).exec_duration().as_millis_f64();
        assert!((ms - 1.0).abs() < 0.001, "rank {r}: {ms} ms");
    }
}

#[test]
fn separate_sockets_do_not_contend() {
    // Two sockets with one core each: no sharing despite both ranks active.
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 10e9));
    let net = ClusterNetwork::new(Machine::new(1, 2, 1), 2, 2, DomainModels::uniform(link));
    let mut c = SimConfig::baseline(
        net,
        CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Open),
        2,
    );
    c.protocol = Protocol::Eager;
    c.exec = ExecModel::MemoryBound {
        bytes: 3_000_000,
        core_bw_bps: 1e9,
        socket_bw_bps: 1e9,
    };
    let t = run(&c);
    for r in 0..2 {
        let ms = t.record(r, 0).exec_duration().as_millis_f64();
        assert!((ms - 3.0).abs() < 0.001, "rank {r}: {ms} ms");
    }
}

#[test]
fn memory_bound_runs_are_deterministic_under_noise() {
    let mut c = mem_cfg(two_core_socket(), 6);
    c.noise = DelayDistribution::Exponential {
        mean: SimDuration::from_micros(200),
    };
    let a = run(&c);
    let b = run(&c);
    assert_eq!(a, b);
}

#[test]
fn noise_desynchronises_and_speeds_up_memory_bound_execution() {
    // The Fig. 1/2 effect in miniature: with noise, mean exec time drops
    // below the fully-contended baseline because phases slide apart.
    // Ten ranks on one ten-core socket, strongly saturated.
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 10e9));
    let net = ClusterNetwork::new(Machine::new(10, 1, 1), 10, 10, DomainModels::uniform(link));
    let mut c = SimConfig::baseline(
        net,
        CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic),
        40,
    );
    c.protocol = Protocol::Eager;
    c.exec = ExecModel::MemoryBound {
        bytes: 4_000_000,
        core_bw_bps: 6.5e9,
        socket_bw_bps: 40e9, // 10 ranks => 4 GB/s each => 1 ms contended
    };
    c.noise = DelayDistribution::Exponential {
        mean: SimDuration::from_micros(100),
    };
    let t = run(&c);

    let contended_ms = 1.0;
    let mut sum = 0.0;
    let mut n = 0u32;
    // Skip the first steps (synchronised start) and measure steady state.
    for r in 0..10 {
        for s in 20..40 {
            sum += t.record(r, s).work_duration().as_millis_f64();
            n += 1;
        }
    }
    let mean = sum / f64::from(n);
    assert!(
        mean < contended_ms * 1.02,
        "mean work time {mean} ms should not exceed the contended baseline"
    );
}
