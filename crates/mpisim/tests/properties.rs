//! Property-based tests of the engine: for *any* small configuration in
//! the supported grid, the simulation must terminate without deadlock and
//! produce a causally consistent, deterministic trace.
//!
//! Driven by the in-tree `simdes::check` harness.

use mpisim::{run, Protocol, SimConfig};
use netmodel::{ClusterNetwork, Hockney, PointToPoint};
use noise_model::{DelayDistribution, InjectionPlan};
use simdes::check::{for_all, Gen, DEFAULT_CASES};
use simdes::SimDuration;
use workload::{Boundary, CommPattern, Direction};

#[derive(Debug, Clone)]
struct Params {
    ranks: u32,
    steps: u32,
    direction: Direction,
    boundary: Boundary,
    distance: u32,
    protocol: Protocol,
    inject: Option<(u32, u32, u64)>,
    noise_mean_us: u64,
    serialize: bool,
    eager_cap: Option<u64>,
    seed: u64,
}

/// Draw a valid configuration from the supported grid: the chain is
/// always big enough for the distance/boundary, and any injection lands
/// inside the run.
fn params(g: &mut Gen) -> Params {
    let distance = g.u32(1, 2);
    let boundary = g.pick(&[Boundary::Open, Boundary::Periodic]);
    let min_ranks = match boundary {
        Boundary::Periodic => 2 * distance + 1,
        Boundary::Open => distance + 1,
    };
    let ranks = g.u32(min_ranks.max(3), 11);
    let steps = g.u32(1, 5);
    let inject = g.option(|g| {
        (
            g.u32(0, ranks - 1),
            g.u32(0, steps - 1),
            g.u64(1, 19_999_999),
        )
    });
    Params {
        ranks,
        steps,
        direction: g.pick(&[Direction::Unidirectional, Direction::Bidirectional]),
        boundary,
        distance,
        protocol: g.pick(&[
            Protocol::Eager,
            Protocol::Rendezvous,
            Protocol::Auto {
                eager_limit: 10_000,
            },
        ]),
        inject,
        noise_mean_us: g.u64(0, 499),
        serialize: g.bool(),
        eager_cap: g.option(|g| g.u64(0, 99_999)),
        seed: g.any_u64(),
    }
}

fn build(p: &Params) -> SimConfig {
    let link = PointToPoint::Hockney(Hockney::new(SimDuration::from_micros(1), 3e9));
    let net = ClusterNetwork::flat(p.ranks, link);
    let mut cfg = SimConfig::baseline(
        net,
        CommPattern {
            direction: p.direction,
            distance: p.distance,
            boundary: p.boundary,
        },
        p.steps,
    );
    cfg.protocol = p.protocol;
    cfg.exec = workload::ExecModel::Compute {
        duration: SimDuration::from_millis(1),
    };
    if let Some((r, s, ns)) = p.inject {
        cfg.injections = InjectionPlan::single(r, s, SimDuration(ns));
    }
    if p.noise_mean_us > 0 {
        cfg.noise = DelayDistribution::Exponential {
            mean: SimDuration::from_micros(p.noise_mean_us),
        };
    }
    cfg.serialize_sends = p.serialize;
    cfg.eager_buffer_bytes = p.eager_cap;
    cfg.seed = p.seed;
    cfg
}

/// Every configuration in the grid terminates and yields a causally
/// consistent trace: phases are ordered, steps are contiguous, and
/// the injected delay really lengthened its phase.
#[test]
fn any_config_terminates_with_consistent_trace() {
    for_all(
        "any_config_terminates_with_consistent_trace",
        DEFAULT_CASES,
        |g| {
            let p = params(g);
            let cfg = build(&p);
            let t = run(&cfg);
            assert_eq!(t.ranks(), p.ranks);
            assert_eq!(t.steps(), p.steps);
            for r in 0..p.ranks {
                let recs = t.rank_records(r);
                for (i, rec) in recs.iter().enumerate() {
                    assert!(rec.exec_start <= rec.exec_end);
                    assert!(rec.exec_end <= rec.comm_end);
                    assert_eq!(rec.step, i as u32);
                    assert_eq!(rec.rank, r);
                    if i > 0 {
                        // Steps are back to back: next exec starts exactly when
                        // the previous Waitall returned.
                        assert_eq!(rec.exec_start, recs[i - 1].comm_end);
                    }
                    // The phase is at least as long as work + delay + noise.
                    let floor = SimDuration::from_millis(1) + rec.injected + rec.noise;
                    assert_eq!(rec.exec_duration(), floor);
                }
            }
            if let Some((r, s, ns)) = p.inject {
                assert_eq!(t.record(r, s).injected.nanos(), ns);
            }
        },
    );
}

/// Bit-exact determinism for any configuration.
#[test]
fn any_config_is_deterministic() {
    for_all("any_config_is_deterministic", DEFAULT_CASES, |g| {
        let p = params(g);
        let cfg = build(&p);
        assert_eq!(run(&cfg), run(&cfg));
    });
}

/// Without noise or injections every rank runs the exact nominal
/// schedule, whatever the pattern/protocol combination.
#[test]
fn silent_runs_match_nominal_schedule() {
    for_all("silent_runs_match_nominal_schedule", DEFAULT_CASES, |g| {
        let p = params(g);
        let mut cfg = build(&p);
        cfg.injections = InjectionPlan::none();
        cfg.noise = DelayDistribution::None;
        // A finite eager buffer can force rendezvous fallback, which the
        // nominal baseline deliberately does not model; lift it here.
        cfg.eager_buffer_bytes = None;
        let t = run(&cfg);
        let comm = mpisim::nominal_comm_duration(&cfg);
        let step = mpisim::nominal_step_duration(&cfg);
        // The critical path of a silent run never exceeds the nominal
        // schedule (individual open-boundary ranks may wait longer in one
        // step due to edge-induced skew, but only by time they saved
        // earlier).
        let bound = simdes::SimTime::ZERO + step.times(u64::from(p.steps));
        assert!(
            t.total_runtime() <= bound,
            "total {} exceeds nominal schedule {}",
            t.total_runtime(),
            bound
        );
        if p.boundary == Boundary::Periodic {
            // Symmetric chains hit the baseline exactly, every step.
            for r in 0..p.ranks {
                for s in 0..p.steps {
                    assert_eq!(t.record(r, s).comm_duration(), comm);
                }
            }
        }
    });
}

/// The total runtime never decreases when a delay is injected, and
/// never increases by more than the injected amount on a silent
/// system.
#[test]
fn injection_cost_is_bounded() {
    for_all("injection_cost_is_bounded", DEFAULT_CASES, |g| {
        let p = params(g);
        let mut base = build(&p);
        base.noise = DelayDistribution::None;
        base.injections = InjectionPlan::none();
        // With a finite eager buffer the protocol mode becomes history
        // dependent: a delay can flip later sends from eager to
        // rendezvous, costing extra handshakes beyond the delay itself.
        // The tight bound below holds on the unbounded-buffer domain.
        base.eager_buffer_bytes = None;
        let quiet = run(&base);

        let mut delayed = base.clone();
        let d = SimDuration::from_millis(7);
        delayed.injections = InjectionPlan::single(p.ranks / 2, 0, d);
        let t = run(&delayed);

        let quiet_end = quiet.total_runtime();
        let loud_end = t.total_runtime();
        assert!(loud_end >= quiet_end);
        assert!(
            loud_end.since(quiet_end) <= d,
            "excess beyond the injected delay"
        );
    });
}

/// The event-driven engine and the closed-form max-plus recurrence
/// (`mpisim::reference`) are independent implementations of the same
/// semantics; on their shared domain they must agree bit-exactly for
/// any configuration.
#[test]
fn engine_matches_maxplus_reference() {
    for_all("engine_matches_maxplus_reference", DEFAULT_CASES, |g| {
        let p = params(g);
        let pure_rdv = g.bool();
        let mut cfg = build(&p);
        // Restrict to the recurrence's domain.
        cfg.eager_buffer_bytes = None;
        cfg.serialize_sends = false;
        cfg.protocol = if pure_rdv {
            Protocol::Rendezvous
        } else {
            Protocol::Eager
        };
        let engine = run(&cfg);
        let reference = mpisim::reference_trace(&cfg);
        assert_eq!(engine, reference);
    });
}
