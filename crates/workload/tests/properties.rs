//! Property-based tests for the communication pattern algebra: for every
//! valid (direction, distance, boundary, size) combination, partner lists
//! must be mutually consistent, self-free, and correctly bounded.
//!
//! Driven by the in-tree `simdes::check` harness.

use simdes::check::{for_all, Gen, DEFAULT_CASES};
use workload::{Boundary, CommPattern, Direction, ExecModel};

/// Draw a valid (pattern, rank count) pair: the chain is always big
/// enough for the distance and boundary.
fn pattern(g: &mut Gen) -> (CommPattern, u32) {
    let direction = g.pick(&[Direction::Unidirectional, Direction::Bidirectional]);
    let distance = g.u32(1, 3);
    let boundary = g.pick(&[Boundary::Open, Boundary::Periodic]);
    let min_n = match boundary {
        Boundary::Periodic => 2 * distance + 1,
        Boundary::Open => distance + 1,
    };
    let n = g.u32(min_n.max(3), 40);
    (
        CommPattern {
            direction,
            distance,
            boundary,
        },
        n,
    )
}

/// If a sends to b then b receives from a, and vice versa.
#[test]
fn send_recv_duality() {
    for_all("send_recv_duality", DEFAULT_CASES, |g| {
        let (p, n) = pattern(g);
        for a in 0..n {
            for b in p.send_partners(a, n) {
                assert!(p.recv_partners(b, n).contains(&a), "{p:?} {a}->{b}");
            }
            for b in p.recv_partners(a, n) {
                assert!(p.send_partners(b, n).contains(&a), "{p:?} {a}<-{b}");
            }
        }
    });
}

/// Nobody communicates with itself, and partner counts are bounded by
/// the pattern's fan-out.
#[test]
fn no_self_and_bounded_fanout() {
    for_all("no_self_and_bounded_fanout", DEFAULT_CASES, |g| {
        let (p, n) = pattern(g);
        let max_fanout = match p.direction {
            Direction::Unidirectional => p.distance as usize,
            Direction::Bidirectional => 2 * p.distance as usize,
        };
        for r in 0..n {
            let s = p.send_partners(r, n);
            let rcv = p.recv_partners(r, n);
            assert!(!s.contains(&r));
            assert!(!rcv.contains(&r));
            assert!(s.len() <= max_fanout);
            assert!(rcv.len() <= max_fanout);
            // Periodic chains always have full fan-out.
            if p.boundary == Boundary::Periodic {
                assert_eq!(s.len(), max_fanout);
                assert_eq!(rcv.len(), max_fanout);
            }
            // No duplicate partners.
            let mut sd = s.clone();
            sd.sort_unstable();
            sd.dedup();
            assert_eq!(sd.len(), s.len(), "duplicate send partner");
        }
    });
}

/// All partners are within distance d (with periodic wrap-around
/// distance measured on the ring).
#[test]
fn partners_within_distance() {
    for_all("partners_within_distance", DEFAULT_CASES, |g| {
        let (p, n) = pattern(g);
        for r in 0..n {
            for q in p
                .send_partners(r, n)
                .into_iter()
                .chain(p.recv_partners(r, n))
            {
                let diff = (i64::from(r) - i64::from(q)).unsigned_abs() as u32;
                let dist = match p.boundary {
                    Boundary::Open => diff,
                    Boundary::Periodic => diff.min(n - diff),
                };
                assert!(dist >= 1 && dist <= p.distance, "{p:?}: {r} ~ {q}");
            }
        }
    });
}

/// Total message count is conserved: sum of sends equals sum of recvs.
#[test]
fn message_conservation() {
    for_all("message_conservation", DEFAULT_CASES, |g| {
        let (p, n) = pattern(g);
        let sends: usize = (0..n).map(|r| p.send_partners(r, n).len()).sum();
        let recvs: usize = (0..n).map(|r| p.recv_partners(r, n).len()).sum();
        assert_eq!(sends, recvs);
        assert_eq!(sends, p.total_messages(n));
    });
}

/// Memory-bound execution rate is monotone non-increasing in the
/// number of active ranks and capped by the core bandwidth.
#[test]
fn shared_rate_monotone() {
    for_all("shared_rate_monotone", DEFAULT_CASES, |g| {
        let core = g.f64(1e8, 1e11);
        let socket = g.f64(1e8, 1e12);
        let k = g.u32(1, 63);
        let m = ExecModel::MemoryBound {
            bytes: 1 << 20,
            core_bw_bps: core,
            socket_bw_bps: socket,
        };
        let r1 = m.shared_rate_bps(k);
        let r2 = m.shared_rate_bps(k + 1);
        assert!(r2 <= r1 + 1e-9);
        assert!(r1 <= core + 1e-9);
        assert!(r1 * f64::from(k) <= socket.max(core * f64::from(k)) + 1.0);
    });
}

/// Static duration scales inversely with the shared rate.
#[test]
fn static_duration_consistent() {
    for_all("static_duration_consistent", DEFAULT_CASES, |g| {
        let bytes = g.u64(1, (1 << 30) - 1);
        let core = g.f64(1e8, 1e11);
        let k = g.u32(1, 31);
        let m = ExecModel::MemoryBound {
            bytes,
            core_bw_bps: core,
            socket_bw_bps: core * 4.0,
        };
        let d = m.static_duration(k).as_secs_f64();
        let expect = bytes as f64 / m.shared_rate_bps(k);
        assert!((d - expect).abs() <= 1e-9 + expect * 1e-6);
    });
}
