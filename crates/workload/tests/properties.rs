//! Property-based tests for the communication pattern algebra: for every
//! valid (direction, distance, boundary, size) combination, partner lists
//! must be mutually consistent, self-free, and correctly bounded.

use proptest::prelude::*;
use workload::{Boundary, CommPattern, Direction, ExecModel};

fn patterns() -> impl Strategy<Value = (CommPattern, u32)> {
    (
        prop_oneof![Just(Direction::Unidirectional), Just(Direction::Bidirectional)],
        1u32..4,
        prop_oneof![Just(Boundary::Open), Just(Boundary::Periodic)],
        3u32..40,
    )
        .prop_filter_map("ring too small", |(direction, distance, boundary, n)| {
            let ok = match boundary {
                Boundary::Periodic => n > 2 * distance,
                Boundary::Open => n > distance,
            };
            ok.then_some((CommPattern { direction, distance, boundary }, n))
        })
}

proptest! {
    /// If a sends to b then b receives from a, and vice versa.
    #[test]
    fn send_recv_duality((p, n) in patterns()) {
        for a in 0..n {
            for b in p.send_partners(a, n) {
                prop_assert!(p.recv_partners(b, n).contains(&a), "{p:?} {a}->{b}");
            }
            for b in p.recv_partners(a, n) {
                prop_assert!(p.send_partners(b, n).contains(&a), "{p:?} {a}<-{b}");
            }
        }
    }

    /// Nobody communicates with itself, and partner counts are bounded by
    /// the pattern's fan-out.
    #[test]
    fn no_self_and_bounded_fanout((p, n) in patterns()) {
        let max_fanout = match p.direction {
            Direction::Unidirectional => p.distance as usize,
            Direction::Bidirectional => 2 * p.distance as usize,
        };
        for r in 0..n {
            let s = p.send_partners(r, n);
            let rcv = p.recv_partners(r, n);
            prop_assert!(!s.contains(&r));
            prop_assert!(!rcv.contains(&r));
            prop_assert!(s.len() <= max_fanout);
            prop_assert!(rcv.len() <= max_fanout);
            // Periodic chains always have full fan-out.
            if p.boundary == Boundary::Periodic {
                prop_assert_eq!(s.len(), max_fanout);
                prop_assert_eq!(rcv.len(), max_fanout);
            }
            // No duplicate partners.
            let mut sd = s.clone();
            sd.sort_unstable();
            sd.dedup();
            prop_assert_eq!(sd.len(), s.len(), "duplicate send partner");
        }
    }

    /// All partners are within distance d (with periodic wrap-around
    /// distance measured on the ring).
    #[test]
    fn partners_within_distance((p, n) in patterns()) {
        for r in 0..n {
            for q in p.send_partners(r, n).into_iter().chain(p.recv_partners(r, n)) {
                let diff = (i64::from(r) - i64::from(q)).unsigned_abs() as u32;
                let dist = match p.boundary {
                    Boundary::Open => diff,
                    Boundary::Periodic => diff.min(n - diff),
                };
                prop_assert!(dist >= 1 && dist <= p.distance, "{p:?}: {r} ~ {q}");
            }
        }
    }

    /// Total message count is conserved: sum of sends equals sum of recvs.
    #[test]
    fn message_conservation((p, n) in patterns()) {
        let sends: usize = (0..n).map(|r| p.send_partners(r, n).len()).sum();
        let recvs: usize = (0..n).map(|r| p.recv_partners(r, n).len()).sum();
        prop_assert_eq!(sends, recvs);
        prop_assert_eq!(sends, p.total_messages(n));
    }

    /// Memory-bound execution rate is monotone non-increasing in the
    /// number of active ranks and capped by the core bandwidth.
    #[test]
    fn shared_rate_monotone(core in 1e8f64..1e11, socket in 1e8f64..1e12, k in 1u32..64) {
        let m = ExecModel::MemoryBound { bytes: 1 << 20, core_bw_bps: core, socket_bw_bps: socket };
        let r1 = m.shared_rate_bps(k);
        let r2 = m.shared_rate_bps(k + 1);
        prop_assert!(r2 <= r1 + 1e-9);
        prop_assert!(r1 <= core + 1e-9);
        prop_assert!(r1 * f64::from(k) <= socket.max(core * f64::from(k)) + 1.0);
    }

    /// Static duration scales inversely with the shared rate.
    #[test]
    fn static_duration_consistent(bytes in 1u64..(1 << 30), core in 1e8f64..1e11, k in 1u32..32) {
        let m = ExecModel::MemoryBound { bytes, core_bw_bps: core, socket_bw_bps: core * 4.0 };
        let d = m.static_duration(k).as_secs_f64();
        let expect = bytes as f64 / m.shared_rate_bps(k);
        prop_assert!((d - expect).abs() <= 1e-9 + expect * 1e-6);
    }
}
