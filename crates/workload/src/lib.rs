//! # workload — what runs between messages
//!
//! Bulk-synchronous programs alternate execution phases with communication
//! phases. This crate describes both sides of that loop for the simulator:
//!
//! * [`CommPattern`] — who exchanges with whom (uni/bidirectional, neighbour
//!   distance `d`, open/periodic boundaries; paper Sec. II-C2);
//! * [`ExecModel`] — how long an execution phase takes (compute-bound fixed
//!   cost, or memory-bound with socket-level bandwidth sharing; paper
//!   Sec. II-A);
//! * [`kernels`] — real runnable micro-kernels (dependent divides, STREAM
//!   triad) for calibrating the models on a host machine;
//! * [`CommGraph`] / [`CommSchedule`] — arbitrary directed communication
//!   graphs and per-step (collective-style) schedules, the paper's
//!   future-work generalisation of the regular patterns.

#![warn(missing_docs)]

mod exec;
mod graph;
pub mod kernels;
mod pattern;

pub use exec::{ExecModel, BDW_VDIVPD_CYCLES, IVB_VDIVPD_CYCLES, PAPER_CLOCK_HZ};
pub use graph::{CommGraph, CommSchedule};
pub use pattern::{Boundary, CommPattern, Direction};
