//! Point-to-point communication patterns (paper Sec. II-C2).
//!
//! A [`CommPattern`] describes who talks to whom after every execution
//! phase:
//!
//! * **direction** — unidirectional (each rank sends "up" and receives
//!   "down") or bidirectional (full exchange with every neighbour);
//! * **distance** `d` — the largest neighbour offset; `d = 2` means partners
//!   at offsets 1 and 2 (the "multiple-neighbor" pattern of Fig. 7);
//! * **boundary** — open (waves die at the chain ends) or periodic (waves
//!   wrap around, Fig. 5 b/d/f/h).

use tracefmt::json::{self, FromJson, Json, ToJson};

/// Direction of the next-neighbour exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Each rank sends to higher ranks and receives from lower ranks.
    Unidirectional,
    /// Each rank exchanges (sends and receives) with neighbours on both
    /// sides.
    Bidirectional,
}

/// Boundary condition of the process chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// Non-periodic: ranks at the ends simply have fewer partners.
    Open,
    /// Periodic: the chain is a ring.
    Periodic,
}

/// A complete communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommPattern {
    /// Exchange direction.
    pub direction: Direction,
    /// Largest neighbour distance `d` (≥ 1).
    pub distance: u32,
    /// Chain boundary condition.
    pub boundary: Boundary,
}

impl CommPattern {
    /// Next-neighbour (`d = 1`) pattern.
    pub fn next_neighbor(direction: Direction, boundary: Boundary) -> Self {
        CommPattern {
            direction,
            distance: 1,
            boundary,
        }
    }

    /// The σ factor of the paper's Eq. 2 is 2 only for *bidirectional
    /// rendezvous* communication; the direction half of that condition.
    pub fn is_bidirectional(&self) -> bool {
        self.direction == Direction::Bidirectional
    }

    /// Ranks that `rank` sends to, in deterministic order (distance 1 first;
    /// for bidirectional, the lower neighbour before the higher one).
    pub fn send_partners(&self, rank: u32, nranks: u32) -> Vec<u32> {
        self.partners(rank, nranks, true)
    }

    /// Ranks that `rank` receives from, in deterministic order.
    pub fn recv_partners(&self, rank: u32, nranks: u32) -> Vec<u32> {
        self.partners(rank, nranks, false)
    }

    fn partners(&self, rank: u32, nranks: u32, sending: bool) -> Vec<u32> {
        assert!(rank < nranks, "rank {rank} out of range");
        assert!(self.distance >= 1, "distance must be >= 1");
        assert!(
            match self.boundary {
                // A periodic ring needs enough ranks that a rank is not its
                // own partner and partners are distinct.
                Boundary::Periodic => nranks > 2 * self.distance,
                Boundary::Open => nranks > self.distance,
            },
            "{} ranks too few for distance {} with {:?} boundary",
            nranks,
            self.distance,
            self.boundary
        );
        let mut out = Vec::with_capacity(2 * self.distance as usize);
        for k in 1..=self.distance {
            match self.direction {
                Direction::Unidirectional => {
                    // Send "up" (rank + k), receive "down" (rank − k).
                    let offset = if sending { k as i64 } else { -(k as i64) };
                    if let Some(p) = self.resolve(rank, offset, nranks) {
                        out.push(p);
                    }
                }
                Direction::Bidirectional => {
                    for offset in [-(k as i64), k as i64] {
                        if let Some(p) = self.resolve(rank, offset, nranks) {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    }

    fn resolve(&self, rank: u32, offset: i64, nranks: u32) -> Option<u32> {
        let target = i64::from(rank) + offset;
        match self.boundary {
            Boundary::Open => {
                if (0..i64::from(nranks)).contains(&target) {
                    Some(target as u32)
                } else {
                    None
                }
            }
            Boundary::Periodic => Some(target.rem_euclid(i64::from(nranks)) as u32),
        }
    }

    /// Number of messages a full step moves across all ranks (for
    /// reporting / sanity checks).
    pub fn total_messages(&self, nranks: u32) -> usize {
        (0..nranks)
            .map(|r| self.send_partners(r, nranks).len())
            .sum()
    }
}

impl ToJson for Direction {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Direction::Unidirectional => "Unidirectional",
                Direction::Bidirectional => "Bidirectional",
            }
            .into(),
        )
    }
}

impl FromJson for Direction {
    fn from_json(v: &Json) -> json::Result<Self> {
        match v.expect_variant()?.0 {
            "Unidirectional" => Ok(Direction::Unidirectional),
            "Bidirectional" => Ok(Direction::Bidirectional),
            other => Err(json::JsonError(format!(
                "unknown Direction variant '{other}'"
            ))),
        }
    }
}

impl ToJson for Boundary {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Boundary::Open => "Open",
                Boundary::Periodic => "Periodic",
            }
            .into(),
        )
    }
}

impl FromJson for Boundary {
    fn from_json(v: &Json) -> json::Result<Self> {
        match v.expect_variant()?.0 {
            "Open" => Ok(Boundary::Open),
            "Periodic" => Ok(Boundary::Periodic),
            other => Err(json::JsonError(format!(
                "unknown Boundary variant '{other}'"
            ))),
        }
    }
}

impl ToJson for CommPattern {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("direction", self.direction.to_json()),
            ("distance", self.distance.to_json()),
            ("boundary", self.boundary.to_json()),
        ])
    }
}

impl FromJson for CommPattern {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(CommPattern {
            direction: Direction::from_json(v.field("direction")?)?,
            distance: u32::from_json(v.field("distance")?)?,
            boundary: Boundary::from_json(v.field("boundary")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unidirectional_open_interior() {
        let p = CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open);
        assert_eq!(p.send_partners(5, 18), vec![6]);
        assert_eq!(p.recv_partners(5, 18), vec![4]);
    }

    #[test]
    fn unidirectional_open_edges() {
        let p = CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open);
        assert_eq!(p.send_partners(17, 18), Vec::<u32>::new());
        assert_eq!(p.recv_partners(0, 18), Vec::<u32>::new());
        assert_eq!(p.send_partners(0, 18), vec![1]);
        assert_eq!(p.recv_partners(17, 18), vec![16]);
    }

    #[test]
    fn unidirectional_periodic_wraps() {
        let p = CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Periodic);
        assert_eq!(p.send_partners(17, 18), vec![0]);
        assert_eq!(p.recv_partners(0, 18), vec![17]);
    }

    #[test]
    fn bidirectional_open_interior_and_edges() {
        let p = CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Open);
        assert_eq!(p.send_partners(5, 18), vec![4, 6]);
        assert_eq!(p.recv_partners(5, 18), vec![4, 6]);
        assert_eq!(p.send_partners(0, 18), vec![1]);
        assert_eq!(p.send_partners(17, 18), vec![16]);
    }

    #[test]
    fn distance_two_orders_by_distance() {
        let p = CommPattern {
            direction: Direction::Bidirectional,
            distance: 2,
            boundary: Boundary::Open,
        };
        assert_eq!(p.send_partners(8, 18), vec![7, 9, 6, 10]);
        let u = CommPattern {
            direction: Direction::Unidirectional,
            distance: 2,
            boundary: Boundary::Open,
        };
        assert_eq!(u.send_partners(8, 18), vec![9, 10]);
        assert_eq!(u.recv_partners(8, 18), vec![7, 6]);
        // Edge clipping with d = 2.
        assert_eq!(u.send_partners(16, 18), vec![17]);
        assert_eq!(u.recv_partners(1, 18), vec![0]);
    }

    #[test]
    fn periodic_distance_two_wraps_correctly() {
        let p = CommPattern {
            direction: Direction::Bidirectional,
            distance: 2,
            boundary: Boundary::Periodic,
        };
        assert_eq!(p.send_partners(0, 18), vec![17, 1, 16, 2]);
    }

    #[test]
    fn sends_and_recvs_are_consistent() {
        // If a sends to b, then b must list a as a receive partner.
        for (dir, bound, d) in [
            (Direction::Unidirectional, Boundary::Open, 1),
            (Direction::Unidirectional, Boundary::Periodic, 2),
            (Direction::Bidirectional, Boundary::Open, 2),
            (Direction::Bidirectional, Boundary::Periodic, 3),
        ] {
            let p = CommPattern {
                direction: dir,
                distance: d,
                boundary: bound,
            };
            let n = 18;
            for a in 0..n {
                for b in p.send_partners(a, n) {
                    assert!(
                        p.recv_partners(b, n).contains(&a),
                        "{p:?}: {a} sends to {b} but {b} does not recv from {a}"
                    );
                }
                for b in p.recv_partners(a, n) {
                    assert!(
                        p.send_partners(b, n).contains(&a),
                        "{p:?}: {a} recvs from {b} but {b} does not send to {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_self_partners() {
        for bound in [Boundary::Open, Boundary::Periodic] {
            let p = CommPattern {
                direction: Direction::Bidirectional,
                distance: 2,
                boundary: bound,
            };
            for r in 0..8 {
                assert!(!p.send_partners(r, 8).contains(&r));
                assert!(!p.recv_partners(r, 8).contains(&r));
            }
        }
    }

    #[test]
    fn message_counts() {
        let uni = CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Periodic);
        assert_eq!(uni.total_messages(18), 18);
        let bi = CommPattern::next_neighbor(Direction::Bidirectional, Boundary::Periodic);
        assert_eq!(bi.total_messages(18), 36);
        let uni_open = CommPattern::next_neighbor(Direction::Unidirectional, Boundary::Open);
        assert_eq!(uni_open.total_messages(18), 17);
    }

    #[test]
    #[should_panic(expected = "too few")]
    fn periodic_ring_too_small_panics() {
        let p = CommPattern {
            direction: Direction::Bidirectional,
            distance: 2,
            boundary: Boundary::Periodic,
        };
        p.send_partners(0, 4);
    }
}
