//! Execution-phase cost models (paper Sec. II-A).
//!
//! The node-level categorisation of the paper:
//!
//! * **Compute-bound** code scales across cores — no shared resource on the
//!   critical path. Modelled by [`ExecModel::Compute`]: a fixed duration per
//!   phase, calibrated like the paper's `vdivpd` kernel.
//! * **Memory-bound** code saturates a shared resource (the socket's memory
//!   interface). Modelled by [`ExecModel::MemoryBound`]: each phase moves a
//!   fixed volume of memory traffic, and the *rate* depends on how many
//!   ranks on the same socket are executing concurrently — per-rank
//!   bandwidth is `min(core_bw, socket_bw / n_active)`. Desynchronisation
//!   therefore speeds up individual ranks, which is exactly the automatic
//!   communication overlap the paper's Fig. 1/2 motivating experiments
//!   expose.
//!
//! The simulator (`mpisim`) implements the processor-sharing dynamics; this
//! module only describes the model parameters and the analytic helper
//! rates.

use simdes::SimDuration;
use tracefmt::json::{self, FromJson, Json, ToJson};

/// Throughput of one `vdivpd` (4-wide double divide) on Ivy Bridge:
/// one instruction per 28 clock cycles (paper Sec. III-B, citing Hofmann et
/// al.).
pub const IVB_VDIVPD_CYCLES: u32 = 28;

/// Throughput of one `vdivpd` on Broadwell: one instruction per 16 cycles.
pub const BDW_VDIVPD_CYCLES: u32 = 16;

/// Fixed clock frequency of both paper systems: 2.2 GHz.
pub const PAPER_CLOCK_HZ: f64 = 2.2e9;

/// How the execution phase of each step is produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecModel {
    /// Core-bound workload: a fixed duration per phase regardless of what
    /// other ranks do. The configuration of all controlled wave experiments
    /// (Figs. 4–9), with `duration` = 3 ms unless stated otherwise.
    Compute {
        /// Phase length.
        duration: SimDuration,
    },
    /// Memory-bound workload: each phase moves `bytes` of memory traffic;
    /// concurrent ranks on one socket share `socket_bw_bps`, each capped at
    /// `core_bw_bps`.
    MemoryBound {
        /// Memory traffic per rank per phase, in bytes.
        bytes: u64,
        /// Single-core (in-cache / non-contended) bandwidth cap, bytes/s.
        core_bw_bps: f64,
        /// Shared per-socket bandwidth ceiling, bytes/s.
        socket_bw_bps: f64,
    },
}

impl ExecModel {
    /// A compute-bound phase calibrated from a dependent-divide kernel:
    /// `instructions` back-to-back `vdivpd` at `cycles_per_instr` on a
    /// `clock_hz` core.
    pub fn divide_kernel(instructions: u64, cycles_per_instr: u32, clock_hz: f64) -> Self {
        let secs = instructions as f64 * f64::from(cycles_per_instr) / clock_hz;
        ExecModel::Compute {
            duration: SimDuration::from_secs_f64(secs),
        }
    }

    /// Number of `vdivpd` instructions that fill `duration` on the given
    /// core — the inverse of [`ExecModel::divide_kernel`], used to construct
    /// workloads with an exactly known execution time (paper Sec. III-B).
    pub fn divide_instructions_for(
        duration: SimDuration,
        cycles_per_instr: u32,
        clock_hz: f64,
    ) -> u64 {
        (duration.as_secs_f64() * clock_hz / f64::from(cycles_per_instr)).round() as u64
    }

    /// Per-rank memory bandwidth when `active` ranks on the socket execute
    /// concurrently (memory-bound model only).
    ///
    /// # Panics
    ///
    /// If `active` is zero on a memory-bound model.
    pub fn shared_rate_bps(&self, active: u32) -> f64 {
        match *self {
            ExecModel::Compute { .. } => f64::INFINITY,
            ExecModel::MemoryBound {
                core_bw_bps,
                socket_bw_bps,
                ..
            } => {
                assert!(active > 0, "rate query with zero active ranks");
                core_bw_bps.min(socket_bw_bps / f64::from(active))
            }
        }
    }

    /// Duration of one phase if `active` ranks shared the socket for the
    /// whole phase (the static approximation; the simulator integrates the
    /// true time-varying rate).
    pub fn static_duration(&self, active: u32) -> SimDuration {
        match *self {
            ExecModel::Compute { duration } => duration,
            ExecModel::MemoryBound { bytes, .. } => {
                SimDuration::from_secs_f64(bytes as f64 / self.shared_rate_bps(active))
            }
        }
    }

    /// `true` for the memory-bound (contention-sensitive) model.
    pub fn is_memory_bound(&self) -> bool {
        matches!(self, ExecModel::MemoryBound { .. })
    }

    /// Number of cores on one socket at which the socket bandwidth
    /// saturates (the paper's "fewer than the maximum number of cores ...
    /// will usually not change the performance" observation).
    pub fn saturation_point(&self) -> Option<u32> {
        match *self {
            ExecModel::Compute { .. } => None,
            ExecModel::MemoryBound {
                core_bw_bps,
                socket_bw_bps,
                ..
            } => Some((socket_bw_bps / core_bw_bps).ceil().max(1.0) as u32),
        }
    }
}

impl ToJson for ExecModel {
    fn to_json(&self) -> Json {
        match *self {
            ExecModel::Compute { duration } => Json::obj(vec![(
                "Compute",
                Json::obj(vec![("duration", duration.to_json())]),
            )]),
            ExecModel::MemoryBound {
                bytes,
                core_bw_bps,
                socket_bw_bps,
            } => Json::obj(vec![(
                "MemoryBound",
                Json::obj(vec![
                    ("bytes", bytes.to_json()),
                    ("core_bw_bps", core_bw_bps.to_json()),
                    ("socket_bw_bps", socket_bw_bps.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for ExecModel {
    fn from_json(v: &Json) -> json::Result<Self> {
        let (variant, p) = v.expect_variant()?;
        match variant {
            "Compute" => Ok(ExecModel::Compute {
                duration: SimDuration::from_json(p.field("duration")?)?,
            }),
            "MemoryBound" => Ok(ExecModel::MemoryBound {
                bytes: u64::from_json(p.field("bytes")?)?,
                core_bw_bps: f64::from_json(p.field("core_bw_bps")?)?,
                socket_bw_bps: f64::from_json(p.field("socket_bw_bps")?)?,
            }),
            other => Err(json::JsonError(format!(
                "unknown ExecModel variant '{other}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divide_kernel_calibration() {
        // 3 ms at 2.2 GHz / 28 cy per instr ≈ 235714 instructions.
        let n = ExecModel::divide_instructions_for(
            SimDuration::from_millis(3),
            IVB_VDIVPD_CYCLES,
            PAPER_CLOCK_HZ,
        );
        assert_eq!(n, 235_714);
        let m = ExecModel::divide_kernel(n, IVB_VDIVPD_CYCLES, PAPER_CLOCK_HZ);
        match m {
            ExecModel::Compute { duration } => {
                let err = (duration.as_millis_f64() - 3.0).abs();
                assert!(err < 1e-4, "calibrated duration off by {err} ms");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn broadwell_needs_more_instructions_for_same_time() {
        let ivb = ExecModel::divide_instructions_for(
            SimDuration::from_millis(3),
            IVB_VDIVPD_CYCLES,
            PAPER_CLOCK_HZ,
        );
        let bdw = ExecModel::divide_instructions_for(
            SimDuration::from_millis(3),
            BDW_VDIVPD_CYCLES,
            PAPER_CLOCK_HZ,
        );
        assert!(bdw > ivb);
        // Same wall time needs 28/16 x the instructions, up to rounding.
        assert!((bdw as i64 - (ivb * 28 / 16) as i64).abs() <= 1);
    }

    #[test]
    fn compute_model_ignores_contention() {
        let m = ExecModel::Compute {
            duration: SimDuration::from_millis(3),
        };
        assert_eq!(m.static_duration(1), SimDuration::from_millis(3));
        assert_eq!(m.static_duration(10), SimDuration::from_millis(3));
        assert!(!m.is_memory_bound());
        assert_eq!(m.saturation_point(), None);
    }

    #[test]
    fn memory_bound_rate_saturates() {
        // Emmy-like: 40 GB/s socket, ~6.5 GB/s single core.
        let m = ExecModel::MemoryBound {
            bytes: 24_000_000,
            core_bw_bps: 6.5e9,
            socket_bw_bps: 40e9,
        };
        assert_eq!(m.shared_rate_bps(1), 6.5e9);
        assert_eq!(m.shared_rate_bps(6), 6.5e9); // 40/6 = 6.67 > 6.5
        assert!((m.shared_rate_bps(7) - 40e9 / 7.0).abs() < 1.0);
        assert!((m.shared_rate_bps(10) - 4e9).abs() < 1.0);
        assert_eq!(m.saturation_point(), Some(7));
        assert!(m.is_memory_bound());
    }

    #[test]
    fn memory_bound_duration_scales_with_contention() {
        let m = ExecModel::MemoryBound {
            bytes: 40_000_000,
            core_bw_bps: 10e9,
            socket_bw_bps: 40e9,
        };
        // Solo: 40 MB at 10 GB/s = 4 ms. Ten ranks: 40 MB at 4 GB/s = 10 ms.
        assert_eq!(m.static_duration(1), SimDuration::from_millis(4));
        assert_eq!(m.static_duration(10), SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "zero active")]
    fn zero_active_rate_panics() {
        let m = ExecModel::MemoryBound {
            bytes: 1,
            core_bw_bps: 1.0,
            socket_bw_bps: 1.0,
        };
        m.shared_rate_bps(0);
    }
}
