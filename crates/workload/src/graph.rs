//! Arbitrary communication graphs and per-step schedules.
//!
//! The paper's experiments use regular neighbour patterns
//! ([`crate::CommPattern`]); its outlook asks how "more advanced
//! point-to-point and also collective communication patterns influence
//! the idle wave phenomenon". This module provides the machinery:
//!
//! * [`CommGraph`] — an explicit directed send graph (who sends to whom in
//!   one communication phase);
//! * [`CommSchedule`] — a cyclic sequence of graphs, one per step, which
//!   is exactly how collectives decompose (e.g. a recursive-doubling
//!   allreduce is `log₂(n)` rounds of pairwise exchanges at doubling
//!   distances).

use tracefmt::json::{self, FromJson, Json, ToJson};

/// A directed communication graph for one bulk-synchronous step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommGraph {
    /// `sends[r]` = ranks that rank `r` sends one message to.
    sends: Vec<Vec<u32>>,
    /// Derived inverse adjacency: `recvs[r]` = ranks `r` receives from.
    recvs: Vec<Vec<u32>>,
}

impl CommGraph {
    /// Build from explicit send lists.
    ///
    /// # Panics
    /// Panics on self-edges, out-of-range targets, or duplicate edges
    /// (one message per ordered pair per step is the engine's matching
    /// granularity).
    pub fn from_sends(sends: Vec<Vec<u32>>) -> Self {
        let n = sends.len() as u32;
        assert!(n > 0, "empty graph");
        let mut recvs = vec![Vec::new(); sends.len()];
        for (r, targets) in sends.iter().enumerate() {
            let mut seen = std::collections::BTreeSet::new();
            for &t in targets {
                assert!(t < n, "rank {r} sends to out-of-range rank {t}");
                assert!(t as usize != r, "rank {r} sends to itself");
                assert!(seen.insert(t), "rank {r} sends twice to {t}");
                recvs[t as usize].push(r as u32);
            }
        }
        CommGraph { sends, recvs }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.sends.len() as u32
    }

    /// Ranks that `rank` sends to this step.
    pub fn send_partners(&self, rank: u32) -> &[u32] {
        &self.sends[rank as usize]
    }

    /// Ranks that `rank` receives from this step.
    pub fn recv_partners(&self, rank: u32) -> &[u32] {
        &self.recvs[rank as usize]
    }

    /// Total directed edges (messages per step).
    pub fn edges(&self) -> usize {
        self.sends.iter().map(Vec::len).sum()
    }

    /// A graph with no communication at all (a pure compute round).
    pub fn silent(ranks: u32) -> Self {
        CommGraph::from_sends(vec![Vec::new(); ranks as usize])
    }

    /// One recursive-doubling stage: every rank exchanges with
    /// `rank XOR 2^stage`. Requires `ranks` to be a power of two.
    ///
    /// # Panics
    /// Panics if `ranks` is not a power of two or `stage` addresses a bit
    /// outside it.
    pub fn hypercube_stage(ranks: u32, stage: u32) -> Self {
        assert!(
            ranks.is_power_of_two(),
            "hypercube needs a power-of-two rank count"
        );
        assert!(
            1 << stage < ranks,
            "stage {stage} out of range for {ranks} ranks"
        );
        let mask = 1u32 << stage;
        let sends = (0..ranks).map(|r| vec![r ^ mask]).collect();
        CommGraph::from_sends(sends)
    }

    /// One binomial-tree *gather* round: at round `k`, ranks whose low
    /// `k+1` bits equal `2^k` send to the partner with that bit cleared
    /// (the classic MPI_Reduce tree; root is rank 0).
    ///
    /// # Panics
    /// Panics if `round` is past the tree depth for `ranks`.
    pub fn binomial_gather_round(ranks: u32, round: u32) -> Self {
        assert!(
            1u32 << round < ranks.next_power_of_two(),
            "round out of range"
        );
        let bit = 1u32 << round;
        let mut sends = vec![Vec::new(); ranks as usize];
        for r in 0..ranks {
            if r & bit != 0 && r & (bit - 1) == 0 {
                let target = r & !bit;
                if target < ranks {
                    sends[r as usize].push(target);
                }
            }
        }
        CommGraph::from_sends(sends)
    }
}

/// A cyclic per-step sequence of communication graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    rounds: Vec<CommGraph>,
}

impl ToJson for CommGraph {
    fn to_json(&self) -> Json {
        // The inverse adjacency is derived, so only the send lists travel.
        Json::obj(vec![("sends", self.sends.to_json())])
    }
}

impl FromJson for CommGraph {
    fn from_json(v: &Json) -> json::Result<Self> {
        let sends = Vec::<Vec<u32>>::from_json(v.field("sends")?)?;
        let n = sends.len() as u32;
        if n == 0 {
            return Err(json::JsonError("empty graph".into()));
        }
        for (r, targets) in sends.iter().enumerate() {
            let mut seen = std::collections::BTreeSet::new();
            for &t in targets {
                if t >= n || t as usize == r || !seen.insert(t) {
                    return Err(json::JsonError(format!(
                        "invalid edge {r} -> {t} in comm graph"
                    )));
                }
            }
        }
        Ok(CommGraph::from_sends(sends))
    }
}

impl ToJson for CommSchedule {
    fn to_json(&self) -> Json {
        Json::obj(vec![("rounds", self.rounds.to_json())])
    }
}

impl FromJson for CommSchedule {
    fn from_json(v: &Json) -> json::Result<Self> {
        let rounds = Vec::<CommGraph>::from_json(v.field("rounds")?)?;
        if rounds.is_empty() {
            return Err(json::JsonError("schedule needs at least one round".into()));
        }
        let n = rounds[0].ranks();
        if rounds.iter().any(|g| g.ranks() != n) {
            return Err(json::JsonError(
                "schedule rounds disagree on rank count".into(),
            ));
        }
        Ok(CommSchedule::cyclic(rounds))
    }
}

impl CommSchedule {
    /// Cycle through `rounds` (step `s` uses `rounds[s % len]`).
    ///
    /// # Panics
    /// Panics if `rounds` is empty or the graphs disagree on rank count.
    pub fn cyclic(rounds: Vec<CommGraph>) -> Self {
        assert!(!rounds.is_empty(), "schedule needs at least one round");
        let n = rounds[0].ranks();
        assert!(
            rounds.iter().all(|g| g.ranks() == n),
            "all rounds must have the same rank count"
        );
        CommSchedule { rounds }
    }

    /// The same graph every step.
    pub fn uniform(graph: CommGraph) -> Self {
        CommSchedule::cyclic(vec![graph])
    }

    /// A full recursive-doubling allreduce as a repeating super-step:
    /// `log₂(ranks)` hypercube stages per application iteration.
    ///
    /// # Panics
    /// Panics unless `ranks` is a power of two and at least 2.
    pub fn hypercube_allreduce(ranks: u32) -> Self {
        assert!(
            ranks.is_power_of_two() && ranks >= 2,
            "need a power of two >= 2"
        );
        let stages = (0..ranks.trailing_zeros())
            .map(|s| CommGraph::hypercube_stage(ranks, s))
            .collect();
        CommSchedule::cyclic(stages)
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.rounds[0].ranks()
    }

    /// Number of rounds in one cycle.
    pub fn rounds_per_cycle(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// The graph used in step `step`.
    pub fn graph_for(&self, step: u32) -> &CommGraph {
        &self.rounds[step as usize % self.rounds.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sends_builds_inverse_adjacency() {
        let g = CommGraph::from_sends(vec![vec![1, 2], vec![2], vec![]]);
        assert_eq!(g.ranks(), 3);
        assert_eq!(g.send_partners(0), &[1, 2]);
        assert_eq!(g.recv_partners(2), &[0, 1]);
        assert_eq!(g.recv_partners(0), &[] as &[u32]);
        assert_eq!(g.edges(), 3);
    }

    #[test]
    #[should_panic(expected = "sends to itself")]
    fn self_edge_panics() {
        CommGraph::from_sends(vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_edge_panics() {
        CommGraph::from_sends(vec![vec![5], vec![]]);
    }

    #[test]
    #[should_panic(expected = "sends twice")]
    fn duplicate_edge_panics() {
        CommGraph::from_sends(vec![vec![1, 1], vec![]]);
    }

    #[test]
    fn hypercube_stage_is_a_perfect_matching() {
        let g = CommGraph::hypercube_stage(8, 1);
        for r in 0..8u32 {
            assert_eq!(g.send_partners(r), &[r ^ 2]);
            assert_eq!(g.recv_partners(r), &[r ^ 2]);
        }
        assert_eq!(g.edges(), 8);
    }

    #[test]
    fn binomial_gather_rounds_converge_on_root() {
        // 8 ranks: round 0 pairs (1->0, 3->2, 5->4, 7->6); round 1 sends
        // 2->0, 6->4; round 2 sends 4->0.
        let r0 = CommGraph::binomial_gather_round(8, 0);
        assert_eq!(r0.send_partners(1), &[0]);
        assert_eq!(r0.send_partners(7), &[6]);
        assert_eq!(r0.send_partners(2), &[] as &[u32]);
        let r1 = CommGraph::binomial_gather_round(8, 1);
        assert_eq!(r1.send_partners(2), &[0]);
        assert_eq!(r1.send_partners(6), &[4]);
        assert_eq!(r1.send_partners(1), &[] as &[u32]);
        let r2 = CommGraph::binomial_gather_round(8, 2);
        assert_eq!(r2.send_partners(4), &[0]);
        assert_eq!(r2.edges(), 1);
    }

    #[test]
    fn schedule_cycles() {
        let s = CommSchedule::hypercube_allreduce(8);
        assert_eq!(s.rounds_per_cycle(), 3);
        assert_eq!(s.graph_for(0).send_partners(0), &[1]);
        assert_eq!(s.graph_for(1).send_partners(0), &[2]);
        assert_eq!(s.graph_for(2).send_partners(0), &[4]);
        assert_eq!(s.graph_for(3).send_partners(0), &[1]); // wraps
        assert_eq!(s.ranks(), 8);
    }

    #[test]
    fn uniform_schedule_repeats_one_graph() {
        let g = CommGraph::from_sends(vec![vec![1], vec![0]]);
        let s = CommSchedule::uniform(g.clone());
        assert_eq!(s.graph_for(0), &g);
        assert_eq!(s.graph_for(17), &g);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power_of_two() {
        CommGraph::hypercube_stage(6, 0);
    }

    #[test]
    #[should_panic(expected = "same rank count")]
    fn mismatched_rounds_panic() {
        CommSchedule::cyclic(vec![CommGraph::silent(2), CommGraph::silent(3)]);
    }

    #[test]
    fn silent_graph_has_no_edges() {
        let g = CommGraph::silent(4);
        assert_eq!(g.edges(), 0);
        for r in 0..4 {
            assert!(g.send_partners(r).is_empty());
        }
    }
}
