//! Real calibration micro-kernels.
//!
//! The simulator's execution models are *calibrated*, not guessed: these
//! kernels are runnable equivalents of the paper's workloads —
//!
//! * [`dependent_divides`]: a chain of data-dependent double-precision
//!   divides, the compute-bound workload of Sec. III-B (the paper uses
//!   back-to-back `vdivpd`, whose throughput is exactly known per
//!   architecture; a dependent scalar divide chain has the same property of
//!   a fixed, memory-independent cycle count per iteration);
//! * [`triad`] / [`triad_parallel`]: the McCalpin STREAM triad
//!   `A(:) = B(:) + s·C(:)` of the Fig. 1 motivating experiment.
//!
//! Measured times feed `ExecModel` parameters when the host machine is used
//! for calibration; all paper-shape experiments also run fine with the
//! published parameters.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Execute `n` data-dependent double-precision divides and return the
/// elapsed wall time. The dependency chain defeats out-of-order overlap, so
/// elapsed time is proportional to `n` on any hardware.
pub fn dependent_divides(n: u64) -> Duration {
    // Calibration kernels measure the host on purpose — real wall time is
    // the quantity being calibrated, never simulated time.
    let start = Instant::now(); // simlint: allow(wall-clock)
    let mut x = 1.000_000_1_f64;
    for _ in 0..n {
        // A divide whose result feeds the next divide; black_box prevents
        // the compiler from folding the chain.
        x = black_box(1.000_000_1 / x);
    }
    black_box(x);
    start.elapsed()
}

/// One STREAM-triad sweep: `a[i] = b[i] + s·c[i]`.
///
/// # Panics
///
/// If the three slices differ in length.
pub fn triad(a: &mut [f64], b: &[f64], c: &[f64], s: f64) {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "triad length mismatch"
    );
    for ((ai, bi), ci) in a.iter_mut().zip(b).zip(c) {
        *ai = *bi + s * *ci;
    }
}

/// Result of a timed triad run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriadTiming {
    /// Wall time of the timed sweeps.
    pub elapsed: Duration,
    /// Effective memory bandwidth in bytes/s, counting 3 × 8 bytes per
    /// element per sweep (read b, read c, write a; write-allocate ignored,
    /// as in the paper's model).
    pub bandwidth_bps: f64,
    /// Floating-point performance in flop/s (2 flops per element).
    pub flops: f64,
}

/// Run `iters` triad sweeps over `len`-element arrays on one thread and
/// report timing.
///
/// # Panics
///
/// If `len` or `iters` is zero.
pub fn triad_timed(len: usize, iters: u32) -> TriadTiming {
    assert!(len > 0 && iters > 0, "triad_timed needs work");
    let b = vec![1.5_f64; len];
    let c = vec![2.5_f64; len];
    let mut a = vec![0.0_f64; len];
    // Warm-up sweep to fault in the pages.
    triad(&mut a, &b, &c, 3.0);
    let start = Instant::now(); // simlint: allow(wall-clock)
    for _ in 0..iters {
        triad(black_box(&mut a), black_box(&b), black_box(&c), 3.0);
    }
    let elapsed = start.elapsed();
    timing_from(len, iters, elapsed)
}

/// Run `iters` triad sweeps with the arrays split over `threads` threads
/// (std scoped threads), and report aggregate timing. This is the
/// shared-memory analogue of the paper's per-socket saturation experiment:
/// on a machine with a memory-bandwidth ceiling, `bandwidth_bps` stops
/// scaling once the ceiling is hit.
///
/// # Panics
///
/// If `threads` is zero or `len < threads`.
pub fn triad_parallel(len: usize, iters: u32, threads: usize) -> TriadTiming {
    assert!(threads > 0, "need at least one thread");
    assert!(len >= threads, "fewer elements than threads");
    let b = vec![1.5_f64; len];
    let c = vec![2.5_f64; len];
    let mut a = vec![0.0_f64; len];

    let chunk = len.div_ceil(threads);
    let start = Instant::now(); // simlint: allow(wall-clock)
    std::thread::scope(|scope| {
        for ((a_part, b_part), c_part) in a
            .chunks_mut(chunk)
            .zip(b.chunks(chunk))
            .zip(c.chunks(chunk))
        {
            scope.spawn(move || {
                for _ in 0..iters {
                    triad(black_box(a_part), black_box(b_part), black_box(c_part), 3.0);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    timing_from(len, iters, elapsed)
}

fn timing_from(len: usize, iters: u32, elapsed: Duration) -> TriadTiming {
    let secs = elapsed.as_secs_f64().max(1e-12);
    let bytes = 24.0 * len as f64 * f64::from(iters);
    let flop = 2.0 * len as f64 * f64::from(iters);
    TriadTiming {
        elapsed,
        bandwidth_bps: bytes / secs,
        flops: flop / secs,
    }
}

/// Estimate the host's per-divide latency in seconds, for calibrating a
/// `Compute` execution model to a wanted phase length on *this* machine.
pub fn calibrate_divide_latency() -> f64 {
    let n = 2_000_000;
    let t = dependent_divides(n);
    t.as_secs_f64() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_computes_correct_values() {
        let b = [1.0, 2.0, 3.0];
        let c = [10.0, 20.0, 30.0];
        let mut a = [0.0; 3];
        triad(&mut a, &b, &c, 2.0);
        assert_eq!(a, [21.0, 42.0, 63.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn triad_rejects_mismatched_lengths() {
        let mut a = [0.0; 2];
        triad(&mut a, &[1.0; 3], &[1.0; 3], 1.0);
    }

    #[test]
    fn dependent_divides_scale_roughly_linearly() {
        // Wall-clock assertions must be loose to survive CI jitter: only
        // check that 8x the work takes clearly more time.
        let small = dependent_divides(200_000);
        let large = dependent_divides(1_600_000);
        assert!(large > small, "large {large:?} <= small {small:?}");
    }

    #[test]
    fn triad_timed_reports_positive_rates() {
        let t = triad_timed(1 << 16, 4);
        assert!(t.bandwidth_bps > 0.0 && t.bandwidth_bps.is_finite());
        assert!(t.flops > 0.0 && t.flops.is_finite());
        assert!(t.elapsed > Duration::ZERO);
    }

    #[test]
    fn triad_parallel_matches_serial_result_semantics() {
        // Correctness: the parallel split must produce the same values.
        let len = 10_001; // deliberately not divisible by thread count
        let t = triad_parallel(len, 2, 3);
        assert!(t.bandwidth_bps > 0.0);
        // Re-run manually to check values.
        let b = vec![1.5_f64; len];
        let c = vec![2.5_f64; len];
        let mut a = vec![0.0_f64; len];
        triad(&mut a, &b, &c, 3.0);
        assert!(a.iter().all(|&v| (v - 9.0).abs() < 1e-12));
    }

    #[test]
    fn calibration_returns_sane_latency() {
        let lat = calibrate_divide_latency();
        // A dependent double divide takes between ~2 and ~200 ns on
        // anything that can run this test suite.
        assert!(lat > 1e-10 && lat < 1e-6, "divide latency {lat}");
    }

    #[test]
    #[should_panic(expected = "fewer elements")]
    fn parallel_triad_rejects_tiny_arrays() {
        triad_parallel(2, 1, 8);
    }
}
