//! Property-based tests for trace assembly and rendering: any valid
//! record matrix must survive shuffling, serde, and rendering without
//! losing information.

use proptest::prelude::*;
use simdes::{SimDuration, SimTime};
use tracefmt::{ascii_timeline, idle_csv, to_csv, AsciiOptions, PhaseRecord, Trace};

/// Generate a consistent random trace: per rank, phases are contiguous
/// and ordered.
fn traces() -> impl Strategy<Value = Trace> {
    (1u32..6, 1u32..6).prop_flat_map(|(ranks, steps)| {
        let n = (ranks * steps) as usize;
        prop::collection::vec((1u64..1_000_000, 0u64..1_000_000, 0u64..200_000), n).prop_map(
            move |spans| {
                let mut records = Vec::with_capacity(n);
                for r in 0..ranks {
                    let mut t = 0u64;
                    for s in 0..steps {
                        let (exec, comm, inj) = spans[(r * steps + s) as usize];
                        let exec = exec + inj;
                        records.push(PhaseRecord {
                            rank: r,
                            step: s,
                            exec_start: SimTime(t),
                            exec_end: SimTime(t + exec),
                            comm_end: SimTime(t + exec + comm),
                            injected: SimDuration(inj),
                            noise: SimDuration::ZERO,
                        });
                        t += exec + comm;
                    }
                }
                Trace::from_records(ranks, steps, records)
            },
        )
    })
}

proptest! {
    /// Shuffled record order produces the identical trace.
    #[test]
    fn record_order_is_irrelevant(t in traces(), seed in any::<u64>()) {
        let mut recs: Vec<_> = t.iter().copied().collect();
        // Cheap deterministic shuffle.
        let n = recs.len();
        for i in 0..n {
            let j = (simdes::splitmix64(seed ^ i as u64) % n as u64) as usize;
            recs.swap(i, j);
        }
        let u = Trace::from_records(t.ranks(), t.steps(), recs);
        prop_assert_eq!(t, u);
    }

    /// JSON round trip is lossless.
    #[test]
    fn serde_round_trip(t in traces()) {
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Aggregates are consistent with the records.
    #[test]
    fn aggregates_match_records(t in traces()) {
        let total = t.total_runtime();
        for r in 0..t.ranks() {
            prop_assert!(t.finish_time(r) <= total);
            let sum: SimDuration = t.rank_records(r).iter().map(|x| x.comm_duration()).sum();
            prop_assert_eq!(t.total_comm(r), sum);
        }
        let front = t.step_front(t.steps() - 1);
        prop_assert_eq!(front.len() as u32, t.ranks());
        prop_assert_eq!(front.iter().max().copied().unwrap(), total);
        prop_assert!(t.min_comm_duration() <= t.record(0, 0).comm_duration());
    }

    /// The idle matrix is the record-wise saturating subtraction.
    #[test]
    fn idle_matrix_matches_pointwise(t in traces(), baseline in 0u64..500_000) {
        let b = SimDuration(baseline);
        let m = t.idle_matrix(b);
        for r in 0..t.ranks() {
            for s in 0..t.steps() {
                prop_assert_eq!(
                    m[r as usize][s as usize],
                    t.record(r, s).comm_duration().saturating_sub(b)
                );
            }
        }
    }

    /// Renderers never panic and produce structurally sane output.
    #[test]
    fn renderers_are_total(t in traces(), width in 10usize..200) {
        let s = ascii_timeline(&t, &AsciiOptions { width, ..Default::default() });
        // One line per rank plus the axis line.
        prop_assert_eq!(s.lines().count() as u32, t.ranks() + 1);
        let csv = to_csv(&t);
        prop_assert_eq!(csv.lines().count() as u32, t.ranks() * t.steps() + 1);
        let icsv = idle_csv(&t, SimDuration(1000));
        prop_assert_eq!(icsv.lines().count() as u32, t.ranks() * t.steps() + 1);
    }
}
