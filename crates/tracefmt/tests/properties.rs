//! Property-based tests for trace assembly and rendering: any valid
//! record matrix must survive shuffling, JSON round trips, and rendering
//! without losing information.
//!
//! Driven by the in-tree `simdes::check` harness.

use simdes::check::{for_all, Gen, DEFAULT_CASES};
use simdes::{SimDuration, SimTime};
use tracefmt::json;
use tracefmt::{ascii_timeline, idle_csv, to_csv, AsciiOptions, PhaseRecord, Trace};

/// Generate a consistent random trace: per rank, phases are contiguous
/// and ordered.
fn trace(g: &mut Gen) -> Trace {
    let ranks = g.u32(1, 5);
    let steps = g.u32(1, 5);
    let mut records = Vec::with_capacity((ranks * steps) as usize);
    for r in 0..ranks {
        let mut t = 0u64;
        for s in 0..steps {
            let exec = g.u64(1, 999_999);
            let comm = g.u64(0, 999_999);
            let inj = g.u64(0, 199_999);
            let exec = exec + inj;
            records.push(PhaseRecord {
                rank: r,
                step: s,
                exec_start: SimTime(t),
                exec_end: SimTime(t + exec),
                comm_end: SimTime(t + exec + comm),
                injected: SimDuration(inj),
                noise: SimDuration::ZERO,
            });
            t += exec + comm;
        }
    }
    Trace::from_records(ranks, steps, records)
}

/// Shuffled record order produces the identical trace.
#[test]
fn record_order_is_irrelevant() {
    for_all("record_order_is_irrelevant", DEFAULT_CASES, |g| {
        let t = trace(g);
        let seed = g.any_u64();
        let mut recs: Vec<_> = t.iter().copied().collect();
        // Cheap deterministic shuffle.
        let n = recs.len();
        for i in 0..n {
            let j = (simdes::splitmix64(seed ^ i as u64) % n as u64) as usize;
            recs.swap(i, j);
        }
        let u = Trace::from_records(t.ranks(), t.steps(), recs);
        assert_eq!(t, u);
    });
}

/// JSON round trip is lossless.
#[test]
fn json_round_trip() {
    for_all("json_round_trip", DEFAULT_CASES, |g| {
        let t = trace(g);
        let text = json::to_string(&t);
        let back: Trace = json::from_str(&text).unwrap();
        assert_eq!(t, back);
    });
}

/// Aggregates are consistent with the records.
#[test]
fn aggregates_match_records() {
    for_all("aggregates_match_records", DEFAULT_CASES, |g| {
        let t = trace(g);
        let total = t.total_runtime();
        for r in 0..t.ranks() {
            assert!(t.finish_time(r) <= total);
            let sum: SimDuration = t.rank_records(r).iter().map(|x| x.comm_duration()).sum();
            assert_eq!(t.total_comm(r), sum);
        }
        let front = t.step_front(t.steps() - 1);
        assert_eq!(front.len() as u32, t.ranks());
        assert_eq!(front.iter().max().copied().unwrap(), total);
        assert!(t.min_comm_duration() <= t.record(0, 0).comm_duration());
    });
}

/// The idle matrix is the record-wise saturating subtraction.
#[test]
fn idle_matrix_matches_pointwise() {
    for_all("idle_matrix_matches_pointwise", DEFAULT_CASES, |g| {
        let t = trace(g);
        let b = SimDuration(g.u64(0, 499_999));
        let m = t.idle_matrix(b);
        for r in 0..t.ranks() {
            for s in 0..t.steps() {
                assert_eq!(
                    m[r as usize][s as usize],
                    t.record(r, s).comm_duration().saturating_sub(b)
                );
            }
        }
    });
}

/// Renderers never panic and produce structurally sane output.
#[test]
fn renderers_are_total() {
    for_all("renderers_are_total", DEFAULT_CASES, |g| {
        let t = trace(g);
        let width = g.usize(10, 199);
        let s = ascii_timeline(
            &t,
            &AsciiOptions {
                width,
                ..Default::default()
            },
        );
        // One line per rank plus the axis line.
        assert_eq!(s.lines().count() as u32, t.ranks() + 1);
        let csv = to_csv(&t);
        assert_eq!(csv.lines().count() as u32, t.ranks() * t.steps() + 1);
        let icsv = idle_csv(&t, SimDuration(1000));
        assert_eq!(icsv.lines().count() as u32, t.ranks() * t.steps() + 1);
    });
}
