//! Trace rendering: ASCII timelines (the textual cousin of the paper's
//! Figs. 4–7 and 9) and CSV export for external plotting.
//!
//! The ASCII timeline samples each rank's activity on a fixed grid:
//!
//! * `.` executing useful work
//! * `D` inside an injected one-off delay
//! * `#` waiting in the communication phase (idle / communication delay)
//! * `|` socket boundary marker column (optional)
//! * ` ` after the rank has finished
//!
//! Ranks are printed highest-first so rank 0 sits at the bottom, matching
//! the paper's plots.

use simdes::{SimDuration, SimTime};
use std::fmt::Write as _;

use crate::trace::Trace;

/// Activity of one rank at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Executing the useful part of an execution phase.
    Work,
    /// Inside the injected portion of an execution phase.
    InjectedDelay,
    /// In the communication phase (includes waiting on late partners).
    CommOrWait,
    /// Past the last record.
    Finished,
}

/// What `rank` is doing at time `t`.
///
/// Within one execution phase the injected delay is accounted at the
/// *start* of the phase (the injection lengthens the phase before useful
/// progress resumes), which matches how the paper draws its blue delay
/// bars.
pub fn activity_at(trace: &Trace, rank: u32, t: SimTime) -> Activity {
    let recs = trace.rank_records(rank);
    // Records are time-ordered per rank; binary search the enclosing one.
    let idx = recs.partition_point(|r| r.comm_end <= t);
    let Some(r) = recs.get(idx) else {
        return Activity::Finished;
    };
    if t < r.exec_start {
        // Before this phase but after the previous one ended: only possible
        // at t before the very first record; treat as work about to start.
        return Activity::Work;
    }
    if t < r.exec_end {
        let injected_until = r.exec_start + r.injected;
        if t < injected_until {
            Activity::InjectedDelay
        } else {
            Activity::Work
        }
    } else {
        Activity::CommOrWait
    }
}

/// Options for ASCII rendering.
#[derive(Debug, Clone, Copy)]
pub struct AsciiOptions {
    /// Number of character columns.
    pub width: usize,
    /// Render only up to this time (default: full runtime).
    pub until: Option<SimTime>,
    /// Print a blank separator line between ranks of different sockets,
    /// given the number of ranks per socket.
    pub ranks_per_socket: Option<u32>,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            width: 100,
            until: None,
            ranks_per_socket: None,
        }
    }
}

/// Render the trace as an ASCII timeline.
pub fn ascii_timeline(trace: &Trace, opts: &AsciiOptions) -> String {
    let end = opts.until.unwrap_or_else(|| trace.total_runtime());
    let span = end.nanos().max(1);
    let width = opts.width.max(10);
    let mut out = String::new();
    for rank in (0..trace.ranks()).rev() {
        if let Some(rps) = opts.ranks_per_socket {
            if rps > 0 && rank + 1 < trace.ranks() && (rank + 1) % rps == 0 {
                let _ = writeln!(out, "     {}", "-".repeat(width));
            }
        }
        let _ = write!(out, "{rank:>4} ");
        for col in 0..width {
            // Sample at the column's center.
            let t = SimTime((span as u128 * (2 * col as u128 + 1) / (2 * width as u128)) as u64);
            let ch = match activity_at(trace, rank, t) {
                Activity::Work => '.',
                Activity::InjectedDelay => 'D',
                Activity::CommOrWait => '#',
                Activity::Finished => ' ',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "     0{}{}",
        " ".repeat(width.saturating_sub(String::len(&format!("{end}")) + 1)),
        end
    );
    out
}

/// Export the trace as CSV (header + one row per record), times in
/// nanoseconds.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from(
        "rank,step,exec_start_ns,exec_end_ns,comm_end_ns,injected_ns,noise_ns,exec_ns,comm_ns\n",
    );
    for r in trace.iter() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            r.rank,
            r.step,
            r.exec_start.nanos(),
            r.exec_end.nanos(),
            r.comm_end.nanos(),
            r.injected.nanos(),
            r.noise.nanos(),
            r.exec_duration().nanos(),
            r.comm_duration().nanos(),
        );
    }
    out
}

/// Export per-step idle durations beyond a baseline as CSV
/// (`rank,step,idle_ns`), the input format for wave plots.
pub fn idle_csv(trace: &Trace, baseline: SimDuration) -> String {
    let mut out = String::from("rank,step,idle_ns\n");
    for r in trace.iter() {
        let _ = writeln!(
            out,
            "{},{},{}",
            r.rank,
            r.step,
            r.idle_beyond(baseline).nanos()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PhaseRecord;

    /// 2 ranks, 2 steps. Rank 1 has an injected delay in step 0 and rank 0
    /// idles waiting for it in step 0's comm phase.
    fn trace() -> Trace {
        let mk = |rank, step, es, ee, ce, inj| PhaseRecord {
            rank,
            step,
            exec_start: SimTime(es),
            exec_end: SimTime(ee),
            comm_end: SimTime(ce),
            injected: SimDuration(inj),
            noise: SimDuration::ZERO,
        };
        Trace::from_records(
            2,
            2,
            vec![
                mk(0, 0, 0, 100, 300, 0), // waits until rank 1 sends
                mk(0, 1, 300, 400, 410, 0),
                mk(1, 0, 0, 290, 300, 190), // 190 ns injected delay
                mk(1, 1, 300, 400, 410, 0),
            ],
        )
    }

    #[test]
    fn activity_classification() {
        let t = trace();
        // Rank 1 step 0: injected occupies [0, 190), work [190, 290),
        // comm [290, 300).
        assert_eq!(activity_at(&t, 1, SimTime(0)), Activity::InjectedDelay);
        assert_eq!(activity_at(&t, 1, SimTime(189)), Activity::InjectedDelay);
        assert_eq!(activity_at(&t, 1, SimTime(190)), Activity::Work);
        assert_eq!(activity_at(&t, 1, SimTime(295)), Activity::CommOrWait);
        // Rank 0 waits in step 0's comm phase.
        assert_eq!(activity_at(&t, 0, SimTime(200)), Activity::CommOrWait);
        assert_eq!(activity_at(&t, 0, SimTime(350)), Activity::Work);
        assert_eq!(activity_at(&t, 0, SimTime(1_000)), Activity::Finished);
    }

    #[test]
    fn ascii_contains_all_markers() {
        let t = trace();
        let s = ascii_timeline(
            &t,
            &AsciiOptions {
                width: 41,
                ..Default::default()
            },
        );
        assert!(s.contains('D'), "no injected-delay marker:\n{s}");
        assert!(s.contains('#'), "no wait marker:\n{s}");
        assert!(s.contains('.'), "no work marker:\n{s}");
        // Highest rank first.
        let first = s.lines().next().unwrap();
        assert!(first.trim_start().starts_with('1'), "{first}");
    }

    #[test]
    fn ascii_socket_separators() {
        let t = trace();
        let s = ascii_timeline(
            &t,
            &AsciiOptions {
                width: 20,
                ranks_per_socket: Some(1),
                ..Default::default()
            },
        );
        assert!(s.contains("--------------------"), "{s}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = trace();
        let csv = to_csv(&t);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("rank,step,"));
        assert!(lines[1].starts_with("0,0,"));
    }

    #[test]
    fn idle_csv_reports_waits() {
        let t = trace();
        let csv = idle_csv(&t, SimDuration(10));
        // rank 0 step 0 idled 200 - 10 = 190 ns.
        assert!(csv.lines().any(|l| l == "0,0,190"), "{csv}");
        assert!(csv.lines().any(|l| l == "1,1,0"), "{csv}");
    }

    #[test]
    fn ascii_respects_until() {
        let t = trace();
        let full = ascii_timeline(
            &t,
            &AsciiOptions {
                width: 40,
                ..Default::default()
            },
        );
        let early = ascii_timeline(
            &t,
            &AsciiOptions {
                width: 40,
                until: Some(SimTime(300)),
                ..Default::default()
            },
        );
        assert_ne!(full, early);
        // In the truncated view nothing is Finished, so no trailing spaces
        // inside rows.
        for line in early.lines().take(2) {
            assert!(!line.trim_end().is_empty());
        }
    }
}
