//! The full trace of a bulk-synchronous run: a dense `(rank, step)` matrix
//! of [`PhaseRecord`]s plus whole-run accessors.

use simdes::{SimDuration, SimTime};

use crate::json::{self, FromJson, Json, ToJson};
use crate::record::PhaseRecord;

/// A complete run trace: `ranks × steps` phase records in rank-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    ranks: u32,
    steps: u32,
    records: Vec<PhaseRecord>,
}

impl Trace {
    /// Assemble a trace from records. The records may arrive in any order
    /// but must cover every `(rank, step)` pair exactly once.
    ///
    /// # Panics
    /// Panics if coverage is incomplete, duplicated, or out of range.
    pub fn from_records(ranks: u32, steps: u32, records: Vec<PhaseRecord>) -> Self {
        assert!(ranks > 0 && steps > 0, "empty trace dimensions");
        let n = ranks as usize * steps as usize;
        assert_eq!(
            records.len(),
            n,
            "expected {n} records, got {}",
            records.len()
        );
        let mut slots: Vec<Option<PhaseRecord>> = vec![None; n];
        for r in records {
            assert!(
                r.rank < ranks && r.step < steps,
                "record out of range: {r:?}"
            );
            let idx = r.rank as usize * steps as usize + r.step as usize;
            assert!(
                slots[idx].is_none(),
                "duplicate record for rank {} step {}",
                r.rank,
                r.step
            );
            slots[idx] = Some(r);
        }
        let records = slots
            .into_iter()
            .map(|s| s.expect("checked full"))
            .collect();
        Trace {
            ranks,
            steps,
            records,
        }
    }

    /// [`Trace::from_records`] for pooled engines: drains `records`,
    /// leaving the caller's (empty) buffer and its capacity behind for
    /// reuse by the next run. The trace owns a fresh exact-size
    /// allocation either way.
    ///
    /// # Panics
    /// Panics under the same coverage rules as [`Trace::from_records`].
    pub fn from_record_buffer(ranks: u32, steps: u32, records: &mut Vec<PhaseRecord>) -> Self {
        Trace::from_records(ranks, steps, records.drain(..).collect())
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Number of steps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// The record for `(rank, step)`.
    ///
    /// # Panics
    ///
    /// If `rank` or `step` is out of range.
    pub fn record(&self, rank: u32, step: u32) -> &PhaseRecord {
        assert!(
            rank < self.ranks && step < self.steps,
            "({rank},{step}) out of range"
        );
        &self.records[rank as usize * self.steps as usize + step as usize]
    }

    /// All records of one rank, in step order.
    ///
    /// # Panics
    ///
    /// If `rank` is out of range.
    pub fn rank_records(&self, rank: u32) -> &[PhaseRecord] {
        assert!(rank < self.ranks, "rank {rank} out of range");
        let s = self.steps as usize;
        &self.records[rank as usize * s..(rank as usize + 1) * s]
    }

    /// Iterate over all records (rank-major).
    pub fn iter(&self) -> impl Iterator<Item = &PhaseRecord> {
        self.records.iter()
    }

    /// Wall-clock time at which `rank` finished its last step.
    pub fn finish_time(&self, rank: u32) -> SimTime {
        self.record(rank, self.steps - 1).comm_end
    }

    /// Wall-clock time at which the whole run finished (slowest rank).
    pub fn total_runtime(&self) -> SimTime {
        (0..self.ranks)
            .map(|r| self.finish_time(r))
            .max()
            .expect("ranks > 0")
    }

    /// Total time spent in communication phases on `rank`.
    pub fn total_comm(&self, rank: u32) -> SimDuration {
        self.rank_records(rank)
            .iter()
            .map(|r| r.comm_duration())
            .sum()
    }

    /// Total idle time beyond `baseline` per communication phase on `rank`.
    pub fn total_idle_beyond(&self, rank: u32, baseline: SimDuration) -> SimDuration {
        self.rank_records(rank)
            .iter()
            .map(|r| r.idle_beyond(baseline))
            .sum()
    }

    /// Per-rank wall-clock time at which step `step` ended — the red
    /// markers of Fig. 2's timeline snapshots.
    pub fn step_front(&self, step: u32) -> Vec<SimTime> {
        (0..self.ranks)
            .map(|r| self.record(r, step).comm_end)
            .collect()
    }

    /// The idle matrix: `idle[rank][step] = comm_duration − baseline`,
    /// saturating at zero. The raw material of all wave analysis.
    pub fn idle_matrix(&self, baseline: SimDuration) -> Vec<Vec<SimDuration>> {
        (0..self.ranks)
            .map(|r| {
                self.rank_records(r)
                    .iter()
                    .map(|rec| rec.idle_beyond(baseline))
                    .collect()
            })
            .collect()
    }

    /// Smallest communication-phase duration in the whole trace — a robust
    /// empirical baseline when the analytic one is not known.
    pub fn min_comm_duration(&self) -> SimDuration {
        self.records
            .iter()
            .map(|r| r.comm_duration())
            .min()
            .expect("non-empty trace")
    }

    /// Content digest of the whole trace: FNV-1a over the shape and every
    /// field of every record, in rank-major order. Two traces have equal
    /// fingerprints iff they are bit-identical (modulo the 64-bit hash),
    /// so sweep results can assert determinism across runs and machines
    /// without persisting full traces.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        h.write_u64(u64::from(self.ranks));
        h.write_u64(u64::from(self.steps));
        for r in &self.records {
            h.write_u64(u64::from(r.rank));
            h.write_u64(u64::from(r.step));
            h.write_u64(r.exec_start.0);
            h.write_u64(r.exec_end.0);
            h.write_u64(r.comm_end.0);
            h.write_u64(r.injected.0);
            h.write_u64(r.noise.0);
        }
        h.finish()
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ranks", self.ranks.to_json()),
            ("steps", self.steps.to_json()),
            ("records", self.records.to_json()),
        ])
    }
}

impl FromJson for Trace {
    fn from_json(v: &Json) -> json::Result<Self> {
        let ranks = u32::from_json(v.field("ranks")?)?;
        let steps = u32::from_json(v.field("steps")?)?;
        let records = Vec::<PhaseRecord>::from_json(v.field("records")?)?;
        // Re-validate through the asserting constructor, but surface
        // malformed input as a parse error instead of a panic.
        let n = (ranks as usize)
            .checked_mul(steps as usize)
            .unwrap_or(usize::MAX);
        if ranks == 0 || steps == 0 || records.len() != n {
            return Err(json::JsonError(format!(
                "trace shape mismatch: {ranks}x{steps} with {} records",
                records.len()
            )));
        }
        if records.iter().any(|r| r.rank >= ranks || r.step >= steps) {
            return Err(json::JsonError("trace record out of range".into()));
        }
        let mut seen = vec![false; n];
        for r in &records {
            let idx = r.rank as usize * steps as usize + r.step as usize;
            if seen[idx] {
                return Err(json::JsonError(format!(
                    "duplicate trace record for rank {} step {}",
                    r.rank, r.step
                )));
            }
            seen[idx] = true;
        }
        Ok(Trace::from_records(ranks, steps, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-rank, 2-step trace where rank 1 idles in step 0.
    fn tiny() -> Trace {
        let mk = |rank, step, es, ee, ce, inj| PhaseRecord {
            rank,
            step,
            exec_start: SimTime(es),
            exec_end: SimTime(ee),
            comm_end: SimTime(ce),
            injected: SimDuration(inj),
            noise: SimDuration::ZERO,
        };
        Trace::from_records(
            2,
            2,
            vec![
                mk(0, 0, 0, 100, 110, 0),
                mk(0, 1, 110, 210, 220, 0),
                mk(1, 0, 0, 100, 160, 0), // 50 ns idle
                mk(1, 1, 160, 260, 270, 0),
            ],
        )
    }

    #[test]
    fn accessors() {
        let t = tiny();
        assert_eq!(t.ranks(), 2);
        assert_eq!(t.steps(), 2);
        assert_eq!(t.record(1, 0).comm_duration(), SimDuration(60));
        assert_eq!(t.rank_records(1).len(), 2);
        assert_eq!(t.finish_time(0), SimTime(220));
        assert_eq!(t.total_runtime(), SimTime(270));
    }

    #[test]
    fn totals_and_idle() {
        let t = tiny();
        assert_eq!(t.total_comm(1), SimDuration(70));
        assert_eq!(t.total_idle_beyond(1, SimDuration(10)), SimDuration(50));
        assert_eq!(t.total_idle_beyond(0, SimDuration(10)), SimDuration::ZERO);
        assert_eq!(t.min_comm_duration(), SimDuration(10));
    }

    #[test]
    fn idle_matrix_shape_and_content() {
        let t = tiny();
        let m = t.idle_matrix(SimDuration(10));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], vec![SimDuration::ZERO, SimDuration::ZERO]);
        assert_eq!(m[1], vec![SimDuration(50), SimDuration::ZERO]);
    }

    #[test]
    fn step_front() {
        let t = tiny();
        assert_eq!(t.step_front(0), vec![SimTime(110), SimTime(160)]);
    }

    #[test]
    fn records_may_arrive_shuffled() {
        let t = tiny();
        let mut recs: Vec<_> = t.iter().copied().collect();
        recs.reverse();
        let u = Trace::from_records(2, 2, recs);
        assert_eq!(t, u);
    }

    #[test]
    #[should_panic(expected = "expected 4 records")]
    fn missing_record_panics() {
        let t = tiny();
        let recs: Vec<_> = t.iter().copied().take(3).collect();
        Trace::from_records(2, 2, recs);
    }

    #[test]
    #[should_panic(expected = "duplicate record")]
    fn duplicate_record_panics() {
        let t = tiny();
        let mut recs: Vec<_> = t.iter().copied().collect();
        recs[1] = recs[0];
        Trace::from_records(2, 2, recs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        let t = tiny();
        let mut recs: Vec<_> = t.iter().copied().collect();
        recs[0].rank = 9;
        Trace::from_records(2, 2, recs);
    }

    #[test]
    fn json_round_trip() {
        let t = tiny();
        let json = json::to_string(&t);
        let back: Trace = json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let t = tiny();
        assert_eq!(t.fingerprint(), tiny().fingerprint());
        let mut recs: Vec<PhaseRecord> = t.iter().copied().collect();
        recs[3].comm_end = SimTime(recs[3].comm_end.0 + 1);
        let tweaked = Trace::from_records(2, 2, recs);
        assert_ne!(t.fingerprint(), tweaked.fingerprint());
        // A JSON round trip preserves the fingerprint exactly.
        let back: Trace = json::from_str(&json::to_string(&t)).unwrap();
        assert_eq!(t.fingerprint(), back.fingerprint());
    }

    #[test]
    fn json_parse_rejects_malformed_traces() {
        let t = tiny();
        let mut v = t.to_json();
        if let Json::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "ranks" {
                    *val = Json::UInt(5); // wrong shape for 4 records
                }
            }
        }
        assert!(Trace::from_json(&v).is_err());
    }
}
