//! FNV-1a digests.
//!
//! [`Trace::fingerprint`](crate::Trace::fingerprint) introduced a 64-bit
//! FNV-1a digest to prove bit-identical traces across runs without
//! persisting them. The checkpoint subsystem needs the same machinery for
//! snapshot integrity footers and config fingerprints, so the hasher lives
//! here as a small incremental type plus a one-shot helper.
//!
//! FNV-1a is not cryptographic: it detects torn writes, truncation, and
//! accidental corruption, not adversarial tampering — exactly the failure
//! modes crash-safe files have to survive.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    h: u64,
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { h: Self::OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb one word as its 8 little-endian bytes (the mixing step
    /// `Trace::fingerprint` has always used).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a digest of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Encode a single-line document with an FNV-1a integrity footer — the
/// two-line layout the checkpoint snapshots established:
///
/// ```text
/// <body>
/// {"<footer_key>":<fnv1a of the body bytes>}
/// ```
///
/// `body` must not contain a newline (the footer split point); the sweep
/// result cache and other crash-safe single-record files build on this.
pub fn encode_footered(body: &str, footer_key: &str) -> String {
    debug_assert!(!body.contains('\n'), "footered body must be one line");
    format!(
        "{body}\n{{\"{footer_key}\":{}}}\n",
        fnv1a_64(body.as_bytes())
    )
}

/// Split and verify a footered document, returning the body text.
///
/// Works on raw bytes so torn files that are not valid UTF-8 still fail
/// with a reason instead of panicking. Every failure mode — missing
/// footer, malformed footer, digest mismatch, non-UTF-8 body — returns a
/// human-readable reason; callers decide whether that means quarantine
/// (result cache) or a rejection diagnostic (snapshots).
pub fn decode_footered<'a>(bytes: &'a [u8], footer_key: &str) -> Result<&'a str, String> {
    let Some(split) = bytes.iter().position(|&b| b == b'\n') else {
        return Err("missing integrity footer (no newline): the write was torn".to_string());
    };
    let body_bytes = &bytes[..split];
    let footer = std::str::from_utf8(&bytes[split + 1..])
        .map_err(|e| format!("integrity footer is not UTF-8: {e}"))?;
    let footer = footer.trim_end();
    let want: u64 = footer
        .strip_prefix(&format!("{{\"{footer_key}\":"))
        .and_then(|rest| rest.strip_suffix('}'))
        .and_then(|digits| digits.parse().ok())
        .ok_or_else(|| format!("integrity footer lacks a {footer_key} field: '{footer}'"))?;
    let got = fnv1a_64(body_bytes);
    if got != want {
        return Err(format!(
            "integrity digest mismatch (expected {want:#018x}, found {got:#018x}): \
             the file is torn or corrupt"
        ));
    }
    std::str::from_utf8(body_bytes).map_err(|e| format!("body is not UTF-8: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
        let mut w = Fnv64::new();
        w.write_u64(0x0102_0304_0506_0708);
        assert_eq!(w.finish(), fnv1a_64(&[8, 7, 6, 5, 4, 3, 2, 1]));
    }

    #[test]
    fn content_sensitive() {
        assert_ne!(fnv1a_64(b"snapshot-a"), fnv1a_64(b"snapshot-b"));
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }

    #[test]
    fn footered_round_trip() {
        let doc = encode_footered("{\"a\":1}", "cache_digest");
        assert_eq!(doc.lines().count(), 2);
        assert_eq!(
            decode_footered(doc.as_bytes(), "cache_digest").expect("own encoding decodes"),
            "{\"a\":1}"
        );
    }

    #[test]
    fn footered_rejects_corruption() {
        let doc = encode_footered("{\"a\":1}", "k");
        // Bit-flip in the body: digest mismatch.
        let mut flipped = doc.clone().into_bytes();
        flipped[2] ^= 0x40;
        assert!(decode_footered(&flipped, "k")
            .expect_err("flip detected")
            .contains("digest mismatch"));
        // Truncation before the newline: no footer at all.
        assert!(decode_footered(&doc.as_bytes()[..5], "k")
            .expect_err("truncation detected")
            .contains("torn"));
        // Truncation inside the footer.
        assert!(decode_footered(&doc.as_bytes()[..doc.len() - 3], "k")
            .expect_err("torn footer detected")
            .contains("lacks a k field"));
        // Wrong footer key.
        assert!(decode_footered(doc.as_bytes(), "other").is_err());
        // Body torn mid-UTF-8-codepoint must error, not panic.
        let multi = encode_footered("{\"s\":\"€\"}", "k");
        let cut = multi.find('\n').expect("newline") - 1;
        let mut torn = multi.as_bytes()[..cut].to_vec();
        torn.extend_from_slice(&multi.as_bytes()[multi.find('\n').expect("newline")..]);
        assert!(decode_footered(&torn, "k").is_err());
    }
}
