//! FNV-1a digests.
//!
//! [`Trace::fingerprint`](crate::Trace::fingerprint) introduced a 64-bit
//! FNV-1a digest to prove bit-identical traces across runs without
//! persisting them. The checkpoint subsystem needs the same machinery for
//! snapshot integrity footers and config fingerprints, so the hasher lives
//! here as a small incremental type plus a one-shot helper.
//!
//! FNV-1a is not cryptographic: it detects torn writes, truncation, and
//! accidental corruption, not adversarial tampering — exactly the failure
//! modes crash-safe files have to survive.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    h: u64,
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { h: Self::OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb one word as its 8 little-endian bytes (the mixing step
    /// `Trace::fingerprint` has always used).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a digest of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
        let mut w = Fnv64::new();
        w.write_u64(0x0102_0304_0506_0708);
        assert_eq!(w.finish(), fnv1a_64(&[8, 7, 6, 5, 4, 3, 2, 1]));
    }

    #[test]
    fn content_sensitive() {
        assert_ne!(fnv1a_64(b"snapshot-a"), fnv1a_64(b"snapshot-b"));
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
