//! A small in-tree JSON module — emitter, recursive-descent parser, and the
//! [`ToJson`]/[`FromJson`] conversion traits the workspace uses instead of
//! `serde`/`serde_json`.
//!
//! Scope: exactly what the simulator needs. Configs ([`mpisim::SimConfig`]
//! in the sibling crate), traces, figure data. The conventions deliberately
//! mirror what the previous `serde` derives produced, so existing on-disk
//! configs keep parsing:
//!
//! * structs ⇒ objects with the field names as keys;
//! * unit enum variants ⇒ the variant name as a string (`"Eager"`);
//! * struct enum variants ⇒ a single-key object
//!   (`{"Auto": {"eager_limit": 32768}}`);
//! * `SimTime`/`SimDuration` ⇒ transparent nanosecond integers;
//! * missing optional fields default (where the old derive said
//!   `#[serde(default)]`).
//!
//! Numbers keep full precision: unsigned and signed integers are carried as
//! `u64`/`i64` (nanosecond timestamps exceed 2⁵³ and must not transit
//! through `f64`), floats are emitted with `{:?}` which is Rust's shortest
//! round-trip formatting.

use std::fmt;

use simdes::{SimDuration, SimTime};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (fits `u64`).
    UInt(u64),
    /// A negative integer (fits `i64`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Error raised by parsing or by typed extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Convenience alias for fallible JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(JsonError(msg.into()))
}

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// One-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Int(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Look up a key in an object. `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required key in an object.
    pub fn field(&self, key: &str) -> Result<&Json> {
        match self {
            Json::Object(_) => self
                .get(key)
                .ok_or_else(|| JsonError(format!("missing field '{key}'"))),
            other => err(format!(
                "expected object with field '{key}', got {}",
                other.kind()
            )),
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::UInt(v) => i64::try_from(v).ok(),
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Typed extraction with an error naming the mismatch.
    pub fn expect_u64(&self) -> Result<u64> {
        self.as_u64()
            .ok_or_else(|| JsonError(format!("expected unsigned integer, got {}", self.kind())))
    }

    /// Typed extraction with an error naming the mismatch.
    pub fn expect_f64(&self) -> Result<f64> {
        self.as_f64()
            .ok_or_else(|| JsonError(format!("expected number, got {}", self.kind())))
    }

    /// Typed extraction with an error naming the mismatch.
    pub fn expect_bool(&self) -> Result<bool> {
        self.as_bool()
            .ok_or_else(|| JsonError(format!("expected bool, got {}", self.kind())))
    }

    /// Typed extraction with an error naming the mismatch.
    pub fn expect_str(&self) -> Result<&str> {
        self.as_str()
            .ok_or_else(|| JsonError(format!("expected string, got {}", self.kind())))
    }

    /// Typed extraction with an error naming the mismatch.
    pub fn expect_array(&self) -> Result<&[Json]> {
        self.as_array()
            .ok_or_else(|| JsonError(format!("expected array, got {}", self.kind())))
    }

    /// Typed extraction with an error naming the mismatch.
    pub fn expect_object(&self) -> Result<&[(String, Json)]> {
        self.as_object()
            .ok_or_else(|| JsonError(format!("expected object, got {}", self.kind())))
    }

    /// For externally tagged enums: the single `(variant, payload)` pair of
    /// a one-key object, or `(name, Null)` for a bare string.
    pub fn expect_variant(&self) -> Result<(&str, &Json)> {
        match self {
            Json::Str(name) => Ok((name.as_str(), &Json::Null)),
            Json::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
            other => err(format!(
                "expected enum variant (string or single-key object), got {}",
                other.kind()
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

impl Json {
    /// Compact serialization (no whitespace), like `serde_json::to_string`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation, like
    /// `serde_json::to_string_pretty`.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.len(),
                    |out, i, depth| {
                        items[i].write(out, indent, depth);
                    },
                );
            }
            Json::Object(fields) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    fields.len(),
                    |out, i, depth| {
                        let (k, v) = &fields[i];
                        write_escaped(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth);
                    },
                );
            }
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/inf; mirror serde_json's lossy choice of null.
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest representation that round-trips exactly.
    let s = format!("{v:?}");
    out.push_str(&s);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

impl Json {
    /// Parse a JSON document. The whole input must be consumed (trailing
    /// whitespace allowed).
    pub fn parse(input: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => err(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            )),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-path a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                Some(_) => return err(format!("raw control character at byte {}", self.pos)),
                None => return err("unterminated string"),
            }
        }
    }

    fn escape(&mut self) -> Result<char> {
        let c = self
            .peek()
            .ok_or_else(|| JsonError("unterminated escape".into()))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect_byte(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return err("invalid low surrogate");
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return err("unpaired surrogate");
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| JsonError("invalid \\u escape".into()))?
            }
            c => return err(format!("invalid escape '\\{}'", c as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(chunk).map_err(|_| JsonError("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.is_empty() || text == "-" {
            return err(format!("invalid number at byte {start}"));
        }
        if !is_float {
            // Integers stay integers so u64 nanosecond values keep full
            // precision; fall back to float only on overflow.
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if v == 0 {
                        return Ok(Json::UInt(0));
                    }
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Json::Int(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => err(format!("invalid number '{text}'")),
        }
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a JSON value tree (the emit half of the old `Serialize`).
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a parsed JSON value (the parse half of `Deserialize`).
pub trait FromJson: Sized {
    /// Reconstruct a value from its JSON representation.
    fn from_json(v: &Json) -> Result<Self>;
}

/// Serialize any [`ToJson`] value to a compact string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Serialize any [`ToJson`] value to a pretty-printed string.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump_pretty()
}

/// Parse a string into any [`FromJson`] value.
pub fn from_str<T: FromJson>(input: &str) -> Result<T> {
    T::from_json(&Json::parse(input)?)
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self> {
                let raw = v.expect_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| JsonError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self> {
        let raw = v.expect_u64()?;
        usize::try_from(raw).map_err(|_| JsonError(format!("{raw} out of range for usize")))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::UInt(*self as u64)
        } else {
            Json::Int(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_i64()
            .ok_or_else(|| JsonError(format!("expected integer, got {}", v.kind())))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self> {
        v.expect_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self> {
        v.expect_bool()
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(v.expect_str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self> {
        v.expect_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(inner) => inner.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(v.clone())
    }
}

// --- simdes time impls (transparent nanosecond integers) -------------------

impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        Json::UInt(self.nanos())
    }
}

impl FromJson for SimTime {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(SimTime(v.expect_u64()?))
    }
}

impl ToJson for SimDuration {
    fn to_json(&self) -> Json {
        Json::UInt(self.nanos())
    }
}

impl FromJson for SimDuration {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(SimDuration(v.expect_u64()?))
    }
}

/// Read an optional field, substituting the type's `Default` when the field
/// is absent or `null` — the analogue of `#[serde(default)]`.
pub fn field_or_default<T: FromJson + Default>(obj: &Json, key: &str) -> Result<T> {
    match obj.get(key) {
        Some(v) if !v.is_null() => T::from_json(v),
        _ => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("-0").unwrap(), Json::UInt(0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_precision_is_preserved() {
        // 2^63 + 1 is not representable in f64; it must survive a round trip.
        let big = (1u64 << 63) + 1;
        let parsed = Json::parse(&big.to_string()).unwrap();
        assert_eq!(parsed, Json::UInt(big));
        assert_eq!(parsed.dump(), big.to_string());
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
        // Beyond u64 falls back to float rather than failing.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a": [1, 2.0, "x"], "b": {"c": null}, "d": []}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap(),
            &[Json::UInt(1), Json::Float(2.0), Json::Str("x".into())]
        );
        assert!(v.field("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("d").unwrap().as_array().unwrap().len(), 0);
        assert!(v.get("missing").is_none());
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600} \u{0001}";
        let dumped = Json::Str(original.into()).dump();
        assert_eq!(Json::parse(&dumped).unwrap(), Json::Str(original.into()));
        // Explicit escape forms parse too.
        assert_eq!(
            Json::parse(r#""Aé😀\/""#).unwrap(),
            Json::Str("Aé\u{1F600}/".into())
        );
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -2.5e-9, 1e308, f64::MIN_POSITIVE] {
            let dumped = Json::Float(v).dump();
            let back = Json::parse(&dumped).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {dumped} -> {back}");
        }
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "01x",
            "-",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn pretty_matches_compact_semantics() {
        let v = Json::parse(r#"{"net":{"lat":1.5},"ranks":[0,1,2],"name":"x"}"#).unwrap();
        let pretty = v.dump_pretty();
        assert!(
            pretty.contains("\n  \"net\": {\n    \"lat\": 1.5\n  }"),
            "{pretty}"
        );
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        // Empty containers stay on one line.
        assert_eq!(Json::Array(vec![]).dump_pretty(), "[]");
        assert_eq!(Json::Object(vec![]).dump_pretty(), "{}");
    }

    #[test]
    fn variant_accessor() {
        let unit = Json::parse("\"Eager\"").unwrap();
        assert_eq!(unit.expect_variant().unwrap(), ("Eager", &Json::Null));
        let tagged = Json::parse(r#"{"Auto":{"eager_limit":32768}}"#).unwrap();
        let (name, payload) = tagged.expect_variant().unwrap();
        assert_eq!(name, "Auto");
        assert_eq!(payload.field("eager_limit").unwrap().as_u64(), Some(32768));
        assert!(Json::parse(r#"{"a":1,"b":2}"#)
            .unwrap()
            .expect_variant()
            .is_err());
    }

    #[test]
    fn primitive_trait_round_trips() {
        assert_eq!(from_str::<u32>(&to_string(&7u32)).unwrap(), 7);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>(&to_string(&-3i64)).unwrap(), -3);
        assert_eq!(from_str::<f64>(&to_string(&0.25f64)).unwrap(), 0.25);
        assert_eq!(from_str::<bool>(&to_string(&true)).unwrap(), true);
        assert_eq!(from_str::<String>(&to_string("hey")).unwrap(), "hey");
        assert_eq!(
            from_str::<Vec<u64>>(&to_string(&vec![1u64, 2])).unwrap(),
            vec![1, 2]
        );
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("5").unwrap(), Some(5));
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn sim_time_round_trips_transparently() {
        assert_eq!(to_string(&SimTime(123)), "123");
        assert_eq!(from_str::<SimTime>("123").unwrap(), SimTime(123));
        assert_eq!(to_string(&SimDuration(456)), "456");
        assert_eq!(from_str::<SimDuration>("456").unwrap(), SimDuration(456));
        let big = SimTime(u64::MAX - 1);
        assert_eq!(from_str::<SimTime>(&to_string(&big)).unwrap(), big);
    }

    #[test]
    fn field_or_default_handles_absent_and_null() {
        let v = Json::parse(r#"{"present": 9, "nulled": null}"#).unwrap();
        assert_eq!(field_or_default::<u64>(&v, "present").unwrap(), 9);
        assert_eq!(field_or_default::<u64>(&v, "nulled").unwrap(), 0);
        assert_eq!(field_or_default::<u64>(&v, "absent").unwrap(), 0);
        assert_eq!(
            field_or_default::<Vec<f64>>(&v, "absent").unwrap(),
            Vec::<f64>::new()
        );
    }
}
