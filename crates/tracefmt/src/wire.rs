//! Bounded line framing for stream transports.
//!
//! `wavesim serve` speaks line-delimited JSON over TCP. The framing
//! layer has exactly two robustness jobs, and both live here so they can
//! be unit-tested without sockets:
//!
//! * **Bounded lines.** A client that streams gigabytes without a
//!   newline must not grow the server's buffer without bound. Lines
//!   longer than the reader's limit come back as a typed
//!   [`LineError::Oversized`] value — and the reader *discards bytes to
//!   the next newline*, so the stream stays parseable afterwards and the
//!   peer can be answered with a structured error instead of a dropped
//!   connection.
//! * **Byte-safe decoding.** A line that is not UTF-8 is a typed
//!   [`LineError::NotUtf8`], not a panic and not a poisoned stream.
//!
//! I/O errors from the underlying transport (including read timeouts,
//! which surface as [`std::io::ErrorKind::WouldBlock`] or
//! [`std::io::ErrorKind::TimedOut`]) pass through untouched; any bytes
//! already buffered survive the error, so a caller polling a stream with
//! a read timeout simply calls [`LineReader::next_line`] again.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use crate::json::{self, ToJson};

/// Default per-line byte limit: far above any legitimate scenario
/// submission, far below "the client can exhaust server memory".
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// A line that could not be yielded as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineError {
    /// The line exceeded the reader's byte limit. Everything up to the
    /// next newline has been discarded; the stream is positioned at the
    /// start of the following line.
    Oversized {
        /// The reader's configured limit.
        limit: usize,
    },
    /// The line's bytes are not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for LineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LineError::Oversized { limit } => {
                write!(f, "request line exceeds the {limit}-byte limit")
            }
            LineError::NotUtf8 => write!(f, "request line is not valid UTF-8"),
        }
    }
}

/// Incremental newline-framed reader over any [`Read`].
pub struct LineReader<R: Read> {
    inner: R,
    buf: VecDeque<u8>,
    limit: usize,
    /// When set, the current (over-limit) line is being discarded up to
    /// its terminating newline.
    discarding: bool,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// A reader yielding lines of at most `limit` bytes (newline
    /// excluded).
    pub fn new(inner: R, limit: usize) -> LineReader<R> {
        LineReader {
            inner,
            buf: VecDeque::new(),
            limit: limit.max(1),
            discarding: false,
            eof: false,
        }
    }

    /// The next framed line: `Ok(None)` at end of stream, `Ok(Some(Err))`
    /// for an oversized or non-UTF-8 line (the stream stays usable), and
    /// `Err` for transport errors — after which the call may simply be
    /// retried (buffered bytes are kept).
    ///
    /// An unterminated partial line at end of stream is discarded: on a
    /// wire protocol it means the peer died mid-request.
    pub fn next_line(&mut self) -> io::Result<Option<Result<String, LineError>>> {
        loop {
            // Serve from the buffer first.
            if self.discarding {
                match self.buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.buf.drain(..=pos);
                        self.discarding = false;
                        return Ok(Some(Err(LineError::Oversized { limit: self.limit })));
                    }
                    None => self.buf.clear(),
                }
            } else if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > self.limit {
                    return Ok(Some(Err(LineError::Oversized { limit: self.limit })));
                }
                return Ok(Some(match String::from_utf8(line) {
                    Ok(text) => Ok(text),
                    Err(_) => Err(LineError::NotUtf8),
                }));
            } else if self.buf.len() > self.limit {
                // No newline yet and already over the limit: switch to
                // discard mode so the buffer stays bounded.
                self.buf.clear();
                self.discarding = true;
            }
            if self.eof {
                return Ok(None);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serialize `value` as one JSON line and flush it, so the peer sees the
/// record immediately (the protocol is request/reply, not batched).
pub fn write_json_line<W: Write, T: ToJson + ?Sized>(w: &mut W, value: &T) -> io::Result<()> {
    w.write_all(json::to_string(value).as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    /// A reader that yields its scripted chunks one at a time, to force
    /// lines across read boundaries.
    struct Chunks(Vec<Vec<u8>>);

    impl Read for Chunks {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            let chunk = self.0.remove(0);
            out[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    fn lines_of(chunks: Vec<Vec<u8>>, limit: usize) -> Vec<Result<String, LineError>> {
        let mut r = LineReader::new(Chunks(chunks), limit);
        let mut out = Vec::new();
        while let Some(line) = r.next_line().expect("scripted reader never errors") {
            out.push(line);
        }
        out
    }

    #[test]
    fn lines_split_across_chunks_reassemble() {
        let got = lines_of(
            vec![b"hel".to_vec(), b"lo\nwor".to_vec(), b"ld\n".to_vec()],
            64,
        );
        assert_eq!(got, vec![Ok("hello".into()), Ok("world".into())]);
    }

    #[test]
    fn crlf_is_tolerated() {
        let got = lines_of(vec![b"ping\r\npong\n".to_vec()], 64);
        assert_eq!(got, vec![Ok("ping".into()), Ok("pong".into())]);
    }

    #[test]
    fn oversized_line_is_typed_and_the_stream_recovers() {
        let mut chunks = vec![vec![b'x'; 4096], vec![b'x'; 4096]];
        chunks.push(b"y\nnext\n".to_vec());
        let got = lines_of(chunks, 100);
        assert_eq!(
            got,
            vec![Err(LineError::Oversized { limit: 100 }), Ok("next".into())]
        );
    }

    #[test]
    fn oversized_line_that_fits_one_buffer_is_still_rejected() {
        // Under 1 chunk but over the limit, newline arrives with it.
        let got = lines_of(vec![[vec![b'z'; 200], b"\nok\n".to_vec()].concat()], 100);
        assert_eq!(
            got,
            vec![Err(LineError::Oversized { limit: 100 }), Ok("ok".into())]
        );
    }

    #[test]
    fn non_utf8_line_is_typed_not_fatal() {
        let got = lines_of(vec![vec![0xff, 0xfe, b'\n', b'o', b'k', b'\n']], 64);
        assert_eq!(got, vec![Err(LineError::NotUtf8), Ok("ok".into())]);
    }

    #[test]
    fn partial_line_at_eof_is_discarded() {
        let got = lines_of(vec![b"done\nhalf-a-req".to_vec()], 64);
        assert_eq!(got, vec![Ok("done".into())]);
    }

    #[test]
    fn transport_errors_keep_buffered_bytes() {
        struct Flaky {
            fed: bool,
            errs: u32,
            done: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if !self.fed {
                    self.fed = true;
                    out[..4].copy_from_slice(b"par1");
                    return Ok(4);
                }
                if self.errs > 0 {
                    self.errs -= 1;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
                }
                if !self.done {
                    self.done = true;
                    out[..5].copy_from_slice(b"tial\n");
                    return Ok(5);
                }
                Ok(0)
            }
        }
        let mut r = LineReader::new(
            Flaky {
                fed: false,
                errs: 2,
                done: false,
            },
            64,
        );
        assert_eq!(
            r.next_line().expect_err("first poll times out").kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(
            r.next_line().expect_err("second poll times out").kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(
            r.next_line().expect("third poll completes the line"),
            Some(Ok("par1tial".into()))
        );
    }

    #[test]
    fn write_json_line_emits_one_flushed_line() {
        let mut out: Vec<u8> = Vec::new();
        let v = Json::obj(vec![("type", Json::Str("ping".into()))]);
        write_json_line(&mut out, &v).expect("vec write cannot fail");
        assert_eq!(out, b"{\"type\":\"ping\"}\n");
    }
}
