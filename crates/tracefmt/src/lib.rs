//! # tracefmt — trace records and rendering
//!
//! The simulator (`mpisim`) emits one [`PhaseRecord`] per `(rank, step)`
//! cycle; a [`Trace`] is the dense matrix of them. The analysis crate
//! (`idlewave`) consumes traces; [`render`] turns them into ASCII timelines
//! (the textual version of the paper's Figs. 4–7/9) and CSV for plotting.

#![warn(missing_docs)]

pub mod digest;
pub mod json;
mod record;
pub mod render;
pub mod svg;
mod trace;
pub mod wire;

pub use digest::{fnv1a_64, Fnv64};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use record::PhaseRecord;
pub use render::{activity_at, ascii_timeline, idle_csv, to_csv, Activity, AsciiOptions};
pub use svg::{svg_timeline, SvgOptions};
pub use trace::Trace;
