//! Per-phase trace records.
//!
//! Every `(rank, step)` of a bulk-synchronous run produces one
//! [`PhaseRecord`]: when the execution phase started and ended, how much of
//! the execution phase was an injected one-off delay or sampled noise, and
//! when the communication phase (post + Waitall) completed. This is the
//! same information an MPI trace collector (the paper used Intel Trace
//! Analyzer) provides, reduced to what the idle-wave analysis needs.

use simdes::{SimDuration, SimTime};

use crate::json::{self, FromJson, Json, ToJson};

/// Timing of one execution + communication cycle on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Rank that executed the phase.
    pub rank: u32,
    /// Zero-based time step.
    pub step: u32,
    /// Start of the execution phase.
    pub exec_start: SimTime,
    /// End of the execution phase = start of the communication phase.
    pub exec_end: SimTime,
    /// End of the communication phase (Waitall return).
    pub comm_end: SimTime,
    /// Portion of the execution phase that was an injected one-off delay.
    pub injected: SimDuration,
    /// Portion of the execution phase that was sampled fine-grained noise.
    pub noise: SimDuration,
}

impl PhaseRecord {
    /// Length of the execution phase (work + injected delay + noise).
    pub fn exec_duration(&self) -> SimDuration {
        self.exec_end.since(self.exec_start)
    }

    /// Length of the communication phase, *including* any time spent
    /// waiting on late partners. The idle-wave signal lives here.
    pub fn comm_duration(&self) -> SimDuration {
        self.comm_end.since(self.exec_end)
    }

    /// Length of the pure-work part of the execution phase.
    pub fn work_duration(&self) -> SimDuration {
        self.exec_duration()
            .saturating_sub(self.injected)
            .saturating_sub(self.noise)
    }

    /// Communication time in excess of `baseline`: the per-step idle
    /// (waiting) time, which is what propagates as an idle wave. Saturates
    /// at zero — a step can never beat the baseline by definition of
    /// baseline, but clock granularity can make it appear a hair faster.
    pub fn idle_beyond(&self, baseline: SimDuration) -> SimDuration {
        self.comm_duration().saturating_sub(baseline)
    }

    /// A cheap 64-bit mix of every field. Two records have equal digests
    /// iff they are bit-identical (modulo the 64-bit hash). Summary-mode
    /// runs fold these into an order-insensitive run digest instead of
    /// retaining the records, so the mixer is a handful of multiply/shift
    /// rounds rather than a byte-wise FNV pass — it sits on the engine's
    /// per-step hot path.
    #[inline]
    pub fn digest(&self) -> u64 {
        Self::digest_of_parts(
            self.rank,
            self.step,
            self.exec_start,
            self.exec_end,
            self.comm_end,
            self.injected,
            self.noise,
        )
    }

    /// [`PhaseRecord::digest`] computed straight from the fields, without
    /// materializing a record. Summary-mode folds sit on the engine's
    /// per-step hot path and already hold every field in scalar form;
    /// this skips the struct round-trip. Bit-identical to `digest()` by
    /// construction (the method delegates here).
    #[inline]
    pub fn digest_of_parts(
        rank: u32,
        step: u32,
        exec_start: SimTime,
        exec_end: SimTime,
        comm_end: SimTime,
        injected: SimDuration,
        noise: SimDuration,
    ) -> u64 {
        // One rotate-xor-multiply fold per word keeps every input bit in
        // play, and a single splitmix64 finalizer at the end provides the
        // avalanche; that is six multiplies total instead of two per word.
        let mut h = 0x9e37_79b9_7f4a_7c15_u64;
        for w in [
            (u64::from(rank) << 32) | u64::from(step),
            exec_start.0,
            exec_end.0,
            comm_end.0,
            injected.0,
            noise.0,
        ] {
            h = (h.rotate_left(13) ^ w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        // splitmix64 finalizer: full avalanche in three rounds.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

impl ToJson for PhaseRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", self.rank.to_json()),
            ("step", self.step.to_json()),
            ("exec_start", self.exec_start.to_json()),
            ("exec_end", self.exec_end.to_json()),
            ("comm_end", self.comm_end.to_json()),
            ("injected", self.injected.to_json()),
            ("noise", self.noise.to_json()),
        ])
    }
}

impl FromJson for PhaseRecord {
    fn from_json(v: &Json) -> json::Result<Self> {
        Ok(PhaseRecord {
            rank: u32::from_json(v.field("rank")?)?,
            step: u32::from_json(v.field("step")?)?,
            exec_start: SimTime::from_json(v.field("exec_start")?)?,
            exec_end: SimTime::from_json(v.field("exec_end")?)?,
            comm_end: SimTime::from_json(v.field("comm_end")?)?,
            injected: SimDuration::from_json(v.field("injected")?)?,
            noise: SimDuration::from_json(v.field("noise")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> PhaseRecord {
        PhaseRecord {
            rank: 3,
            step: 7,
            exec_start: SimTime(1_000),
            exec_end: SimTime(4_000),
            comm_end: SimTime(4_500),
            injected: SimDuration(500),
            noise: SimDuration(100),
        }
    }

    #[test]
    fn durations() {
        let r = rec();
        assert_eq!(r.exec_duration(), SimDuration(3_000));
        assert_eq!(r.comm_duration(), SimDuration(500));
        assert_eq!(r.work_duration(), SimDuration(2_400));
    }

    #[test]
    fn digest_of_parts_matches_the_struct_digest() {
        // The committed BENCH digests pin this value; the scalar form
        // must be the same hash, bit for bit.
        let r = rec();
        assert_eq!(
            r.digest(),
            PhaseRecord::digest_of_parts(
                r.rank,
                r.step,
                r.exec_start,
                r.exec_end,
                r.comm_end,
                r.injected,
                r.noise
            )
        );
        assert_eq!(rec().digest(), rec().digest(), "digest must be pure");
        let mut other = rec();
        other.comm_end = SimTime(4_501);
        assert_ne!(r.digest(), other.digest());
    }

    #[test]
    fn idle_beyond_baseline() {
        let r = rec();
        assert_eq!(r.idle_beyond(SimDuration(200)), SimDuration(300));
        assert_eq!(r.idle_beyond(SimDuration(500)), SimDuration::ZERO);
        assert_eq!(r.idle_beyond(SimDuration(900)), SimDuration::ZERO);
    }

    #[test]
    fn json_round_trip() {
        let r = rec();
        let json = json::to_string(&r);
        let back: PhaseRecord = json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
