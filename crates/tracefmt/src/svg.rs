//! SVG timeline rendering — publication-style counterparts of the
//! paper's timeline figures (Figs. 4–7, 9).
//!
//! Layout mirrors the paper: wall-clock time on the x-axis, one
//! horizontal lane per rank (rank 0 at the bottom), white/grey execution,
//! blue injected delays, red waiting periods, dotted socket boundaries.
//! The output is self-contained SVG 1.1 with no external references.

use simdes::SimTime;
use std::fmt::Write as _;

use crate::trace::Trace;

/// Options for SVG rendering.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total image width in pixels (plot area scales to fit).
    pub width: u32,
    /// Height of one rank lane in pixels.
    pub lane_height: u32,
    /// Render only up to this time (default: full runtime).
    pub until: Option<SimTime>,
    /// Draw a dashed separator between ranks of different sockets.
    pub ranks_per_socket: Option<u32>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 900,
            lane_height: 14,
            until: None,
            ranks_per_socket: None,
        }
    }
}

const MARGIN_LEFT: u32 = 44;
const MARGIN_TOP: u32 = 10;
const MARGIN_BOTTOM: u32 = 28;
const COLOR_EXEC: &str = "#f4f4f2";
const COLOR_DELAY: &str = "#3465a4";
const COLOR_WAIT: &str = "#cc0000";
const COLOR_GRID: &str = "#999999";

/// Render the trace as a self-contained SVG document.
pub fn svg_timeline(trace: &Trace, opts: &SvgOptions) -> String {
    let end = opts.until.unwrap_or_else(|| trace.total_runtime());
    let span = end.nanos().max(1) as f64;
    let ranks = trace.ranks();
    let plot_w = f64::from(opts.width - MARGIN_LEFT - 8);
    let lane = f64::from(opts.lane_height);
    let plot_h = lane * f64::from(ranks);
    let height = MARGIN_TOP + plot_h as u32 + MARGIN_BOTTOM;
    let x_of = |t: SimTime| f64::from(MARGIN_LEFT) + (t.nanos() as f64 / span) * plot_w;
    // Rank 0 at the bottom.
    let y_of = |rank: u32| f64::from(MARGIN_TOP) + lane * f64::from(ranks - 1 - rank);

    let mut out = String::with_capacity(1 << 16);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{height}" viewBox="0 0 {w} {height}" font-family="sans-serif" font-size="9">"#,
        w = opts.width
    );
    let _ = writeln!(
        out,
        r#"<rect x="0" y="0" width="{w}" height="{height}" fill="white"/>"#,
        w = opts.width
    );

    // Lanes.
    for rank in 0..ranks {
        let y = y_of(rank);
        for rec in trace.rank_records(rank) {
            if rec.exec_start >= end {
                break;
            }
            let clip = |t: SimTime| if t > end { end } else { t };
            // Execution background.
            let x0 = x_of(rec.exec_start);
            let x1 = x_of(clip(rec.exec_end));
            let _ = writeln!(
                out,
                r##"<rect x="{x0:.2}" y="{y:.2}" width="{:.2}" height="{:.2}" fill="{COLOR_EXEC}" stroke="#ddd" stroke-width="0.3"/>"##,
                (x1 - x0).max(0.0),
                lane - 1.0,
            );
            // Injected delay at the start of the phase.
            if !rec.injected.is_zero() {
                let xd = x_of(clip(rec.exec_start + rec.injected));
                let _ = writeln!(
                    out,
                    r#"<rect x="{x0:.2}" y="{y:.2}" width="{:.2}" height="{:.2}" fill="{COLOR_DELAY}"/>"#,
                    (xd - x0).max(0.0),
                    lane - 1.0,
                );
            }
            // Waiting / communication.
            if rec.exec_end < end {
                let xw0 = x_of(rec.exec_end);
                let xw1 = x_of(clip(rec.comm_end));
                let _ = writeln!(
                    out,
                    r#"<rect x="{xw0:.2}" y="{y:.2}" width="{:.2}" height="{:.2}" fill="{COLOR_WAIT}"/>"#,
                    (xw1 - xw0).max(0.0),
                    lane - 1.0,
                );
            }
        }
        // Rank label every few lanes.
        if ranks <= 24 || rank % 5 == 0 {
            let _ = writeln!(
                out,
                r#"<text x="{:.2}" y="{:.2}" text-anchor="end">{rank}</text>"#,
                f64::from(MARGIN_LEFT) - 4.0,
                y + lane * 0.75,
            );
        }
    }

    // Socket separators.
    if let Some(rps) = opts.ranks_per_socket {
        if rps > 0 {
            let mut r = rps;
            while r < ranks {
                let y = y_of(r) + lane - 0.5;
                let _ = writeln!(
                    out,
                    r#"<line x1="{MARGIN_LEFT}" y1="{y:.2}" x2="{:.2}" y2="{y:.2}" stroke="{COLOR_GRID}" stroke-dasharray="3,3" stroke-width="0.8"/>"#,
                    f64::from(MARGIN_LEFT) + plot_w,
                );
                r += rps;
            }
        }
    }

    // Time axis: 6 ticks.
    let axis_y = f64::from(MARGIN_TOP) + plot_h + 4.0;
    for i in 0..=6u32 {
        let t = SimTime((span * f64::from(i) / 6.0) as u64);
        let x = x_of(t);
        let _ = writeln!(
            out,
            r#"<line x1="{x:.2}" y1="{:.2}" x2="{x:.2}" y2="{axis_y:.2}" stroke="{COLOR_GRID}" stroke-width="0.6"/>"#,
            axis_y - 4.0,
        );
        let _ = writeln!(
            out,
            r#"<text x="{x:.2}" y="{:.2}" text-anchor="middle">{t}</text>"#,
            axis_y + 10.0,
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PhaseRecord;
    use simdes::SimDuration;

    fn trace() -> Trace {
        let mk = |rank, step, es, ee, ce, inj| PhaseRecord {
            rank,
            step,
            exec_start: SimTime(es),
            exec_end: SimTime(ee),
            comm_end: SimTime(ce),
            injected: SimDuration(inj),
            noise: SimDuration::ZERO,
        };
        Trace::from_records(
            2,
            2,
            vec![
                mk(0, 0, 0, 100, 300, 0),
                mk(0, 1, 300, 400, 410, 0),
                mk(1, 0, 0, 290, 300, 190),
                mk(1, 1, 300, 400, 410, 0),
            ],
        )
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = svg_timeline(&trace(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // All three phase colors appear.
        assert!(svg.contains(COLOR_EXEC));
        assert!(svg.contains(COLOR_DELAY));
        assert!(svg.contains(COLOR_WAIT));
        // Balanced rect count: each record draws >= 1 rect.
        let rects = svg.matches("<rect").count();
        assert!(rects >= 5, "only {rects} rects");
        // No unescaped raw text problems: every line of markup closes.
        for line in svg
            .lines()
            .filter(|l| l.starts_with('<') && !l.starts_with("</"))
        {
            assert!(
                line.ends_with("/>") || line.ends_with('>'),
                "unterminated: {line}"
            );
        }
    }

    #[test]
    fn socket_separators_appear_on_request() {
        let base = svg_timeline(&trace(), &SvgOptions::default());
        assert!(!base.contains("stroke-dasharray"));
        let with = svg_timeline(
            &trace(),
            &SvgOptions {
                ranks_per_socket: Some(1),
                ..Default::default()
            },
        );
        assert!(with.contains("stroke-dasharray"));
    }

    #[test]
    fn until_clips_the_view() {
        let full = svg_timeline(&trace(), &SvgOptions::default());
        let clipped = svg_timeline(
            &trace(),
            &SvgOptions {
                until: Some(SimTime(200)),
                ..Default::default()
            },
        );
        assert_ne!(full, clipped);
        assert!(clipped.contains("</svg>"));
    }

    #[test]
    fn no_injected_delay_means_no_blue() {
        let mk = |rank: u32, step, es, ee, ce| PhaseRecord {
            rank,
            step,
            exec_start: SimTime(es),
            exec_end: SimTime(ee),
            comm_end: SimTime(ce),
            injected: SimDuration::ZERO,
            noise: SimDuration::ZERO,
        };
        let t = Trace::from_records(1, 1, vec![mk(0, 0, 0, 10, 12)]);
        let svg = svg_timeline(&t, &SvgOptions::default());
        assert!(!svg.contains(COLOR_DELAY));
    }
}
