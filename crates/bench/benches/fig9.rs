//! Bench harness for Fig. 9 (idle-period elimination): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig9, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig9::generate(Scale::Paper);
    println!("{}", fig9::render(&data));

    time_kernel("fig9/generate_quick", || {
        black_box(fig9::generate(Scale::Quick));
    });
}
