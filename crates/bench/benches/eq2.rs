//! Bench harness for Eq. 2 (speed-model validation): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{eq2, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = eq2::generate(Scale::Paper);
    println!("{}", eq2::render(&data));

    time_kernel("eq2/generate_quick", || {
        black_box(eq2::generate(Scale::Quick));
    });
}
