//! Criterion bench for Eq. 2 (speed-model validation): regenerates the figure's data at paper
//! scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel.

use bench::{eq2, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_eq2(c: &mut Criterion) {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = eq2::generate(Scale::Paper);
    println!("{}", eq2::render(&data));

    let mut g = c.benchmark_group("eq2");
    g.sample_size(10);
    g.bench_function("generate_quick", |b| {
        b.iter(|| black_box(eq2::generate(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_eq2);
criterion_main!(benches);
