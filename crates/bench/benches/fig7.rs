//! Bench harness for Fig. 7 (distance-2 speeds): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig7, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig7::generate(Scale::Paper);
    println!("{}", fig7::render(&data));

    time_kernel("fig7/generate_quick", || {
        black_box(fig7::generate(Scale::Quick));
    });
}
