//! Criterion bench for the ablation suite (DESIGN.md §5): regenerates
//! all five ablations at paper scale once (printing the tables), then
//! times the quick-scale suite.

use bench::{ablations, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    println!("{}", ablations::render(Scale::Paper));

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("eager_buffer_sweep_quick", |b| {
        b.iter(|| black_box(ablations::eager_buffer_sweep(Scale::Quick)))
    });
    g.bench_function("contamination_quick", |b| {
        b.iter(|| black_box(ablations::contamination_rows(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
