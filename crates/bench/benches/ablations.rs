//! Bench harness for the ablation suite (DESIGN.md §5): regenerates
//! all five ablations at paper scale once (printing the tables), then
//! times the quick-scale suite. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{ablations, Scale};
use std::hint::black_box;

fn main() {
    println!("{}", ablations::render(Scale::Paper));

    time_kernel("ablations/eager_buffer_sweep_quick", || {
        black_box(ablations::eager_buffer_sweep(Scale::Quick));
    });
    time_kernel("ablations/contamination_quick", || {
        black_box(ablations::contamination_rows(Scale::Quick));
    });
}
