//! Bench harness for Fig. 5 (eight propagation flavors): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig5, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig5::generate(Scale::Paper);
    println!("{}", fig5::render(&data));

    time_kernel("fig5/generate_quick", || {
        black_box(fig5::generate(Scale::Quick));
    });
}
