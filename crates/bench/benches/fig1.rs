//! Bench harness for Fig. 1 (STREAM strong scaling): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig1, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig1::generate(Scale::Paper);
    println!("{}", fig1::render(&data));

    time_kernel("fig1/generate_quick", || {
        black_box(fig1::generate(Scale::Quick));
    });
}
