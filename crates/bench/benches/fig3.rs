//! Bench harness for Fig. 3 (noise histograms): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig3, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig3::generate(Scale::Paper);
    println!("{}", fig3::render(&data));

    time_kernel("fig3/generate_quick", || {
        black_box(fig3::generate(Scale::Quick));
    });
}
