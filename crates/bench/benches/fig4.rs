//! Bench harness for Fig. 4 (basic propagation): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig4, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig4::generate(Scale::Paper);
    println!("{}", fig4::render(&data));

    time_kernel("fig4/generate_quick", || {
        black_box(fig4::generate(Scale::Quick));
    });
}
