//! Criterion bench for Fig. 4 (basic propagation): regenerates the figure's data at paper
//! scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel.

use bench::{fig4, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig4::generate(Scale::Paper);
    println!("{}", fig4::render(&data));

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("generate_quick", |b| {
        b.iter(|| black_box(fig4::generate(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
