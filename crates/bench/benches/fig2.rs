//! Criterion bench for Fig. 2 (LBM timeline): regenerates the figure's data at paper
//! scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel.

use bench::{fig2, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig2::generate(Scale::Paper);
    println!("{}", fig2::render(&data));

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("generate_quick", |b| {
        b.iter(|| black_box(fig2::generate(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
