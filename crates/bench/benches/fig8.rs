//! Bench harness for Fig. 8 (decay rate vs noise): regenerates the figure's data
//! at paper scale once (printing the series), then times the quick-scale
//! generation as the repeatable benchmark kernel. Plain `fn main` harness
//! (`harness = false`) — no external bench framework.

use bench::harness::time_kernel;
use bench::{fig8, Scale};
use std::hint::black_box;

fn main() {
    // One paper-scale regeneration, printed for EXPERIMENTS.md.
    let data = fig8::generate(Scale::Paper);
    println!("{}", fig8::render(&data));

    time_kernel("fig8/generate_quick", || {
        black_box(fig8::generate(Scale::Quick));
    });
}
