//! Fig. 6 — interaction of propagating delays: one injection on the same
//! local rank of every socket in a periodic 100-rank job, with (a) equal,
//! (b) half-on-odd-sockets, and (c) random delay durations.

use idlewave::interaction::{activity_profile, ActivityProfile};
use idlewave::{WaveExperiment, WaveTrace};
use noise_model::InjectionPlan;
use simdes::{SeedFactory, SimDuration};
use workload::{Boundary, Direction};

use crate::{table, Scale};

/// One of the three experiments.
pub struct Variant {
    /// The paper's panel label.
    pub label: &'static str,
    /// The run.
    pub wt: WaveTrace,
    /// Step-by-step wave activity.
    pub profile: ActivityProfile,
}

/// Generate the three variants. Paper scale: 10 sockets × 10 ranks,
/// delays on local rank 5, bidirectional eager periodic, 16384 B.
pub fn generate(scale: Scale) -> Vec<Variant> {
    let sockets = scale.pick(10, 4);
    let per_socket = scale.pick(10u32, 8);
    let steps = scale.pick(20, 20);
    let local = 5.min(per_socket - 1);
    let texec = SimDuration::from_millis(3);
    let delay = texec.times(4);
    let seeds = SeedFactory::new(0xF166);

    let plans = [
        (
            "(a) equal",
            InjectionPlan::per_socket_equal(sockets, per_socket, local, 0, delay),
        ),
        (
            "(b) half",
            InjectionPlan::per_socket_half_on_odd(sockets, per_socket, local, 0, delay),
        ),
        (
            "(c) random",
            InjectionPlan::per_socket_random(
                sockets,
                per_socket,
                local,
                0,
                delay / 4,
                delay * 2,
                &seeds,
            ),
        ),
    ];

    plans
        .into_iter()
        .map(|(label, plan)| {
            let wt = WaveExperiment::flat_chain(sockets * per_socket)
                .direction(Direction::Bidirectional)
                .boundary(Boundary::Periodic)
                .msg_bytes(16_384)
                .eager()
                .texec(texec)
                .steps(steps)
                .injections(plan)
                .run();
            let th = wt.default_threshold();
            let profile = activity_profile(&wt, th);
            Variant { label, wt, profile }
        })
        .collect()
}

/// Print the per-variant survival summary and activity profiles.
pub fn render(variants: &[Variant]) -> String {
    let mut out = String::from("Fig. 6: interacting idle waves (per-socket injections)\n");
    out.push_str(&table(
        &[
            "variant",
            "extinction step",
            "total idle [ms]",
            "activity profile",
        ],
        &variants
            .iter()
            .map(|v| {
                vec![
                    v.label.to_string(),
                    v.profile
                        .extinction_step
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "alive at end".into()),
                    format!("{:.1}", v.profile.total_idle.as_millis_f64()),
                    v.profile
                        .per_step
                        .iter()
                        .map(|n| format!("{n}"))
                        .collect::<Vec<_>>()
                        .join(","),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_variants_order_by_survival() {
        let vs = generate(Scale::Quick);
        assert_eq!(vs.len(), 3);
        let ext = |v: &Variant| v.profile.extinction_step.unwrap_or(u32::MAX);
        // Equal waves die first; partial cancellation lets remnants of (b)
        // travel further.
        assert!(
            ext(&vs[0]) <= ext(&vs[1]),
            "equal {} vs half {}",
            ext(&vs[0]),
            ext(&vs[1])
        );
        // All three start with every injection active.
        for v in &vs {
            assert!(
                v.profile.per_step[0] > 0,
                "{} shows no initial activity",
                v.label
            );
        }
        let txt = render(&vs);
        assert!(txt.contains("(a) equal") && txt.contains("(c) random"));
    }
}
